"""Figure 10 — session breakdowns by preferred/non-preferred destinations."""

from repro.core.nonpreferred import SessionPattern, one_flow_breakdown, two_flow_breakdown


def test_bench_fig10a(benchmark, results, pipe, save_artifact):
    name = "US-Campus"
    sessions = pipe.sessions[name]
    report = pipe.preferred_reports[name]

    def compute():
        return one_flow_breakdown(sessions, report, pipe.server_map)

    benchmark(compute)

    lines = []
    for ds_name in results:
        b = pipe.one_flow_breakdown(ds_name)
        lines.append(
            f"{ds_name:12s} 1-flow={b.one_flow_fraction:.3f} "
            f"preferred={b.preferred_fraction:.3f} "
            f"non-preferred={b.nonpreferred_fraction:.3f}"
        )
    save_artifact("fig10a_one_flow_sessions", "\n".join(lines))

    for ds_name in ("US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH"):
        b = pipe.one_flow_breakdown(ds_name)
        assert b.preferred_fraction > 0.6, ds_name
        assert b.nonpreferred_fraction < 0.15, ds_name
    eu2 = pipe.one_flow_breakdown("EU2")
    assert eu2.nonpreferred_fraction > 0.3  # DNS sends much of EU2 away


def test_bench_fig10b(benchmark, results, pipe, save_artifact):
    name = "EU1-ADSL"
    sessions = pipe.sessions[name]
    report = pipe.preferred_reports[name]

    def compute():
        return two_flow_breakdown(sessions, report, pipe.server_map)

    benchmark(compute)

    lines = []
    for ds_name in results:
        patterns = pipe.two_flow_breakdown(ds_name)
        cells = " ".join(f"[{p.value}]={patterns[p]:.3f}" for p in SessionPattern)
        lines.append(f"{ds_name:12s} {cells}")
    save_artifact("fig10b_two_flow_sessions", "\n".join(lines))

    for ds_name in ("EU1-Campus", "EU1-ADSL", "EU1-FTTH"):
        patterns = pipe.two_flow_breakdown(ds_name)
        assert (
            patterns[SessionPattern.PREFERRED_NONPREFERRED]
            > patterns[SessionPattern.NONPREFERRED_NONPREFERRED]
        ), ds_name
    eu2 = pipe.two_flow_breakdown("EU2")
    assert (
        eu2[SessionPattern.NONPREFERRED_NONPREFERRED]
        > eu2[SessionPattern.PREFERRED_NONPREFERRED]
    )
