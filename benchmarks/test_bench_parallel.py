"""Parallel execution benchmarks: multi-scenario fan-out speedup.

Times the five-dataset scenario suite under the session's backend
(``REPRO_EXECUTOR``) and once under serial as a baseline, asserts the two
runs are byte-identical, and records the measured speedup — the number the
CI benchmark-smoke job reports for the serial and process matrix legs.
"""

import time

from repro.exec import ParallelExecutor
from repro.reporting.timing import write_timing_json
from repro.sim import driver

from benchmarks.conftest import BENCH_SCALE, OUT_DIR

#: Distinct seed so these runs never alias the shared ``results`` fixture.
FANOUT_SEED = 31


def _digest_all(results):
    return {name: result.dataset.content_digest() for name, result in results.items()}


def test_bench_multi_scenario_fanout(benchmark, executor, save_artifact):
    backend = executor.backend

    def fan_out():
        driver.clear_cache()
        run_executor = ParallelExecutor(backend, max_workers=executor.max_workers)
        results = driver.run_all(scale=BENCH_SCALE, seed=FANOUT_SEED,
                                 executor=run_executor)
        return run_executor, results

    run_executor, results = benchmark.pedantic(fan_out, rounds=2, iterations=1)
    parallel_wall = benchmark.stats.stats.min

    driver.clear_cache()
    t0 = time.perf_counter()
    serial_results = driver.run_all(scale=BENCH_SCALE, seed=FANOUT_SEED,
                                    executor=ParallelExecutor("serial"))
    serial_wall = time.perf_counter() - t0
    driver.clear_cache()

    # The mechanical speedup must never change the science.
    assert _digest_all(results) == _digest_all(serial_results)

    speedup = serial_wall / parallel_wall
    OUT_DIR.mkdir(exist_ok=True)
    summary = write_timing_json(
        run_executor.stats, OUT_DIR / f"timing_run_all_{backend}.json"
    )
    straggler = summary["straggler"]["label"] if summary["straggler"] else "n/a"
    save_artifact(
        f"perf_parallel_{backend}",
        f"multi-scenario fan-out ({backend}): serial {serial_wall:.2f}s -> "
        f"{parallel_wall:.2f}s wall, speedup {speedup:.2f}x, "
        f"straggler {straggler}",
    )
    # Fan-out must never be pathologically slower than the serial loop
    # (pool startup is the only overhead); real speedup needs >1 core.
    assert speedup > 0.5
