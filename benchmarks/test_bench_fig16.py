"""Figure 16 — sessions at the hot video's server, by redirect pattern."""

from repro.core.hotspots import hot_server_sessions


def test_bench_fig16(benchmark, results, pipe, save_artifact):
    name = "EU1-ADSL"
    video_id = pipe.hot_videos(name, top_k=1)[0].video_id
    sessions = pipe.sessions[name]
    report = pipe.preferred_reports[name]
    num_hours = results[name].dataset.num_hours

    def compute():
        return hot_server_sessions(sessions, video_id, report, pipe.server_map, num_hours)

    hot = benchmark(compute)

    text = "\n".join(
        [
            f"video={video_id} server_ip={hot.server_ip}",
            hot.all_preferred.render(),
            hot.first_preferred_rest_not.render(),
            hot.others.render(),
            f"total sessions at server: {hot.total_sessions()}",
        ]
    )
    save_artifact("fig16_hot_server_sessions", text)

    assert hot.total_sessions() > 50
    redirected = sum(hot.first_preferred_rest_not.ys)
    assert redirected > 0
    # Redirections concentrate around the feature-day peak (weighted by
    # session count).
    peak_idx = hot.first_preferred_rest_not.ys.index(hot.first_preferred_rest_not.max_y())
    peak_hour = hot.first_preferred_rest_not.xs[peak_idx]
    within_day = sum(
        y for x, y in zip(hot.first_preferred_rest_not.xs, hot.first_preferred_rest_not.ys)
        if abs(x - peak_hour) <= 24
    )
    assert within_day / redirected > 0.6
