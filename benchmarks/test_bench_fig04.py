"""Figure 4 — CDF of YouTube flow sizes (the 1000-byte control/video kink)."""

from repro.core.flows import detect_size_threshold, flow_size_cdf


def test_bench_fig04(benchmark, results, pipe, save_artifact):
    records = results["US-Campus"].dataset.records

    def compute():
        return flow_size_cdf(records)

    benchmark(compute)

    lines = []
    for name in results:
        cdf = pipe.flow_size_cdf(name)
        lines.append(cdf.render(f"flow bytes — {name}"))
    save_artifact("fig04_flow_sizes", "\n".join(lines))

    for name in results:
        cdf = pipe.flow_size_cdf(name)
        below = cdf.fraction_below(1000)
        valley = cdf.fraction_below(19_000) - below
        assert 0.05 < below < 0.45, name
        assert valley < 0.02, name
    # The kink is recoverable from the data alone.
    detected = detect_size_threshold(records)
    assert 900 <= detected <= 25_000
