"""Shared-world study: all five vantage points against one CDN.

Not a paper artifact per se — it is the *actual* collection setup (five
simultaneous monitors on one production CDN) — so this benchmark checks
that the headline shapes survive the mode switch and times the merged run.
"""

import pytest

from repro.core.pipeline import StudyPipeline
from repro.core.subnets import most_biased_subnet
from repro.sim.multistudy import run_shared_study


@pytest.fixture(scope="module")
def shared_pipe(executor):
    results = run_shared_study(scale=0.02, seed=7, executor=executor)
    return StudyPipeline(results, landmark_count=120, seed=11, executor=executor)


def test_bench_shared_world(benchmark, shared_pipe, executor, save_artifact):
    def compute():
        return run_shared_study(scale=0.004, seed=7, executor=executor)

    benchmark.pedantic(compute, rounds=2, iterations=1)

    lines = []
    for name in shared_pipe.dataset_names:
        report = shared_pipe.preferred_reports[name]
        lines.append(
            f"{name:12s} preferred={report.preferred_id:24s} "
            f"share={report.byte_share(report.preferred_id):6.1%} "
            f"non-preferred={shared_pipe.nonpreferred_fraction(name):6.1%}"
        )
    save_artifact("shared_world_study", "\n".join(lines))

    for name in ("US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH"):
        report = shared_pipe.preferred_reports[name]
        assert report.byte_share(report.preferred_id) > 0.8, name
    assert shared_pipe.nonpreferred_fraction("EU2") > 0.5
    assert most_biased_subnet(shared_pipe.subnet_shares("US-Campus")).subnet_name == "Net-3"
    lb = shared_pipe.load_balance("EU2")
    quiet, busy = lb.night_day_split()
    assert quiet > busy + 0.25
