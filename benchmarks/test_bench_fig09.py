"""Figure 9 — hourly fraction of video flows to non-preferred data centers."""

from repro.core.nonpreferred import hourly_nonpreferred_cdf


def test_bench_fig09(benchmark, results, pipe, save_artifact):
    name = "EU2"
    records = pipe.focus_records[name]
    report = pipe.preferred_reports[name]
    num_hours = results[name].dataset.num_hours

    def compute():
        return hourly_nonpreferred_cdf(records, report, pipe.server_map, num_hours)

    benchmark(compute)

    lines = []
    for ds_name in results:
        cdf = pipe.fig9_cdf(ds_name)
        overall = pipe.nonpreferred_fraction(ds_name)
        lines.append(cdf.render(f"hourly non-preferred fraction — {ds_name}"))
        lines.append(f"{ds_name}: overall non-preferred = {overall:.3f}")
    save_artifact("fig09_hourly_nonpreferred", "\n".join(lines))

    # Paper: 5-15 % for US/EU1, > 55 % for EU2; EU2 varies the most.
    for ds_name in ("US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH"):
        assert 0.03 < pipe.nonpreferred_fraction(ds_name) < 0.20, ds_name
    assert pipe.nonpreferred_fraction("EU2") > 0.5
    assert pipe.fig9_cdf("EU2").median > 0.4
    assert pipe.fig9_cdf("EU1-ADSL").quantile(0.9) < 0.3
