"""Library performance benchmarks (not paper artifacts).

Times the two throughput-critical paths a user sizes their runs by: the
request engine (requests/second through DNS + redirection + trace
collection) and the CBG solver (targets/second once calibrated).
"""

import pytest

from repro.sim.engine import RequestProcessor
from repro.sim.scenarios import PAPER_SCENARIOS, build_world


@pytest.fixture(scope="module")
def engine_world():
    return build_world(PAPER_SCENARIOS["EU1-ADSL"], scale=0.02, seed=42)


def test_bench_engine_throughput(benchmark, engine_world, save_artifact):
    requests = engine_world.generator.generate(2 * 86400.0)[:2000]

    def run_batch():
        processor = RequestProcessor(engine_world)
        for request in requests:
            processor.process(request)
        return processor.result.requests

    count = benchmark(run_batch)
    assert count == len(requests)
    ops = count / benchmark.stats.stats.mean
    save_artifact(
        "perf_engine",
        f"engine throughput: {ops:,.0f} requests/s "
        f"({count} requests per round)",
    )
    # A full paper-scale week (~670k requests) should stay tractable.
    assert ops > 5_000


def test_bench_cbg_throughput(benchmark, pipe, save_artifact):
    geolocator = pipe.geolocator  # calibrated once outside timing
    server_map = pipe.server_map
    targets = []
    for cluster in server_map.clusters[:8]:
        site = pipe.site_of_ip(cluster.server_ips[0])
        if site is not None:
            targets.append(site)

    def locate_all():
        return [geolocator.geolocate_target(t) for t in targets]

    results = benchmark(locate_all)
    assert len(results) == len(targets)
    per_target = benchmark.stats.stats.mean / len(targets)
    save_artifact(
        "perf_cbg",
        f"CBG solve: {1.0 / per_target:,.1f} targets/s with "
        f"{len(geolocator.landmarks)} landmarks",
    )
    assert per_target < 0.5  # well under half a second per target
