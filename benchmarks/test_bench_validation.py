"""Methodology validation + peering analysis benchmarks.

Two artifacts beyond the paper's figures:

* validation — the inference pipeline's measured accuracy against the
  simulator's ground truth (possible only in a simulation-backed
  reproduction);
* peering — the capacity-planning numbers the paper's introduction says
  this kind of study should enable.
"""

from repro.core.peering import analyze_peering
from repro.core.validation import render_validation, validate_study


def test_bench_validation(benchmark, results, pipe, save_artifact):
    def compute():
        return validate_study(pipe, results)

    rows = benchmark(compute)
    save_artifact("validation", render_validation(rows))

    for name, row in rows.items():
        assert row.preferred_matches, name
        assert row.nonpreferred_error < 0.06, name


def test_bench_peering(benchmark, results, save_artifact):
    eu2 = results["EU2"]

    def compute():
        return analyze_peering(eu2.dataset, eu2.world.registry)

    report = benchmark(compute)

    lines = []
    for name, result in results.items():
        peering = analyze_peering(result.dataset, result.world.registry)
        lines.append(peering.render())
        lines.append(f"on-net share: {peering.on_net_fraction:.1%}")
        lines.append("")
    save_artifact("peering", "\n".join(lines))

    # EU2's in-ISP data center keeps a large share off the peering edge.
    assert 0.2 < report.on_net_fraction < 0.6
    assert report.per_as[0].p95_mbps() > 0
