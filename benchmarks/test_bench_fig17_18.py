"""Figures 17 and 18 — the PlanetLab cold-video experiment."""

import pytest

from repro.active.testvideo import TestVideoExperiment
from repro.sim.scenarios import PAPER_SCENARIOS, build_world


@pytest.fixture(scope="module")
def report(benchmark_scale_world):
    experiment = TestVideoExperiment(benchmark_scale_world, num_nodes=45, seed=5)
    return experiment.run()


@pytest.fixture(scope="module")
def benchmark_scale_world():
    # The experiment needs the CDN, not the edge workload: tiny scale.
    return build_world(PAPER_SCENARIOS["EU1-ADSL"], scale=0.002, seed=7)


def test_bench_fig17(benchmark, benchmark_scale_world, save_artifact):
    def compute():
        experiment = TestVideoExperiment(benchmark_scale_world, num_nodes=45, seed=5)
        return experiment.run()

    report = benchmark.pedantic(compute, rounds=3, iterations=1)

    exemplar = report.most_improved()
    text = "\n".join(
        [
            f"test video {report.video_id}, origin(s): {', '.join(report.origin_dcs)}",
            f"exemplar node: {exemplar.node.name}",
            "RTT samples (ms): " + " ".join(f"{r:.0f}" for r in exemplar.rtts_ms),
        ]
    )
    save_artifact("fig17_cold_video_rtt", text)

    # First fetch far away, later fetches nearby (paper: ~200 ms -> ~20 ms).
    assert exemplar.rtts_ms[0] > 5.0 * exemplar.settled_rtt_ms


def test_bench_fig18(benchmark, report, save_artifact):
    cdf = benchmark(report.ratio_cdf)
    improved = 1.0 - cdf.fraction_below(1.2)
    large = 1.0 - cdf.fraction_below(10.0)
    text = "\n".join(
        [
            cdf.render("RTT1/RTT2 over 45 nodes"),
            f"fraction with ratio > 1.2: {improved:.2f}",
            f"fraction with ratio > 10:  {large:.2f}",
        ]
    )
    save_artifact("fig18_rtt_ratio_cdf", text)

    # Paper: > 40 % of nodes improved; ~20 % improved more than 10x.
    assert improved > 0.4
    assert large > 0.1
