"""Figure 12 — per-subnet non-preferred shares at US-Campus (Net-3 bias)."""

from repro.core.subnets import most_biased_subnet, subnet_shares


def test_bench_fig12(benchmark, results, pipe, save_artifact):
    name = "US-Campus"
    dataset = results[name].dataset
    report = pipe.preferred_reports[name]
    records = pipe.focus_records[name]

    def compute():
        return subnet_shares(dataset, report, pipe.server_map, records=records)

    shares = benchmark(compute)

    lines = [
        f"{s.subnet_name}: all={s.all_share:.3f} "
        f"non-preferred={s.nonpreferred_share:.3f} bias={s.bias:.1f}"
        for s in shares
    ]
    save_artifact("fig12_subnet_bias", "\n".join(lines))

    net3 = next(s for s in shares if s.subnet_name == "Net-3")
    # Paper: ~4 % of flows, ~50 % of non-preferred accesses.
    assert net3.all_share < 0.10
    assert net3.nonpreferred_share > 0.30
    assert most_biased_subnet(shares).subnet_name == "Net-3"
    for s in shares:
        if s.subnet_name != "Net-3":
            assert s.bias < 1.5, s.subnet_name
