"""Figure 8 — cumulative fraction of bytes vs. distance to the data center."""


def test_bench_fig08(benchmark, results, pipe, save_artifact):
    reports = pipe.preferred_reports

    def compute():
        return {name: reports[name].cumulative_by_distance() for name in reports}

    curves = benchmark(compute)
    lines = [series.render() for series in curves.values()]
    for name in results:
        lines.append(f"{name}: closest-5 byte share = {reports[name].closest_k_share(5):.4f}")
    save_artifact("fig08_bytes_vs_distance", "\n".join(lines))

    # US-Campus: geography is NOT the criterion (paper: closest 5 < 2 %).
    assert reports["US-Campus"].closest_k_share(5) < 0.05
    # EU1: the preferred data center is also physically close.
    assert reports["EU1-ADSL"].closest_k_share(5) > 0.8
