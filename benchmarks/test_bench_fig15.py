"""Figure 15 — average vs. maximum per-server load in the preferred DC."""

from repro.core.hotspots import preferred_server_load


def test_bench_fig15(benchmark, results, pipe, save_artifact):
    name = "EU1-ADSL"
    records = pipe.focus_records[name]
    report = pipe.preferred_reports[name]
    num_hours = results[name].dataset.num_hours

    def compute():
        return preferred_server_load(records, report, pipe.server_map, num_hours)

    load = benchmark(compute)

    text = "\n".join(
        [
            load.avg_per_hour.render(),
            load.max_per_hour.render(),
            f"peak ratio (max of max / mean of avg): {load.peak_ratio():.1f}",
        ]
    )
    save_artifact("fig15_server_load", text)

    # Paper: max ~650 vs avg ~50 — an order of magnitude apart.
    assert load.peak_ratio() > 4.0
    assert load.max_per_hour.max_y() > 2 * max(load.avg_per_hour.ys)
