"""Figure 6 — number of flows per session for all datasets at T = 1 s."""

from repro.core.sessions import build_sessions, flows_per_session_histogram


def test_bench_fig06(benchmark, results, pipe, save_artifact):
    records = pipe.focus_records["EU1-ADSL"]

    def compute():
        return flows_per_session_histogram(build_sessions(records, 1.0))

    benchmark(compute)

    lines = []
    for name in results:
        histogram = pipe.session_histogram(name)
        cells = " ".join(
            f"{label}:{histogram[label]:.3f}" for label in ("1", "2", "3", "4", ">9")
        )
        lines.append(f"{name:12s} {cells}")
        # Paper: 72.5-80.5 % single-flow sessions.
        assert 0.68 < histogram["1"] < 0.90, name
        # "use of application-layer redirection is not insignificant".
        assert histogram["1"] < 0.92, name
    save_artifact("fig06_flows_per_session", "\n".join(lines))
