"""Figure 11 — EU2's DNS-level load balancing over the week."""

from repro.core.loadbalance import analyze_load_balance


def test_bench_fig11(benchmark, results, pipe, save_artifact):
    name = "EU2"
    records = pipe.focus_records[name]
    report = pipe.preferred_reports[name]
    num_hours = results[name].dataset.num_hours

    def compute():
        return analyze_load_balance(records, report, pipe.server_map, num_hours)

    lb = benchmark(compute)

    quiet, busy = lb.night_day_split()
    correlation = lb.correlation()
    text = "\n".join(
        [
            lb.local_fraction.render(),
            lb.flows_per_hour.render(),
            f"quiet-hour local fraction: {quiet:.3f}",
            f"busy-hour local fraction:  {busy:.3f}",
            f"load/local-fraction correlation: {correlation:.3f}",
        ]
    )
    save_artifact("fig11_eu2_load_balance", text)

    # Night: the in-ISP data center absorbs (nearly) everything;
    # day: it saturates and DNS sheds to the Google data center.
    assert quiet > 0.6
    assert busy < 0.45
    assert correlation < -0.6
    # Control: EU1-ADSL shows no such anti-correlation.
    control = pipe.load_balance("EU1-ADSL")
    q2, b2 = control.night_day_split()
    assert abs(q2 - b2) < 0.15
