"""Tracing-overhead benchmark: spans must cost <5% on real work.

Interleaves traced and untraced repetitions of the multi-scenario
simulation (so drift in machine load hits both arms equally), takes the
minimum wall time of each arm, and asserts the traced minimum stays
within 5% of the untraced one plus a small absolute slack for
sub-second noise.  This is the regression gate for the ``repro/obs``
instrumentation — if a new span site makes the hot path measurably
slower, this fails before the trace ever reaches a user.
"""

import time

from repro import obs
from repro.exec import ParallelExecutor
from repro.sim import driver

from benchmarks.conftest import OUT_DIR

#: Small but real workload: every span site (exec/map, task captures,
#: stage memo wrappers, phase timers) fires on this path.
OVERHEAD_SCALE = 0.005
#: Distinct seed so these runs never alias the shared ``results`` fixture.
OVERHEAD_SEED = 43
REPS = 3
#: Relative budget for the tracing layer, plus absolute slack for noise.
MAX_RELATIVE_OVERHEAD = 0.05
ABSOLUTE_SLACK_S = 0.05


def _study_once() -> float:
    """One cold serial simulation run under a fresh run context."""
    obs.new_run()
    driver.clear_cache()
    start = time.perf_counter()
    driver.run_all(scale=OVERHEAD_SCALE, seed=OVERHEAD_SEED,
                   executor=ParallelExecutor("serial"))
    elapsed = time.perf_counter() - start
    driver.clear_cache()
    return elapsed


def test_tracing_overhead_under_five_percent(monkeypatch, save_artifact):
    timings = {"on": [], "off": []}
    for _ in range(REPS):
        monkeypatch.delenv(obs.ENV_TRACE, raising=False)
        timings["on"].append(_study_once())
        monkeypatch.setenv(obs.ENV_TRACE, "off")
        timings["off"].append(_study_once())
    monkeypatch.delenv(obs.ENV_TRACE, raising=False)
    obs.new_run()

    best_on = min(timings["on"])
    best_off = min(timings["off"])
    overhead = best_on / best_off - 1.0

    OUT_DIR.mkdir(exist_ok=True)
    save_artifact(
        "perf_trace_overhead",
        f"tracing overhead: traced {best_on:.3f}s vs untraced "
        f"{best_off:.3f}s (min of {REPS}), overhead {overhead:+.1%}",
    )
    assert best_on <= best_off * (1.0 + MAX_RELATIVE_OVERHEAD) + ABSOLUTE_SLACK_S, (
        f"tracing adds {overhead:+.1%} "
        f"({best_on:.3f}s traced vs {best_off:.3f}s untraced); "
        f"budget is {MAX_RELATIVE_OVERHEAD:.0%} + {ABSOLUTE_SLACK_S}s"
    )
