"""Table I — traffic summary for the datasets."""

from repro.core.summary import render_table1, summarize


def test_bench_table1(benchmark, results, pipe, save_artifact):
    datasets = [r.dataset for r in results.values()]

    def compute():
        return [summarize(ds) for ds in datasets]

    summaries = benchmark(compute)
    text = render_table1(summaries)
    save_artifact("table1", text)

    by_name = {s.name: s for s in summaries}
    assert set(by_name) == {"US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH", "EU2"}
    # Relative magnitudes follow the paper's Table I.
    assert by_name["US-Campus"].flows > 3 * by_name["EU1-FTTH"].flows
    assert by_name["EU1-ADSL"].flows > 3 * by_name["EU1-Campus"].flows
    assert by_name["US-Campus"].num_clients > by_name["EU1-FTTH"].num_clients
    for summary in summaries:
        assert summary.num_servers > 50
