"""Streaming vs. batch ingestion: throughput and peak memory.

Runs EU1-ADSL at 5 % and 10 % of paper traffic through both ingestion
paths — the batch simulator (materialise the whole week, then analyse)
and `stream_dataset` (event-driven windows, online accumulators) — and
measures wall time plus in-process peak allocation (``tracemalloc``)
for each.  The streamed digest must equal the batch dataset digest
(the byte-parity contract), and at the larger scale the streamed peak
allocation must stay *below* the batch peak: bounded memory is the
whole point of the streaming path.

The numbers land in ``benchmarks/out/BENCH_stream.json`` (merged with
whatever the CI stream-smoke subprocess harness already wrote there —
that job measures whole-process RSS; this benchmark measures Python
allocations in-process, which is the sharper signal for the flow-record
working set).
"""

from __future__ import annotations

import gc
import json
import time
import tracemalloc
from typing import Dict, Tuple

import pytest

from repro.sim.driver import run_scenario
from repro.sim.scenarios import PAPER_SCENARIOS, build_world
from repro.stream import stream_dataset

from benchmarks.conftest import OUT_DIR

BENCH_DATASET = "EU1-ADSL"
BENCH_SCALES = (0.05, 0.1)
BENCH_SEED = 7
WINDOW_S = 3600.0


def _traced(fn) -> Tuple[float, int, object]:
    """(wall seconds, tracemalloc peak bytes, result) for one call."""
    gc.collect()
    tracemalloc.start()
    try:
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return elapsed, peak, result


@pytest.mark.parametrize("scale", BENCH_SCALES)
def test_bench_stream_vs_batch(scale, save_artifact):
    spec = PAPER_SCENARIOS[BENCH_DATASET]

    batch_s, batch_peak, batch = _traced(
        lambda: run_scenario(BENCH_DATASET, scale=scale, seed=BENCH_SEED,
                             use_cache=False)
    )
    flows = len(batch.dataset.records)
    batch_digest = batch.dataset.content_digest()
    del batch
    gc.collect()

    world = build_world(spec, scale=scale, seed=BENCH_SEED)
    stream_s, stream_peak, streamed = _traced(
        lambda: stream_dataset(world, window_s=WINDOW_S)
    )

    # Byte-parity first — throughput of a wrong answer is meaningless.
    assert streamed.digest.hexdigest() == batch_digest
    assert streamed.late_records == 0

    row = {
        "flows": flows,
        "windows": streamed.windows,
        "batch_seconds": round(batch_s, 4),
        "stream_seconds": round(stream_s, 4),
        "batch_flows_per_sec": round(flows / batch_s, 1),
        "stream_flows_per_sec": round(flows / stream_s, 1),
        "batch_peak_alloc_kb": batch_peak // 1024,
        "stream_peak_alloc_kb": stream_peak // 1024,
        "peak_open_sessions": streamed.peak_open_sessions,
        "peak_window_records": streamed.peak_window_records,
    }
    _merge_bench_json(f"scale_{scale}", row)
    save_artifact(
        f"perf_stream_{scale}",
        f"{BENCH_DATASET} @ scale {scale}: "
        f"batch {row['batch_flows_per_sec']:,.0f} flows/s "
        f"(peak {row['batch_peak_alloc_kb']:,d} KB alloc), "
        f"stream {row['stream_flows_per_sec']:,.0f} flows/s "
        f"(peak {row['stream_peak_alloc_kb']:,d} KB alloc, "
        f"{streamed.windows} windows)",
    )

    # Bounded memory: at the larger scale the streamed working set must
    # undercut full materialisation.  (At tiny scales fixed costs — the
    # request schedule, accumulator dicts — can dominate either side.)
    if scale >= 0.1:
        assert stream_peak < batch_peak, (
            f"streamed peak allocation {stream_peak} >= batch {batch_peak}"
        )
        # Throughput should stay within an order of magnitude of batch.
        assert stream_s < 10.0 * batch_s


def _merge_bench_json(key: str, row: Dict[str, object]) -> None:
    """Fold one scale's row into ``BENCH_stream.json`` without clobbering
    sections other writers (the stream-smoke harness) may have added."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_stream.json"
    doc: Dict[str, object] = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            doc = {}
    bench = doc.setdefault("benchmark", {})
    bench["dataset"] = BENCH_DATASET
    bench["window_s"] = WINDOW_S
    bench["methodology"] = (
        "single in-process pass per path; peak = tracemalloc peak bytes "
        "over the full simulate+ingest call"
    )
    bench.setdefault("scales", {})[key] = row
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
