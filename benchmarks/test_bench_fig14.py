"""Figure 14 — the top-4 hot videos' request time lines (EU1-ADSL)."""

from repro.core.hotspots import top_nonpreferred_videos


def test_bench_fig14(benchmark, results, pipe, save_artifact):
    name = "EU1-ADSL"
    records = pipe.focus_records[name]
    report = pipe.preferred_reports[name]
    num_hours = results[name].dataset.num_hours

    def compute():
        return top_nonpreferred_videos(records, report, pipe.server_map, num_hours)

    videos = benchmark(compute)

    lines = []
    for video in videos:
        lines.append(
            f"{video.video_id}: peak_hour={video.peak_hour()} "
            f"24h-concentration={video.spike_concentration():.2f} "
            f"total={sum(video.all_requests.ys):.0f} "
            f"non-preferred={sum(video.nonpreferred_requests.ys):.0f}"
        )
        lines.append(video.all_requests.render())
    save_artifact("fig14_hot_videos", "\n".join(lines))

    assert len(videos) == 4
    # "played by default ... for exactly 24 hours": day-long spikes.
    spiky = [v for v in videos if v.spike_concentration() > 0.8]
    assert len(spiky) >= 3
    assert all(sum(v.nonpreferred_requests.ys) > 0 for v in videos)
