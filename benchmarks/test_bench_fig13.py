"""Figure 13 — per-video non-preferred request counts."""

from repro.core.hotspots import (
    exactly_once_fraction,
    nonpreferred_requests_per_video,
    nonpreferred_video_cdf,
)


def test_bench_fig13(benchmark, results, pipe, save_artifact):
    name = "EU1-ADSL"
    records = pipe.focus_records[name]
    report = pipe.preferred_reports[name]

    def compute():
        return nonpreferred_video_cdf(records, report, pipe.server_map)

    benchmark(compute)

    lines = []
    for ds_name in results:
        counts = nonpreferred_requests_per_video(
            pipe.focus_records[ds_name], pipe.preferred_reports[ds_name], pipe.server_map
        )
        once = exactly_once_fraction(counts)
        lines.append(
            f"{ds_name:12s} videos={len(counts)} exactly-once={once:.3f} "
            f"max={max(counts.values())}"
        )
        # Paper: a large fraction downloaded exactly once (EU1-Campus ~85 %)
        # plus a long hot-video tail.  EU2 sits lower: its non-preferred
        # population is DNS-spillover-driven, so popular videos recur.
        assert once > (0.3 if ds_name == "EU2" else 0.55), ds_name
    save_artifact("fig13_nonpreferred_per_video", "\n".join(lines))

    cdf = pipe.fig13_cdf("EU1-ADSL")
    assert cdf.max > 10 * cdf.median
