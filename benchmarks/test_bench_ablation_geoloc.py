"""A2 — geolocation-method ablation: CBG vs. database vs. reverse DNS.

Section V's motivation, quantified: the IP-to-location database pins every
Google-AS server to headquarters (thousands of km of error for European
servers), reverse DNS answers only for the legacy fleet, and CBG localises
everything to tens of km.
"""

import pytest

from repro.geo.coords import haversine_km
from repro.geoloc.geodb import build_reference_geodb
from repro.geoloc.rdns import build_reverse_dns


@pytest.fixture(scope="module")
def truth(results):
    """Ground-truth positions of focus servers (for scoring only)."""
    worlds = [r.world for r in results.values()]

    def site_of(ip):
        for world in worlds:
            site = world.site_of_server_ip(ip)
            if site is not None:
                return site
        return None

    return site_of


def test_bench_ablation_geoloc(benchmark, results, pipe, truth, save_artifact):
    server_map = pipe.server_map
    sample_ips = [cluster.server_ips[0] for cluster in server_map.clusters]
    registry = next(iter(results.values())).world.registry
    geodb = build_reference_geodb(registry)

    def geodb_errors():
        errors = []
        for ip in sample_ips:
            claimed = geodb.lookup(ip)
            actual = truth(ip)
            if claimed is not None and actual is not None:
                errors.append(haversine_km(claimed.point, actual.point))
        return errors

    db_errors = benchmark(geodb_errors)

    cbg_errors = []
    for cluster in server_map.clusters:
        actual = truth(cluster.server_ips[0])
        if actual is not None:
            cbg_errors.append(haversine_km(cluster.estimate, actual.point))

    legacy_dcs = [
        dc for dc in next(iter(results.values())).world.system.directory
        if dc.dc_id.startswith("legacy-")
    ]
    rdns = build_reverse_dns(legacy_dcs)
    rdns_answers = sum(1 for ip in sample_ips if rdns.lookup(ip) is not None)

    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    lines = [
        f"CBG:      answers={len(cbg_errors)}/{len(sample_ips)} "
        f"median error={median(cbg_errors):.0f} km",
        f"geo DB:   answers={len(db_errors)}/{len(sample_ips)} "
        f"median error={median(db_errors):.0f} km",
        f"rDNS:     answers={rdns_answers}/{len(sample_ips)} (Google fleet has no PTR)",
    ]
    save_artifact("ablation_geolocation", "\n".join(lines))

    # CBG answers everywhere with small error.
    assert len(cbg_errors) == len(sample_ips)
    assert median(cbg_errors) < 150.0
    # The database is wrong by continental distances on average.
    assert median(db_errors) > 1000.0
    # Reverse DNS cannot see the new infrastructure (focus = Google AS).
    assert rdns_answers == 0
