"""A4 — what-if ablations over the design choices DESIGN.md calls out.

Runs the standard variant library against EU1-ADSL and checks that each
design knob moves exactly the metric it should: capacity moves overload
redirects, replication moves misses, the featured share moves hot-spot
overflow, and the selection policy moves everything.
"""

import pytest

from repro.whatif.compare import compare_variants, render_comparison
from repro.whatif.variants import standard_variants


@pytest.fixture(scope="module")
def report():
    return compare_variants("EU1-ADSL", standard_variants(), scale=0.008, seed=7)


def test_bench_ablation_whatif(benchmark, report, save_artifact):
    def compute():
        return compare_variants(
            "EU1-ADSL", standard_variants()[:2], scale=0.004, seed=7
        )

    benchmark.pedantic(compute, rounds=1, iterations=1)
    save_artifact("ablation_whatif", render_comparison(report))

    base = report.baseline

    # Selection policy: locality collapses, user RTT explodes.
    old = report.row("old-policy")
    assert old.preferred_share < 0.3
    assert old.median_serving_rtt_ms > 3.0 * base.median_serving_rtt_ms

    # Capacity: more capacity, less overload shedding — and vice versa.
    assert report.row("double-capacity").overload_rate <= base.overload_rate
    assert report.row("half-capacity").overload_rate >= base.overload_rate

    # Flash crowd: overload redirection absorbs the spike.
    assert report.row("flash-crowd").overload_rate > 3.0 * max(base.overload_rate, 1e-4)

    # Replication: sparse tails mean more first-access misses.
    assert report.row("sparse-replication").miss_rate > 1.5 * base.miss_rate

    # DNS spill: turning it off raises the preferred share.
    assert report.row("no-spill").preferred_share > base.preferred_share

    # Popularity shape barely moves user performance (caching absorbs it).
    flat = report.row("flat-popularity")
    assert abs(flat.median_startup_s - base.median_startup_s) < 0.1
