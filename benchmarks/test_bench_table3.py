"""Table III — Google servers per continent on each dataset."""

from repro.core.geography import continent_table, render_table3


def test_bench_table3(benchmark, results, pipe, save_artifact):
    server_map = pipe.server_map  # CBG clustering (timed separately in F3)
    datasets = [r.dataset for r in results.values()]
    focus = pipe.focus_ips

    def compute():
        return continent_table(datasets, server_map, focus)

    rows = benchmark(compute)
    save_artifact("table3", render_table3(rows))

    by_name = {r.name: r for r in rows}
    assert by_name["US-Campus"].counts["N. America"] > by_name["US-Campus"].counts["Europe"]
    for name in ("EU1-Campus", "EU1-ADSL", "EU1-FTTH", "EU2"):
        assert by_name[name].counts["Europe"] > by_name[name].counts["N. America"]
    # Foreign-continent servers are a visible minority for the big traces.
    for name in ("US-Campus", "EU1-ADSL"):
        row = by_name[name]
        home = "N. America" if name == "US-Campus" else "Europe"
        assert (row.total - row.counts[home]) / row.total > 0.05
