"""Figure 7 — cumulative fraction of bytes vs. RTT to the data center."""

from repro.core.preferred import analyze_preferred


def test_bench_fig07(benchmark, results, pipe, save_artifact):
    name = "EU1-ADSL"
    dataset = results[name].dataset
    server_map = pipe.server_map
    rtts = pipe.rtt_campaigns[name]
    focus = pipe.focus_ips[name]

    def compute():
        return analyze_preferred(dataset, server_map, rtts, focus_ips=focus)

    benchmark(compute)

    lines = []
    for ds_name in results:
        report = pipe.preferred_reports[ds_name]
        series = report.cumulative_by_rtt()
        lines.append(series.render())
        share = report.byte_share(report.preferred_id)
        lines.append(
            f"{ds_name}: preferred={report.preferred_id} "
            f"share={share:.3f} minRTT={report.preferred.min_rtt_ms:.1f}ms"
        )
    save_artifact("fig07_bytes_vs_rtt", "\n".join(lines))

    for ds_name in ("US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH"):
        report = pipe.preferred_reports[ds_name]
        assert report.byte_share(report.preferred_id) > 0.8, ds_name
    eu2 = pipe.preferred_reports["EU2"]
    shares = sorted((v.num_bytes / eu2.total_bytes for v in eu2.views), reverse=True)
    assert shares[0] + shares[1] > 0.9  # two data centers provide > 95 %
    # The preferred data center is the minimum-RTT major provider.
    for ds_name in results:
        report = pipe.preferred_reports[ds_name]
        majors = [v for v in report.views if v.num_bytes / report.total_bytes > 0.05]
        assert report.preferred.min_rtt_ms == min(v.min_rtt_ms for v in majors)
