"""Figure 2 — CDF of RTT to YouTube content servers from each vantage point."""

from repro.core.geography import rtt_cdf, vantage_rtt_campaign
from repro.geoloc.probing import RttProber


def test_bench_fig02(benchmark, results, pipe, save_artifact):
    dataset = results["EU1-ADSL"].dataset
    latency = results["EU1-ADSL"].world.latency
    site_of_ip = pipe.site_of_ip

    def compute():
        prober = RttProber(latency, probes=6, seed=123)
        return vantage_rtt_campaign(dataset, prober, site_of_ip)

    benchmark(compute)

    lines = []
    for name in results:
        cdf = pipe.rtt_cdf(name)
        lines.append(cdf.render(f"RTT ms — {name}"))
    save_artifact("fig02_rtt_cdfs", "\n".join(lines))

    # European vantage points see servers far too close for a California-
    # only deployment (the Maxmind refutation).
    for name in ("EU1-Campus", "EU1-ADSL", "EU1-FTTH", "EU2"):
        assert pipe.rtt_cdf(name).fraction_below(40.0) > 0.2, name
    # And every vantage point also reaches far-away servers.
    for name in results:
        assert pipe.rtt_cdf(name).max > 100.0
