"""A1 — selection-policy ablation: preferred-DC (new) vs. proportional (old).

Adhikari et al. found the pre-Google YouTube directed requests to data
centers proportionally to size, ignoring client location; the paper's core
finding is that the new system is preferred-data-center driven.  This
ablation runs the same EU1-ADSL workload under both policies and contrasts
the observable signatures.
"""

import pytest

from repro.core.pipeline import StudyPipeline
from repro.sim.driver import run_spec
from repro.sim.scenarios import PAPER_SCENARIOS

SCALE = 0.008
SEED = 7


@pytest.fixture(scope="module")
def both_reports():
    reports = {}
    for kind in ("preferred", "proportional"):
        result = run_spec(
            PAPER_SCENARIOS["EU1-ADSL"], scale=SCALE, seed=SEED, policy_kind=kind
        )
        pipe = StudyPipeline({"EU1-ADSL": result}, landmark_count=80, seed=11)
        reports[kind] = pipe.preferred_reports["EU1-ADSL"]
    return reports


def test_bench_ablation_policy(benchmark, both_reports, save_artifact):
    def compute():
        result = run_spec(
            PAPER_SCENARIOS["EU1-ADSL"], scale=SCALE, seed=SEED,
            policy_kind="proportional", use_cache=False,
        )
        return result

    benchmark.pedantic(compute, rounds=2, iterations=1)

    new = both_reports["preferred"]
    old = both_reports["proportional"]

    def weighted_rtt(report):
        total = sum(v.num_bytes for v in report.views)
        return sum(v.min_rtt_ms * v.num_bytes for v in report.views) / total

    lines = [
        f"new policy:  top-DC byte share={new.byte_share(new.preferred_id):.3f} "
        f"byte-weighted RTT={weighted_rtt(new):.1f}ms #DCs={len(new.views)}",
        f"old policy:  top-DC byte share={old.views[0].num_bytes / old.total_bytes:.3f} "
        f"byte-weighted RTT={weighted_rtt(old):.1f}ms #DCs={len(old.views)}",
    ]
    save_artifact("ablation_policy", "\n".join(lines))

    # The new policy concentrates traffic on one nearby data center...
    assert new.byte_share(new.preferred_id) > 0.8
    # ...the old policy spreads it across the world by size.
    assert old.views[0].num_bytes / old.total_bytes < 0.5
    assert len(old.views) > len(new.views)
    # And users pay for it in RTT.
    assert weighted_rtt(old) > 3.0 * weighted_rtt(new)
