"""Figure 5 — flows per session vs. the session gap T (US-Campus),
plus the A3 ablation extending the sweep to all five datasets."""

from repro.core.sessions import gap_sensitivity


def _render(histograms):
    lines = []
    for gap in sorted(histograms):
        h = histograms[gap]
        cells = " ".join(f"{label}:{h[label]:.3f}" for label in ("1", "2", "3", ">9"))
        lines.append(f"T={gap:>5.0f}s  {cells}")
    return "\n".join(lines)


def test_bench_fig05(benchmark, results, pipe, save_artifact):
    records = pipe.focus_records["US-Campus"]

    def compute():
        return gap_sensitivity(records)

    histograms = benchmark(compute)
    save_artifact("fig05_gap_sensitivity", _render(histograms))

    singles = {gap: h["1"] for gap, h in histograms.items()}
    assert abs(singles[1.0] - singles[10.0]) < 0.01  # T <= 10 s stable
    assert singles[300.0] < singles[10.0] - 0.01     # big T merges interactions


def test_bench_fig05_all_datasets_ablation(benchmark, results, pipe, save_artifact):
    """A3: the T-sweep behaves the same at every vantage point."""
    sweep = benchmark.pedantic(
        lambda: {name: gap_sensitivity(pipe.focus_records[name]) for name in results},
        rounds=1,
        iterations=1,
    )
    lines = []
    for name in results:
        histograms = sweep[name]
        singles = {gap: h["1"] for gap, h in histograms.items()}
        lines.append(f"== {name} ==")
        lines.append(_render(histograms))
        assert abs(singles[1.0] - singles[10.0]) < 0.015, name
        assert singles[300.0] <= singles[1.0], name
    save_artifact("fig05_ablation_all_datasets", "\n".join(lines))
