"""Table II — percentage of servers and bytes received per AS."""

from repro.core.asmap import breakdown_by_as, render_table2


def test_bench_table2(benchmark, results, save_artifact):
    pairs = [(r.dataset, r.world.registry) for r in results.values()]

    def compute():
        return [breakdown_by_as(ds, reg) for ds, reg in pairs]

    breakdowns = benchmark(compute)
    save_artifact("table2", render_table2(breakdowns))

    by_name = {b.name: b for b in breakdowns}
    # Google AS carries almost all bytes outside EU2.
    for name in ("US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH"):
        assert by_name[name].byte_fractions["google"] > 0.95
    # Legacy YouTube-EU: many distinct servers, few bytes.
    for b in breakdowns:
        srv, byt = b.share("youtube_eu")
        assert srv > byt
    # EU2: the in-ISP data center shows up in the Same-AS column.
    assert 0.2 < by_name["EU2"].byte_fractions["same_as"] < 0.6
