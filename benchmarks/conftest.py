"""Shared benchmark fixtures.

The simulated week and the pipeline prerequisites are built once per
session; each benchmark times its own analysis step and writes the
regenerated table/figure into ``benchmarks/out/`` so the artifacts can be
compared against the paper (see EXPERIMENTS.md).

Volume scale: 2 % of the paper's traffic.  Absolute counts scale with it;
every shape assertion is scale-free.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

# Benchmarks time real compute; a warm artifact cache would make the
# numbers meaningless.  Opt in explicitly (REPRO_CACHE=on) to benchmark
# warm-cache behaviour instead.
os.environ.setdefault("REPRO_CACHE", "off")

from repro import obs
from repro.artifacts.store import default_store
from repro.core.pipeline import StudyPipeline
from repro.exec import ParallelExecutor
from repro.reporting.timing import phases_summary, write_timing_json
from repro.sim.driver import run_all

BENCH_SCALE = 0.02
BENCH_SEED = 7

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def executor():
    """The session's execution backend (``REPRO_EXECUTOR``, default serial).

    Results are backend-independent; only the timings differ.  At session
    end the accumulated per-task timings land in
    ``benchmarks/out/timing_<backend>.json`` — the artifact the CI
    benchmark-smoke job uploads for both serial and process runs.
    """
    executor = ParallelExecutor.from_env()
    yield executor
    if executor.stats:
        OUT_DIR.mkdir(exist_ok=True)
        store = default_store()
        write_timing_json(
            executor.stats,
            OUT_DIR / f"timing_{executor.backend}.json",
            cache=store.stats_summary() if store is not None else None,
            phases=phases_summary(),
            metrics=obs.current_run().metrics.snapshot(),
        )


@pytest.fixture(scope="session")
def results(executor):
    """The five simulated datasets."""
    return run_all(scale=BENCH_SCALE, seed=BENCH_SEED, executor=executor)


@pytest.fixture(scope="session")
def pipe(results, executor):
    """The analysis pipeline (full 215-landmark CBG)."""
    return StudyPipeline(results, landmark_count=None, seed=11, executor=executor)


@pytest.fixture(scope="session")
def save_artifact():
    """Writer for regenerated tables/figures."""
    OUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> Path:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return save
