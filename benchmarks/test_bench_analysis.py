"""Kernel speedup benchmark: python spec vs. numpy columnar kernels.

Simulates one large dataset (EU1-ADSL at 10 % of paper traffic — five
times the other benchmarks' volume, so the analysis hot path dominates),
then times the paper's heaviest analyses under ``REPRO_KERNELS=python``
and ``REPRO_KERNELS=numpy``.  Both backends must produce identical
results; the combined speedup (sum of python times over sum of numpy
times) must be at least 5x and lands in ``benchmarks/out/BENCH_analysis.json``.

Methodology: each stage is timed with ``time.perf_counter``, best of
``REPEATS`` passes over a *fresh* :class:`FlowTable` per pass — no
session-index or histogram cache survives between passes or stages.  The
one-time columnar materialisation is pre-built outside the timed region
(mirroring the real pipeline, where ``Dataset.columnar()`` and
``StudyPipeline.focus_tables`` build each table once and every analysis
shares it) and is measured separately by
:func:`test_bench_columnar_materialisation`.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Callable, Dict, List, Tuple

import pytest

from repro.core import hotspots
from repro.core.pipeline import StudyPipeline
from repro.core.sessions import build_sessions, gap_sensitivity
from repro.sim.driver import run_scenario
from repro.trace.columnar import FlowTable, kernels_backend

from benchmarks.conftest import OUT_DIR

BENCH_DATASET = "EU1-ADSL"
BENCH_SCALE = 0.1
REPEATS = 3
REQUIRED_SPEEDUP = 5.0

pytest.importorskip("numpy")


@pytest.fixture(scope="module")
def big_result():
    """EU1-ADSL at 10 % scale (simulated once; reused by every stage)."""
    return run_scenario(BENCH_DATASET, scale=BENCH_SCALE, seed=7)


@pytest.fixture(scope="module")
def analysis_inputs(big_result):
    """Server map + preferred report over the big dataset (built once).

    A small landmark budget keeps the CBG calibration out of the measured
    window — this benchmark times the *analysis* kernels, not geolocation.
    """
    pipe = StudyPipeline({BENCH_DATASET: big_result}, landmark_count=30, seed=11)
    return (
        pipe.focus_records[BENCH_DATASET],
        pipe.preferred_reports[BENCH_DATASET],
        pipe.server_map,
        pipe.dataset(BENCH_DATASET).num_hours,
    )


def _fresh_source(records) -> FlowTable:
    """A cold :class:`FlowTable` with only the columns materialised.

    The column build is charged to the materialisation benchmark, not the
    stage timings — the real pipeline builds each table exactly once and
    shares it across every analysis.  The session index and every other
    per-stage cache stay cold.
    """
    table = FlowTable(list(records))
    if kernels_backend() == "numpy":
        table.columns()
        table.dst_codes()
    return table


def _timed(records, fn: Callable[[FlowTable], object]) -> Tuple[float, object]:
    """Best-of-``REPEATS`` wall time over fresh tables, and the result.

    The collector is paused inside the timed region (both backends
    allocate tens of thousands of objects per pass; collection pauses
    would otherwise dominate the faster one's timings).
    """
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        source = _fresh_source(records)
        result = None  # drop the previous pass's output before re-timing
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn(source)
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, result


def _run_stages(records, report, smap, num_hours) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Time every hot analysis stage under the *current* backend."""
    stages: List[Tuple[str, Callable[[FlowTable], object]]] = [
        ("build_sessions", lambda t: build_sessions(t, gap_s=1.0)),
        ("gap_sensitivity", lambda t: gap_sensitivity(t)),
        (
            "top_nonpreferred_videos",
            lambda t: hotspots.top_nonpreferred_videos(t, report, smap, num_hours),
        ),
        (
            "preferred_server_load",
            lambda t: hotspots.preferred_server_load(t, report, smap, num_hours),
        ),
        (
            "nonpreferred_video_cdf",
            lambda t: hotspots.nonpreferred_video_cdf(t, report, smap),
        ),
    ]
    seconds: Dict[str, float] = {}
    outputs: Dict[str, object] = {}
    for name, fn in stages:
        seconds[name], outputs[name] = _timed(records, fn)
    return seconds, outputs


def test_bench_kernel_speedup(analysis_inputs):
    records, report, smap, num_hours = analysis_inputs
    timings: Dict[str, Dict[str, float]] = {}
    outputs: Dict[str, Dict[str, object]] = {}
    saved = os.environ.get("REPRO_KERNELS")
    try:
        for backend in ("python", "numpy"):
            os.environ["REPRO_KERNELS"] = backend
            assert kernels_backend() == backend
            timings[backend], outputs[backend] = _run_stages(records, report, smap, num_hours)
    finally:
        if saved is None:
            os.environ.pop("REPRO_KERNELS", None)
        else:
            os.environ["REPRO_KERNELS"] = saved

    # The speedup only counts if the outputs are *identical*.
    for stage, py_out in outputs["python"].items():
        np_out = outputs["numpy"][stage]
        if stage == "nonpreferred_video_cdf":
            assert py_out._values == np_out._values, stage
        else:
            assert py_out == np_out, stage

    python_total = sum(timings["python"].values())
    numpy_total = sum(timings["numpy"].values())
    speedup = python_total / numpy_total
    per_stage = {
        stage: round(timings["python"][stage] / timings["numpy"][stage], 2)
        for stage in timings["python"]
    }

    doc = {
        "dataset": BENCH_DATASET,
        "scale": BENCH_SCALE,
        "flows": len(records),
        "repeats": REPEATS,
        "methodology": (
            "best-of-repeats wall time per stage over a fresh FlowTable per "
            "pass; the one-time columnar materialisation is pre-built outside "
            "the timed region (a study builds each table once and shares it) "
            "and benchmarked separately"
        ),
        "seconds_python": {k: round(v, 6) for k, v in timings["python"].items()},
        "seconds_numpy": {k: round(v, 6) for k, v in timings["numpy"].items()},
        "speedup_per_stage": per_stage,
        "speedup_combined": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_analysis.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"combined kernel speedup {speedup:.2f}x below the required "
        f"{REQUIRED_SPEEDUP}x: {per_stage}"
    )


def test_bench_columnar_materialisation(benchmark, analysis_inputs):
    """Cost of the one-time columnar build (amortised across analyses)."""
    records, _, _, _ = analysis_inputs
    cols = benchmark(lambda: FlowTable(list(records)).columns())
    assert len(cols.t_start) == len(records)
