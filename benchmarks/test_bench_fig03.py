"""Figure 3 — radius of the CBG confidence region for YouTube servers."""


def test_bench_fig03(benchmark, results, pipe, save_artifact):
    geolocator = pipe.geolocator  # calibration happens once, outside timing
    server_map = pipe.server_map
    # Re-geolocate a handful of known targets to time the solver itself.
    some_net24s = sorted(server_map.results_by_slash24)[:5]
    sample_ips = [net24 + 1 for net24 in some_net24s]
    site_of_ip = pipe.site_of_ip

    def compute():
        return [geolocator.geolocate_target(site_of_ip(ip)) for ip in sample_ips]

    benchmark(compute)

    cdfs = pipe.fig3_cdfs
    save_artifact(
        "fig03_confidence_radius",
        "\n".join(cdf.render(f"confidence km — {region}") for region, cdf in cdfs.items()),
    )

    # Paper: median 41 km for both US and Europe; p90 at 320/200 km.
    for region, cdf in cdfs.items():
        assert cdf.median < 120.0, region
        assert cdf.quantile(0.9) < 400.0, region
