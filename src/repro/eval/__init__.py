"""Ground-truth evaluation of the blind measurement methodology.

:mod:`repro.core` is the paper's side of the firewall: it sees only what
a passive monitor could see.  :mod:`repro.eval` is the examiner's side —
it reads the simulator's per-request ground truth
(:class:`repro.sim.engine.GroundTruthLog`) and grades the blind
pipeline's verdicts against it, per selection policy.  Like
:mod:`repro.core.validation`, it crosses the firewall on purpose, and
nothing in :mod:`repro.core` depends on it.
"""

from repro.eval.attribution import (  # noqa: F401
    AttributionScore,
    PolicyEvaluation,
    evaluate_policy,
    render_attribution,
    score_attribution,
)
