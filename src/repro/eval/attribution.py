"""Attribution scoring: blind session verdicts vs. simulator ground truth.

The paper's Figure-10 methodology labels every video session *blind* —
"preferred", "dns" or "redirection" — from cluster membership alone
(:func:`repro.core.nonpreferred.session_verdicts`).  The simulator knows
what actually happened: every request's :class:`~repro.sim.engine.
GroundTruthLog` entry records the policy's intended (anchor) data center,
the DNS answer, and the redirect chain.  This module joins the two sides
and emits, per dataset and per selection policy, a 3×3 confusion matrix
(truth × inferred), its accuracy, and a preferred-DC agreement check —
the number the selection-policy testbed exists to produce: *how wrong
does the blind methodology get under each mechanism?*

Sessions and truth records join on ``(client_ip, video_id)`` plus time
containment: a request belongs to the session whose flow span covers its
time (with a small slack for flows the monitor missed at the session's
edge).  Requests whose flows the monitor missed entirely — so no session
contains them — are counted as orphans, not errors.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.pipeline import StudyPipeline
from repro.core.sessions import Session
from repro.sim.engine import (
    GroundTruthLog,
    SimulationResult,
    TRUTH_DNS,
    TRUTH_LABELS,
    TRUTH_REDIRECTION,
)

#: Seconds of slack when matching a request time to a session's flow span
#: (covers first flows the monitor missed, which shift the observed start
#: after the request time).
MATCH_SLACK_S = 5.0


@dataclass(frozen=True)
class AttributionScore:
    """One dataset's blind-verdict scorecard under one policy.

    Attributes:
        dataset_name: Dataset scored.
        policy_kind: Selection policy the world ran.
        matrix: Confusion counts, ``(truth label, inferred label)`` →
            sessions; both axes range over :data:`~repro.sim.engine.
            TRUTH_LABELS`.
        matched_sessions: Sessions joined to ≥1 truth record and blindly
            classified (the matrix total).
        unmatched_sessions: Sessions no truth record joined to.
        unclassified_sessions: Sessions whose blind verdict is ``None``
            (unclustered servers) — excluded from the matrix.
        orphan_requests: Truth records no session contains (the monitor
            missed every flow of the request).
        inferred_preferred_dc: Ground-truth data center owning most of
            the blindly inferred preferred cluster's servers.
        true_preferred_dc: Modal anchor data center of the truth log —
            what the policy actually intended, most of the week.
    """

    dataset_name: str
    policy_kind: str
    matrix: Mapping[Tuple[str, str], int]
    matched_sessions: int
    unmatched_sessions: int
    unclassified_sessions: int
    orphan_requests: int
    inferred_preferred_dc: Optional[str]
    true_preferred_dc: str

    @property
    def accuracy(self) -> float:
        """Diagonal share of the confusion matrix (0 when empty)."""
        total = sum(self.matrix.values())
        if total == 0:
            return 0.0
        agree = sum(self.matrix.get((label, label), 0) for label in TRUTH_LABELS)
        return agree / total

    @property
    def coverage(self) -> float:
        """Share of sessions that were matched and classified."""
        total = (
            self.matched_sessions
            + self.unmatched_sessions
            + self.unclassified_sessions
        )
        return self.matched_sessions / max(1, total)

    @property
    def preferred_match(self) -> bool:
        """Did the blind preferred-DC inference hit the policy's intent?"""
        return self.inferred_preferred_dc == self.true_preferred_dc

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (``repro eval --json``, the smoke benchmark)."""
        return {
            "dataset": self.dataset_name,
            "policy": self.policy_kind,
            "accuracy": self.accuracy,
            "coverage": self.coverage,
            "matrix": {
                f"{truth}->{inferred}": count
                for (truth, inferred), count in sorted(self.matrix.items())
            },
            "matched_sessions": self.matched_sessions,
            "unmatched_sessions": self.unmatched_sessions,
            "unclassified_sessions": self.unclassified_sessions,
            "orphan_requests": self.orphan_requests,
            "inferred_preferred_dc": self.inferred_preferred_dc,
            "true_preferred_dc": self.true_preferred_dc,
            "preferred_match": self.preferred_match,
        }


def match_session_truths(
    sessions: Sequence[Session],
    truth: GroundTruthLog,
    slack_s: float = MATCH_SLACK_S,
) -> Tuple[List[List[int]], int]:
    """Join truth records to the sessions whose flow spans contain them.

    Args:
        sessions: One dataset's sessions (any order).
        truth: The dataset's ground-truth log.
        slack_s: Tolerated gap between a request time and the session's
            observed span (monitor-missed edge flows).

    Returns:
        ``(assignments, orphans)`` — per-session lists of truth-record
        indices (parallel to ``sessions``), and the count of truth
        records no session contains.
    """
    by_key: Dict[Tuple[int, str], List[int]] = {}
    for position, session in enumerate(sessions):
        by_key.setdefault((session.client_ip, session.video_id), []).append(position)
    for positions in by_key.values():
        positions.sort(key=lambda p: sessions[p].t_start)

    truth_by_key: Dict[Tuple[int, str], List[int]] = {}
    for index in range(len(truth)):
        key = (truth.client_ips[index], truth.video_ids[index])
        truth_by_key.setdefault(key, []).append(index)

    assignments: List[List[int]] = [[] for _ in sessions]
    orphans = 0
    for key, indices in truth_by_key.items():
        positions = by_key.get(key)
        if not positions:
            orphans += len(indices)
            continue
        indices.sort(key=lambda i: truth.t_s[i])
        cursor = 0
        for index in indices:
            t = truth.t_s[index]
            # Same-key sessions are time-disjoint (the gap merge separates
            # them), so advance past every session that ended before t.
            while (
                cursor < len(positions)
                and t > sessions[positions[cursor]].last_flow.t_end + slack_s
            ):
                cursor += 1
            if (
                cursor < len(positions)
                and t >= sessions[positions[cursor]].t_start - slack_s
            ):
                assignments[positions[cursor]].append(index)
            else:
                orphans += 1
    return assignments, orphans


def _session_truth_label(truth: GroundTruthLog, indices: Sequence[int]) -> str:
    """Aggregate request labels into one session-level truth label.

    Precedence mirrors the blind verdict's semantics: any DNS-caused
    request makes the session DNS-caused; else any redirected request
    makes it redirection; else it is preferred end to end.
    """
    labels = {truth.labels[index] for index in indices}
    if TRUTH_DNS in labels:
        return TRUTH_DNS
    if TRUTH_REDIRECTION in labels:
        return TRUTH_REDIRECTION
    return TRUTH_LABELS[0]


def _modal_anchor_dc(truth: GroundTruthLog) -> str:
    """The anchor data center most requests carried (deterministic ties)."""
    counts = Counter(truth.anchor_dcs)
    if not counts:
        return ""
    return min(counts, key=lambda dc_id: (-counts[dc_id], dc_id))


def _cluster_majority_dc(
    pipeline: StudyPipeline, result: SimulationResult, cluster_id: str
) -> Optional[str]:
    """Ground-truth data center owning most of a cluster's servers."""
    counts: Dict[str, int] = {}
    for cluster in pipeline.server_map.clusters:
        if cluster.cluster_id != cluster_id:
            continue
        for ip in cluster.server_ips:
            dc = result.world.system.directory.dc_of_server(ip)
            if dc is not None:
                counts[dc.dc_id] = counts.get(dc.dc_id, 0) + 1
    if not counts:
        return None
    return min(counts, key=lambda dc_id: (-counts[dc_id], dc_id))


def score_dataset(
    pipeline: StudyPipeline,
    result: SimulationResult,
    name: str,
    policy_kind: str,
) -> AttributionScore:
    """Score one dataset's blind verdicts against its ground truth."""
    sessions = pipeline.sessions[name]
    verdicts = pipeline.session_verdicts(name)
    assignments, orphans = match_session_truths(sessions, result.truth)

    matrix: Dict[Tuple[str, str], int] = {}
    matched = unmatched = unclassified = 0
    for verdict, indices in zip(verdicts, assignments):
        if not indices:
            unmatched += 1
            continue
        if verdict is None:
            unclassified += 1
            continue
        matched += 1
        cell = (_session_truth_label(result.truth, indices), verdict)
        matrix[cell] = matrix.get(cell, 0) + 1

    report = pipeline.preferred_reports[name]
    return AttributionScore(
        dataset_name=name,
        policy_kind=policy_kind,
        matrix=matrix,
        matched_sessions=matched,
        unmatched_sessions=unmatched,
        unclassified_sessions=unclassified,
        orphan_requests=orphans,
        inferred_preferred_dc=_cluster_majority_dc(
            pipeline, result, report.preferred_id
        ),
        true_preferred_dc=_modal_anchor_dc(result.truth),
    )


def score_attribution(
    pipeline: StudyPipeline,
    results: Mapping[str, SimulationResult],
    policy_kind: str,
) -> Dict[str, AttributionScore]:
    """Score every dataset of a study (pipeline dataset order)."""
    return {
        name: score_dataset(pipeline, results[name], name, policy_kind)
        for name in pipeline.dataset_names
        if name in results
    }


@dataclass(frozen=True)
class PolicyEvaluation:
    """A policy's full evaluation: per-dataset scores plus trace digests.

    Attributes:
        policy_kind: The evaluated selection policy.
        scores: Per-dataset attribution scorecards.
        digests: Per-dataset trace content digests (byte-identity checks
            — the golden-fixture scripts read these).
    """

    policy_kind: str
    scores: Dict[str, AttributionScore]
    digests: Dict[str, str]

    @property
    def mean_accuracy(self) -> float:
        """Unweighted mean accuracy over datasets (0 with none)."""
        if not self.scores:
            return 0.0
        return sum(score.accuracy for score in self.scores.values()) / len(self.scores)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view of the whole evaluation."""
        return {
            "policy": self.policy_kind,
            "mean_accuracy": self.mean_accuracy,
            "datasets": {
                name: score.as_dict() for name, score in self.scores.items()
            },
            "digests": dict(self.digests),
        }


def evaluate_policy(
    policy_kind: str,
    scale: float = 0.01,
    seed: int = 7,
    landmark_count: Optional[int] = 60,
    names: Optional[Tuple[str, ...]] = None,
    executor=None,
) -> PolicyEvaluation:
    """Simulate a policy's study, run the blind pipeline, and score it.

    Args:
        policy_kind: A registered selection-policy kind.
        scale: Traffic scale for the simulated weeks.
        seed: Master seed.
        landmark_count: CBG landmark budget (``None`` = all landmarks).
        names: Datasets to evaluate (default: all five).
        executor: Fan-out strategy for the simulations.

    Returns:
        The :class:`PolicyEvaluation`.

    Raises:
        repro.cdn.selection.UnknownPolicyError: For unregistered kinds
            (raised before any simulation).
    """
    from repro.sim.driver import run_all

    # Fail fast on unknown kinds — before a five-week simulation starts.
    from repro.cdn.selection import UnknownPolicyError, registered_policy_kinds

    if policy_kind not in registered_policy_kinds():
        raise UnknownPolicyError(policy_kind)

    results = run_all(
        scale=scale, seed=seed, policy_kind=policy_kind, names=names,
        executor=executor,
    )
    pipeline = StudyPipeline(
        results, landmark_count=landmark_count, executor=executor
    )
    return PolicyEvaluation(
        policy_kind=policy_kind,
        scores=score_attribution(pipeline, results, policy_kind),
        digests={
            name: result.dataset.content_digest()
            for name, result in results.items()
        },
    )


def render_attribution(evaluation: PolicyEvaluation) -> str:
    """Text scorecard: one confusion matrix per dataset, then a summary."""
    lines = [f"ATTRIBUTION SCORECARD — policy={evaluation.policy_kind}"]
    width = max(len(label) for label in TRUTH_LABELS)
    for name, score in evaluation.scores.items():
        lines.append("")
        lines.append(
            f"{name}: accuracy={score.accuracy:.3f} "
            f"coverage={score.coverage:.3f} "
            f"sessions={score.matched_sessions} "
            f"(unmatched {score.unmatched_sessions}, "
            f"unclassified {score.unclassified_sessions}, "
            f"orphan requests {score.orphan_requests})"
        )
        header = " ".join(f"{label:>{width}s}" for label in TRUTH_LABELS)
        lines.append(f"  truth \\ inferred  {header}")
        for truth_label in TRUTH_LABELS:
            cells = " ".join(
                f"{score.matrix.get((truth_label, inferred), 0):>{width}d}"
                for inferred in TRUTH_LABELS
            )
            lines.append(f"  {truth_label:>16s}  {cells}")
        verdict = "MATCH" if score.preferred_match else "MISMATCH"
        lines.append(
            f"  preferred DC: inferred {score.inferred_preferred_dc} "
            f"vs intended {score.true_preferred_dc} [{verdict}]"
        )
    lines.append("")
    lines.append(
        f"mean accuracy over {len(evaluation.scores)} datasets: "
        f"{evaluation.mean_accuracy:.3f}"
    )
    return "\n".join(lines)
