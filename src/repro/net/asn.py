"""Autonomous-system registry — the simulated ``whois``.

Section IV of the paper maps every server IP to its AS with ``whois`` and
builds Table II from the result.  This module provides the registry the
world builder populates and the longest-prefix-match lookup the analysis
uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.ip import IPv4Network, format_ip

#: AS numbers fixed by the paper.
GOOGLE_ASN = 15169
YOUTUBE_EU_ASN = 43515
LEGACY_YOUTUBE_ASN = 36561  # "now not used anymore" (Section IV)
CW_ASN = 1273
GBLX_ASN = 3549


@dataclass(frozen=True)
class AutonomousSystem:
    """An autonomous system.

    Attributes:
        asn: AS number.
        name: Registry name, e.g. ``"Google Inc."``.
    """

    asn: int
    name: str


@dataclass
class _PrefixEntry:
    network: IPv4Network
    asn: int


class AsRegistry:
    """IP-prefix to AS mapping with longest-prefix-match lookup.

    Lookups bucket prefixes by length and walk from the longest length down,
    which is O(number of distinct prefix lengths) per query — plenty fast
    for analysis-time use and independent of registry size.
    """

    def __init__(self) -> None:
        self._systems: Dict[int, AutonomousSystem] = {}
        # prefix_len -> {network_base -> asn}
        self._by_len: Dict[int, Dict[int, int]] = {}
        self._lens_desc: List[int] = []

    def register_as(self, asn: int, name: str) -> AutonomousSystem:
        """Register (or re-fetch) an AS by number."""
        existing = self._systems.get(asn)
        if existing is not None:
            if existing.name != name:
                raise ValueError(f"AS{asn} already registered as {existing.name!r}")
            return existing
        system = AutonomousSystem(asn, name)
        self._systems[asn] = system
        return system

    def announce(self, network: IPv4Network, asn: int) -> None:
        """Record that ``network`` is originated by ``asn``.

        Raises:
            KeyError: If the AS was never registered.
            ValueError: If the exact prefix is already announced by another AS.
        """
        if asn not in self._systems:
            raise KeyError(f"AS{asn} not registered")
        bucket = self._by_len.setdefault(network.prefix_len, {})
        previous = bucket.get(network.network)
        if previous is not None and previous != asn:
            raise ValueError(f"{network} already announced by AS{previous}")
        bucket[network.network] = asn
        if network.prefix_len not in self._lens_desc:
            self._lens_desc.append(network.prefix_len)
            self._lens_desc.sort(reverse=True)

    def whois(self, ip: int) -> Optional[AutonomousSystem]:
        """Longest-prefix-match lookup; ``None`` when unannounced."""
        for plen in self._lens_desc:
            mask = 0 if plen == 0 else ((1 << 32) - 1) ^ ((1 << (32 - plen)) - 1)
            asn = self._by_len[plen].get(ip & mask)
            if asn is not None:
                return self._systems[asn]
        return None

    def asn_of(self, ip: int) -> Optional[int]:
        """Like :meth:`whois` but returns only the AS number."""
        system = self.whois(ip)
        return None if system is None else system.asn

    def has_as(self, asn: int) -> bool:
        """Whether an AS number is registered."""
        return asn in self._systems

    def get_as(self, asn: int) -> AutonomousSystem:
        """Fetch a registered AS by number.

        Raises:
            KeyError: If not registered.
        """
        try:
            return self._systems[asn]
        except KeyError:
            raise KeyError(f"AS{asn} not registered") from None

    def announced_networks(self, asn: int) -> List[IPv4Network]:
        """All prefixes announced by a given AS."""
        result: List[IPv4Network] = []
        for plen, bucket in self._by_len.items():
            for base, owner in bucket.items():
                if owner == asn:
                    result.append(IPv4Network(base, plen))
        result.sort(key=lambda n: (n.network, n.prefix_len))
        return result

    def describe(self, ip: int) -> str:
        """Human-readable whois line for logging and examples."""
        system = self.whois(ip)
        if system is None:
            return f"{format_ip(ip)}: no origin AS"
        return f"{format_ip(ip)}: AS{system.asn} {system.name}"
