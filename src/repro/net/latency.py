"""Distance-driven end-to-end delay model.

The model generates the RTTs that every measurement in the reproduction
consumes: the vantage-point ping campaigns (Figure 2), CBG's landmark probes
(Figure 3, Table III), the per-data-center RTT ranking that defines the
preferred data center (Figure 7), and the PlanetLab test-video experiment
(Figures 17, 18).

Structure of a minimum RTT between two sites::

    rtt_min = 2 * distance / C_FIBER * inflation     (propagation)
            + detour                                 (transit/peering detour)
            + last_mile(a) + last_mile(b)            (access links)
            + extra(a) + extra(b)                    (site egress, e.g. campus firewall)
            + PROCESSING_MS                          (endpoint turnaround)

``inflation`` models route circuitousness and ``detour`` models paths that
are hauled through distant peering points; both are deterministic functions
of the unordered *site-group* pair, so repeated probes of the same path see
the same floor — exactly the property delay-based geolocation relies on
(Percacci & Vespignani: delay grows linearly with distance, with
path-dependent scatter).  Grouping matters: all clients of one vantage point
share the group of their PoP, so they agree with the probe PC about which
data center is closest — the consistency the preferred-data-center analysis
(Section VI-B) depends on.

Detours only ever *add* latency, so CBG's distance constraints (upper
bounds) remain valid; they just widen.  The ``detour_overrides`` hook lets a
scenario pin specific paths — this is how the reproduction engineers the
US-Campus situation where the lowest-RTT data center is not a geographically
close one (Figure 8).
"""

from __future__ import annotations

import enum
import math
import random
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.geo.coords import GeoPoint, haversine_km

#: One-way propagation speed in fibre, km per millisecond (~2/3 c).
C_FIBER_KM_PER_MS = 200.0

#: Fixed endpoint turnaround (kernel + NIC on both ends), ms.
PROCESSING_MS = 0.3

#: Route-inflation range applied to great-circle propagation.
_INFLATION_MIN = 1.3
_INFLATION_MAX = 2.3

#: Queueing-jitter scale range (ms); exponential noise above the floor.
_JITTER_MIN_MS = 0.3
_JITTER_MAX_MS = 3.0

#: Probability that a path takes a transit detour, and its magnitude (ms).
_DETOUR_PROBABILITY = 0.35
_DETOUR_MIN_MS = 2.0
_DETOUR_MAX_MS = 20.0


class AccessTechnology(enum.Enum):
    """Last-mile technology of a site; fixes its access-link latency."""

    DATACENTER = "datacenter"
    BACKBONE = "backbone"
    CAMPUS = "campus"
    FTTH = "ftth"
    ADSL = "adsl"

    @property
    def last_mile_ms(self) -> float:
        """One-way access latency contributed by this technology, ms."""
        return _LAST_MILE_MS[self]


_LAST_MILE_MS = {
    AccessTechnology.DATACENTER: 0.1,
    AccessTechnology.BACKBONE: 0.3,
    AccessTechnology.CAMPUS: 0.8,
    AccessTechnology.FTTH: 1.5,
    AccessTechnology.ADSL: 13.0,
}


@dataclass(frozen=True)
class Site:
    """A network endpoint with a physical location.

    Attributes:
        key: Stable identifier (IP string, landmark name, ...).
        point: Physical location.
        access: Last-mile technology.
        extra_ms: Additional fixed one-way latency at this site (e.g. a
            campus network's congested egress, an ISP PoP's backhaul).
        group: Routing-group identifier; sites sharing a group share paths.
            Defaults to ``key``.  All clients and the probe PC of one
            vantage point use the vantage's group; all servers of one data
            center use the data center's group.
    """

    key: str
    point: GeoPoint
    access: AccessTechnology
    extra_ms: float = 0.0
    group: Optional[str] = None

    @property
    def routing_group(self) -> str:
        """The effective routing group."""
        return self.group if self.group is not None else self.key


@dataclass(frozen=True)
class PathProfile:
    """Deterministic characteristics of the path between two site groups.

    Attributes:
        inflation: Multiplier over great-circle propagation delay.
        jitter_ms: Scale of the exponential queueing noise above the floor.
        detour_ms: Additive transit/peering detour.
    """

    inflation: float
    jitter_ms: float
    detour_ms: float


class LatencyModel:
    """Generates minimum and sampled RTTs between :class:`Site` pairs.

    Args:
        seed: World seed; all path properties derive from it.
        detour_overrides: Optional pinned detours keyed by unordered group
            pairs, e.g. ``{("vp:US-Campus", "dc-chicago"): 18.0}``.  Used by
            scenario builders to engineer specific RTT rankings.
    """

    def __init__(
        self,
        seed: int = 0,
        detour_overrides: Optional[Dict[Tuple[str, str], float]] = None,
    ):
        self._seed = seed
        self._overrides: Dict[Tuple[str, str], float] = {}
        for (a, b), value in (detour_overrides or {}).items():
            if value < 0:
                raise ValueError(f"negative detour for {(a, b)}: {value}")
            self._overrides[_pair_key(a, b)] = value

    def cache_fingerprint(self) -> Dict[str, object]:
        """Canonical identity for artifact-cache keys.

        Every RTT this model can produce is a deterministic function of
        the seed and the pinned detours (plus the caller's RNG, which
        campaign jobs key separately), so these two fields *are* the
        model as far as cached measurements are concerned.
        """
        return {
            "seed": self._seed,
            "detours": sorted(
                [a, b, value] for (a, b), value in self._overrides.items()
            ),
        }

    def path_profile(self, a: Site, b: Site) -> PathProfile:
        """Deterministic path profile for the unordered pair of groups."""
        pair = _pair_key(a.routing_group, b.routing_group)
        digest = zlib.crc32(f"{self._seed}|{pair[0]}|{pair[1]}".encode())
        u1 = (digest & 0xFFFF) / 0xFFFF
        u2 = ((digest >> 16) & 0xFFFF) / 0xFFFF
        inflation = _INFLATION_MIN + u1 * (_INFLATION_MAX - _INFLATION_MIN)
        jitter = _JITTER_MIN_MS + u2 * (_JITTER_MAX_MS - _JITTER_MIN_MS)
        override = self._overrides.get(pair)
        if override is not None:
            detour = override
        else:
            digest2 = zlib.crc32(f"detour|{self._seed}|{pair[0]}|{pair[1]}".encode())
            u3 = (digest2 & 0xFFFFFF) / 0xFFFFFF
            if u3 < _DETOUR_PROBABILITY:
                detour = _DETOUR_MIN_MS + (u3 / _DETOUR_PROBABILITY) * (
                    _DETOUR_MAX_MS - _DETOUR_MIN_MS
                )
            else:
                detour = 0.0
        return PathProfile(inflation=inflation, jitter_ms=jitter, detour_ms=detour)

    def min_rtt_ms(self, a: Site, b: Site) -> float:
        """The floor RTT between two sites (no queueing), in ms."""
        profile = self.path_profile(a, b)
        distance = haversine_km(a.point, b.point)
        propagation = 2.0 * distance / C_FIBER_KM_PER_MS * profile.inflation
        access = a.access.last_mile_ms + b.access.last_mile_ms + a.extra_ms + b.extra_ms
        return propagation + profile.detour_ms + access + PROCESSING_MS

    def sample_rtt_ms(self, a: Site, b: Site, rng: random.Random) -> float:
        """One probe's RTT: the floor plus exponential queueing noise."""
        profile = self.path_profile(a, b)
        return self.min_rtt_ms(a, b) + rng.expovariate(1.0 / profile.jitter_ms)

    def measure_min_rtt_ms(self, a: Site, b: Site, rng: random.Random, probes: int = 10) -> float:
        """Minimum over ``probes`` samples — what ``ping`` campaigns report.

        With ~10 probes the minimum sits within a fraction of the jitter
        scale above the true floor, mirroring real min-filtered pings.
        """
        if probes < 1:
            raise ValueError("probes must be >= 1")
        return min(self.sample_rtt_ms(a, b, rng) for _ in range(probes))

    @staticmethod
    def ideal_rtt_ms(distance_km: float) -> float:
        """The physically minimal RTT for a given distance (no inflation).

        This is the speed-of-light-in-fibre bound CBG uses as the slope
        floor for its bestlines, and the sanity check the paper applies to
        Maxmind ("too small to be compatible with intercontinental
        propagation time constraints").
        """
        return 2.0 * distance_km / C_FIBER_KM_PER_MS

    @staticmethod
    def max_distance_km(rtt_ms: float) -> float:
        """Upper bound on distance implied by an RTT (inverse of the bound)."""
        return max(0.0, rtt_ms) * C_FIBER_KM_PER_MS / 2.0

    def floor_breakdown(self, a: Site, b: Site) -> Dict[str, float]:
        """Diagnostic decomposition of the floor RTT, for examples/docs."""
        profile = self.path_profile(a, b)
        distance = haversine_km(a.point, b.point)
        propagation = 2.0 * distance / C_FIBER_KM_PER_MS * profile.inflation
        return {
            "distance_km": distance,
            "inflation": profile.inflation,
            "propagation_ms": propagation,
            "detour_ms": profile.detour_ms,
            "access_ms": a.access.last_mile_ms + b.access.last_mile_ms,
            "extra_ms": a.extra_ms + b.extra_ms,
            "processing_ms": PROCESSING_MS,
            "floor_ms": self.min_rtt_ms(a, b),
        }


def _pair_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def geographic_midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Approximate midpoint of two points (for diagnostics and plots)."""
    # Average in 3-D Cartesian space, then project back to the sphere.
    def to_xyz(p: GeoPoint):
        lat = math.radians(p.lat)
        lon = math.radians(p.lon)
        return (
            math.cos(lat) * math.cos(lon),
            math.cos(lat) * math.sin(lon),
            math.sin(lat),
        )

    ax, ay, az = to_xyz(a)
    bx, by, bz = to_xyz(b)
    mx, my, mz = (ax + bx) / 2.0, (ay + by) / 2.0, (az + bz) / 2.0
    norm = math.sqrt(mx * mx + my * my + mz * mz)
    if norm == 0.0:
        return GeoPoint(0.0, 0.0)
    lat = math.degrees(math.asin(mz / norm))
    lon = math.degrees(math.atan2(my, mx))
    return GeoPoint(lat, lon)
