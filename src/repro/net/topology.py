"""Edge topology: vantage points and their internal subnets.

A vantage point models one of the paper's monitored PoPs (Section III-B):
a physical location, an access technology shared by the hosted clients, a
client address space split into internal subnets, and one local DNS
resolver per subnet group.  The Tstat-like monitor sits at the vantage
point's edge and sees every flow crossing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.geo.cities import City
from repro.net.dns import LocalResolver
from repro.net.ip import IPv4Network, format_ip
from repro.net.latency import AccessTechnology, Site


@dataclass
class Subnet:
    """An internal subnet of a vantage point.

    Attributes:
        name: Subnet label, e.g. ``"Net-3"`` (Figure 12 vocabulary).
        network: Client address block.
        resolver: The local DNS resolver this subnet's clients use.
        client_share: Fraction of the vantage point's clients homed here.
    """

    name: str
    network: IPv4Network
    resolver: LocalResolver
    client_share: float

    def __post_init__(self) -> None:
        if not 0.0 < self.client_share <= 1.0:
            raise ValueError(f"client_share out of (0, 1]: {self.client_share}")

    def contains_ip(self, ip: int) -> bool:
        """Whether a client address belongs to this subnet."""
        return ip in self.network


@dataclass
class VantagePoint:
    """A monitored network edge.

    Attributes:
        name: Dataset name (``"US-Campus"``, ``"EU2"``, ...).
        city: Physical location of the PoP.
        access: Access technology of the hosted customers.
        egress_ms: Extra one-way latency of the PoP's upstream path
            (campus egress links and ISP backhaul are not free).
        subnets: Internal subnets; their ``client_share`` values must sum
            to 1 (within rounding).
        asn: The monitored network's own AS number.  Known to the trace
            owners, and needed by the Table II analysis to recognise
            servers hosted "within the same AS where the dataset has been
            collected" (the EU2 in-ISP data center).
    """

    name: str
    city: City
    access: AccessTechnology
    egress_ms: float
    subnets: List[Subnet] = field(default_factory=list)
    asn: int = 0

    def __post_init__(self) -> None:
        if self.subnets:
            total = sum(s.client_share for s in self.subnets)
            if abs(total - 1.0) > 1e-6:
                raise ValueError(f"subnet client shares sum to {total}, expected 1.0")

    @property
    def routing_group(self) -> str:
        """Routing group shared by the probe PC and every hosted client.

        Clients and the probe PC share the PoP's upstream paths, so they
        see the same per-data-center RTT ranking — the consistency the
        preferred-data-center analysis relies on.
        """
        return f"vp:{self.name}"

    @property
    def probe_site(self) -> Site:
        """The monitoring PC's network position (for ping campaigns).

        The paper pings "from the probe PC installed in the PoP", i.e. from
        the vantage point itself, subject to the same access path as the
        clients.
        """
        return Site(
            key=f"vp:{self.name}",
            point=self.city.point,
            access=self.access,
            extra_ms=self.egress_ms,
            group=self.routing_group,
        )

    def client_site(self, client_ip: int) -> Site:
        """Network position of one hosted client."""
        return Site(
            key=f"client:{format_ip(client_ip)}",
            point=self.city.point,
            access=self.access,
            extra_ms=self.egress_ms,
            group=self.routing_group,
        )

    def subnet_of(self, client_ip: int) -> Optional[Subnet]:
        """The subnet containing ``client_ip``, or ``None``."""
        for subnet in self.subnets:
            if subnet.contains_ip(client_ip):
                return subnet
        return None

    def resolver_for(self, client_ip: int) -> LocalResolver:
        """The local resolver a client uses (by its subnet).

        Raises:
            LookupError: If the IP is not in any subnet.
        """
        subnet = self.subnet_of(client_ip)
        if subnet is None:
            raise LookupError(f"{format_ip(client_ip)} is not inside {self.name}")
        return subnet.resolver

    def subnet_names(self) -> List[str]:
        """Subnet labels in declaration order."""
        return [s.name for s in self.subnets]
