"""Network substrate: IPv4 addressing, AS registry, latency model, DNS, topology.

Everything the simulated Internet needs below the CDN: address allocation,
whois-style IP-to-AS mapping (Table II), a distance-driven delay model
(Figures 2, 7, 17, 18 and the CBG input), DNS resolution machinery
(Section II step 3), and the vantage-point/subnet topology (Section III-B
and Figure 12).
"""

from repro.net.ip import (
    IPv4Network,
    Ipv4Allocator,
    format_ip,
    ip_in_network,
    parse_ip,
    parse_network,
    slash24_of,
)
from repro.net.asn import AutonomousSystem, AsRegistry, GOOGLE_ASN, YOUTUBE_EU_ASN
from repro.net.latency import AccessTechnology, LatencyModel, PathProfile
from repro.net.dns import Answer, AuthoritativeServer, LocalResolver, NameMapper
from repro.net.topology import Subnet, VantagePoint

__all__ = [
    "IPv4Network",
    "Ipv4Allocator",
    "format_ip",
    "ip_in_network",
    "parse_ip",
    "parse_network",
    "slash24_of",
    "AutonomousSystem",
    "AsRegistry",
    "GOOGLE_ASN",
    "YOUTUBE_EU_ASN",
    "AccessTechnology",
    "LatencyModel",
    "PathProfile",
    "Answer",
    "AuthoritativeServer",
    "LocalResolver",
    "NameMapper",
    "Subnet",
    "VantagePoint",
]
