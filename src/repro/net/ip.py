"""IPv4 addressing primitives.

Addresses are plain ``int`` on hot paths (a simulated week produces hundreds
of thousands of flows, each carrying two addresses); this module provides
parsing/formatting, CIDR networks with longest-prefix semantics, and a
sequential allocator used to carve the simulated world's address space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

_MAX_IP = (1 << 32) - 1


def parse_ip(text: str) -> int:
    """Parse dotted-quad notation into an integer address.

    Raises:
        ValueError: On malformed input.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(ip: int) -> str:
    """Format an integer address as dotted-quad notation."""
    if not 0 <= ip <= _MAX_IP:
        raise ValueError(f"IPv4 address out of range: {ip!r}")
    return f"{ip >> 24 & 255}.{ip >> 16 & 255}.{ip >> 8 & 255}.{ip & 255}"


def slash24_of(ip: int) -> int:
    """The /24 network address containing ``ip``.

    The paper aggregates servers "with IP addresses in the same /24 subnet"
    into the same data center (Section V); this is the hot helper for that.
    """
    return ip & 0xFFFFFF00


@dataclass(frozen=True)
class IPv4Network:
    """A CIDR network (``network`` must be the zeroed base address).

    Attributes:
        network: Base address as an integer, low bits zero.
        prefix_len: Prefix length in ``[0, 32]``.
    """

    network: int
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {self.prefix_len}")
        if self.network & ~self.mask:
            raise ValueError(
                f"host bits set in network: {format_ip(self.network)}/{self.prefix_len}"
            )

    @property
    def mask(self) -> int:
        """The netmask as an integer."""
        if self.prefix_len == 0:
            return 0
        return (_MAX_IP << (32 - self.prefix_len)) & _MAX_IP

    @property
    def num_addresses(self) -> int:
        """Number of addresses in the network."""
        return 1 << (32 - self.prefix_len)

    @property
    def first(self) -> int:
        """Lowest address in the network."""
        return self.network

    @property
    def last(self) -> int:
        """Highest address in the network."""
        return self.network | (self.num_addresses - 1)

    def __contains__(self, ip: int) -> bool:
        return (ip & self.mask) == self.network

    def hosts(self) -> Iterator[int]:
        """Iterate over every address in the network (including base)."""
        return iter(range(self.first, self.last + 1))

    def subnets(self, new_prefix_len: int) -> Iterator["IPv4Network"]:
        """Split into subnets of the given (longer) prefix length."""
        if new_prefix_len < self.prefix_len:
            raise ValueError("new prefix must not be shorter than current")
        step = 1 << (32 - new_prefix_len)
        for base in range(self.first, self.last + 1, step):
            yield IPv4Network(base, new_prefix_len)

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.prefix_len}"


def parse_network(text: str) -> IPv4Network:
    """Parse ``a.b.c.d/len`` CIDR notation."""
    try:
        addr_text, len_text = text.split("/")
    except ValueError:
        raise ValueError(f"malformed CIDR: {text!r}") from None
    return IPv4Network(parse_ip(addr_text), int(len_text))


def ip_in_network(ip: int, network: IPv4Network) -> bool:
    """Whether the address falls inside the network."""
    return ip in network


class Ipv4Allocator:
    """Sequential address allocator over a pool of CIDR blocks.

    Used when building the simulated world: the Google AS gets a pool of
    /16s carved into per-data-center /24s, ISPs get customer pools, etc.
    Allocation order is deterministic, so world construction is reproducible
    from the seed alone.
    """

    def __init__(self, pool: Tuple[IPv4Network, ...]):
        if not pool:
            raise ValueError("empty address pool")
        self._pool = list(pool)
        self._block = 0
        self._next = self._pool[0].first

    def allocate_address(self) -> int:
        """Allocate the next free single address.

        Raises:
            RuntimeError: When the pool is exhausted.
        """
        while self._block < len(self._pool):
            block = self._pool[self._block]
            if self._next <= block.last:
                ip = self._next
                self._next += 1
                return ip
            self._advance_block()
        raise RuntimeError("address pool exhausted")

    def allocate_network(self, prefix_len: int) -> IPv4Network:
        """Allocate the next aligned network of the given prefix length.

        Raises:
            RuntimeError: When no block can fit the request.
        """
        size = 1 << (32 - prefix_len)
        while self._block < len(self._pool):
            block = self._pool[self._block]
            if prefix_len < block.prefix_len:
                self._advance_block()
                continue
            # Align up inside the current block.
            base = (self._next + size - 1) & ~(size - 1)
            if base + size - 1 <= block.last:
                self._next = base + size
                return IPv4Network(base, prefix_len)
            self._advance_block()
        raise RuntimeError(f"cannot allocate a /{prefix_len}: pool exhausted")

    def _advance_block(self) -> None:
        self._block += 1
        if self._block < len(self._pool):
            self._next = self._pool[self._block].first
