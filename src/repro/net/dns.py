"""DNS resolution machinery.

Section II of the paper: the video page embeds a content-server *name*; the
client resolves it through its **local DNS server**, and YouTube's
authoritative servers exploit that resolution step to route clients
("the DNS resolution is exploited by YouTube to route clients to appropriate
servers according to various YouTube policies").

Crucially, the authoritative answer depends on *which local resolver asks*
— that is what produces the Figure 12 effect where one campus subnet
(Net-3) with its own resolvers lands on a different preferred data center.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Protocol, Tuple


@dataclass(frozen=True)
class Answer:
    """A DNS A-record answer.

    Attributes:
        ip: Resolved address (integer IPv4).
        ttl_s: Time-to-live in seconds.
    """

    ip: int
    ttl_s: float


class NameMapper(Protocol):
    """The policy interface the authoritative server delegates to.

    Implemented by :class:`repro.cdn.selection.SelectionPolicy` subclasses;
    the DNS layer itself stays mechanism-only.
    """

    def map_name(self, hostname: str, resolver_id: str, now_s: float) -> Answer:
        """Resolve ``hostname`` for the given querying resolver at ``now_s``."""
        ...


@dataclass
class AuthoritativeServer:
    """YouTube's authoritative DNS: delegates every query to the policy.

    Attributes:
        mapper: Selection policy that actually picks the answer.
        queries: Total queries served (for diagnostics).
    """

    mapper: NameMapper
    queries: int = 0

    def resolve(self, hostname: str, resolver_id: str, now_s: float) -> Answer:
        """Answer one query from a local resolver."""
        self.queries += 1
        return self.mapper.map_name(hostname, resolver_id, now_s)


@dataclass
class LocalResolver:
    """A network's local caching resolver.

    Clients in a subnet share one of these; the resolver's identity is the
    routing key the authoritative policy sees.

    Attributes:
        resolver_id: Stable identity, e.g. ``"us-campus/net-3"``.
        authoritative: Upstream authoritative server.
        cache_enabled: Whether answers are cached for their TTL.  The
            default is off: YouTube used very short TTLs precisely so the
            authoritative policy retains per-request control, and disabling
            the cache keeps the load-shaping policies exact.  Enable it to
            study TTL effects.
    """

    resolver_id: str
    authoritative: AuthoritativeServer
    cache_enabled: bool = False
    _cache: Dict[str, Tuple[Answer, float]] = field(default_factory=dict, repr=False)
    hits: int = 0
    misses: int = 0

    def query(self, hostname: str, now_s: float) -> Answer:
        """Resolve a hostname on behalf of a client."""
        if self.cache_enabled:
            cached = self._cache.get(hostname)
            if cached is not None:
                answer, expiry = cached
                if now_s < expiry:
                    self.hits += 1
                    return answer
                del self._cache[hostname]
        self.misses += 1
        answer = self.authoritative.resolve(hostname, self.resolver_id, now_s)
        if self.cache_enabled and answer.ttl_s > 0:
            self._cache[hostname] = (answer, now_s + answer.ttl_s)
        return answer

    def flush(self) -> None:
        """Drop all cached entries."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of live cache entries (stale ones included until touched)."""
        return len(self._cache)
