"""YouLighter-style edge-cloud clustering of epoch snapshots.

YouLighter's observation: the servers a vantage point is directed to
group into "edge-clouds" — sets of nearby addresses at a common network
distance — and CDN changes show up as those clouds appearing, vanishing
or exchanging traffic.  Here a cloud is a group of server /24 prefixes
whose min-filtered RTTs sit within a gap threshold of each other
(single-linkage over the RTT axis — the same "same /24, same data
center; similar RTT, same site" structure Section V of the paper leans
on).  Prefixes whose probe was lost under a fault plan carry no RTT and
are pooled into one unprobed cloud: probe degradation may *coarsen* the
clustering but never invents distance — the dissimilarity metric
(:mod:`repro.monitor.detect`) matches clouds by prefix overlap, so a
lost probe cannot masquerade as a migration.

Clustering is exact and deterministic: sorted inputs, no RNG, no
iteration-order dependence — clustered snapshots are byte-identical on
every backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.monitor.snapshot import RTT_DECIMALS, EpochSnapshot

#: Default single-linkage gap: consecutive prefixes further apart than
#: this (in min-RTT milliseconds) start a new edge-cloud.
DEFAULT_RTT_GAP_MS = 8.0


@dataclass(frozen=True)
class EdgeCloud:
    """One edge-cloud: a group of server prefixes at a common distance.

    Attributes:
        prefixes: Sorted member prefixes.
        num_bytes: Bytes served by the cloud this epoch.
        num_flows: Flows served by the cloud this epoch.
        share: Byte share of the epoch's total.
        rtt_ms: Byte-weighted RTT centroid, ``None`` for the unprobed
            cloud (every member's probe was lost).
    """

    prefixes: Tuple[int, ...]
    num_bytes: int
    num_flows: int
    share: float
    rtt_ms: Optional[float]


@dataclass(frozen=True)
class ClusteredSnapshot:
    """An epoch snapshot plus its edge-cloud decomposition.

    Attributes:
        snapshot: The underlying :class:`EpochSnapshot`.
        clouds: Clouds sorted by descending share (ties by first
            prefix) — ``clouds[0]`` is the dominant cloud.
    """

    snapshot: EpochSnapshot
    clouds: Tuple[EdgeCloud, ...]

    @property
    def dominant(self) -> Optional[EdgeCloud]:
        """The highest-share cloud, or ``None`` for an empty epoch."""
        return self.clouds[0] if self.clouds else None

    def prefix_shares(self) -> Dict[int, float]:
        """Byte share per prefix (delegates to the snapshot)."""
        return self.snapshot.prefix_shares()


def cluster_snapshot(
    snapshot: EpochSnapshot, rtt_gap_ms: float = DEFAULT_RTT_GAP_MS
) -> ClusteredSnapshot:
    """Group a snapshot's prefixes into edge-clouds.

    Probed prefixes are sorted by (RTT, prefix) and split wherever the
    RTT gap between neighbours exceeds ``rtt_gap_ms``; unprobed prefixes
    pool into one trailing cloud with no centroid.

    Args:
        snapshot: The epoch snapshot to cluster.
        rtt_gap_ms: Single-linkage gap threshold in milliseconds.

    Returns:
        The :class:`ClusteredSnapshot`.

    Raises:
        ValueError: For a non-positive gap.
    """
    if rtt_gap_ms <= 0:
        raise ValueError("rtt_gap_ms must be positive")
    volumes: Dict[int, List[int]] = {}  # prefix -> [bytes, flows]
    for _subnet, prefix, num_bytes, num_flows in snapshot.cells:
        totals = volumes.setdefault(prefix, [0, 0])
        totals[0] += num_bytes
        totals[1] += num_flows

    rtt_by_prefix = dict(snapshot.rtt_ms)
    probed = sorted(
        (rtt, prefix) for prefix, rtt in rtt_by_prefix.items() if prefix in volumes
    )
    unprobed = sorted(prefix for prefix in volumes if prefix not in rtt_by_prefix)

    groups: List[List[int]] = []
    previous_rtt: Optional[float] = None
    for rtt, prefix in probed:
        if previous_rtt is None or rtt - previous_rtt > rtt_gap_ms:
            groups.append([])
        groups[-1].append(prefix)
        previous_rtt = rtt
    if unprobed:
        groups.append(unprobed)

    clouds = []
    for members in groups:
        num_bytes = sum(volumes[p][0] for p in members)
        num_flows = sum(volumes[p][1] for p in members)
        weights = [(p, volumes[p][0]) for p in members if p in rtt_by_prefix]
        centroid: Optional[float] = None
        if weights:
            total_weight = sum(w for _p, w in weights)
            if total_weight > 0:
                centroid = sum(rtt_by_prefix[p] * w for p, w in weights) / total_weight
            else:
                # A probed cloud that served no bytes: plain mean.
                centroid = sum(rtt_by_prefix[p] for p, _w in weights) / len(weights)
            centroid = round(centroid, RTT_DECIMALS)
        share = (
            num_bytes / snapshot.bytes_total if snapshot.bytes_total > 0 else 0.0
        )
        clouds.append(
            EdgeCloud(
                prefixes=tuple(sorted(members)),
                num_bytes=num_bytes,
                num_flows=num_flows,
                share=share,
                rtt_ms=centroid,
            )
        )
    clouds.sort(key=lambda c: (-c.share, c.prefixes))
    return ClusteredSnapshot(snapshot=snapshot, clouds=tuple(clouds))
