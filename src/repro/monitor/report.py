"""Timeline rendering for monitor runs.

One fixed-width table row per epoch — volume, edge-cloud summary,
dissimilarity to the previous epoch, the alarm marker, whether the
epoch came from the cache, and any degradation recorded while it was
computed — followed by the alarm/ground-truth reconciliation.  The
machine-readable twin of this table is
:meth:`repro.monitor.run.MonitorReport.as_dict` (``repro monitor
--json``); CI gates parse that, humans read this.
"""

from __future__ import annotations

from typing import Dict, List

from repro.monitor.run import EpochRow, MonitorReport


def _degradation_cell(row: EpochRow) -> str:
    """Compact per-epoch degradation summary (``-`` when clean)."""
    totals: Dict[str, int] = {}
    for tally in row.degradation.values():
        for name, count in tally.items():
            if name != "completed":
                totals[name] = totals.get(name, 0) + count
    if not totals:
        return "-"
    return ",".join(f"{name}={totals[name]}" for name in sorted(totals))


def render_timeline(report: MonitorReport) -> str:
    """The epoch timeline plus the detection verdict, as fixed-width text."""
    lines: List[str] = []
    mode = "static world" if report.plan.is_static else (
        f"{len(report.plan.steps)} scheduled changes"
    )
    lines.append(
        f"MONITOR {report.base} ({report.policy}) - "
        f"{report.epochs} epochs x {report.epoch_s:g} s - "
        f"scale {report.scale:g} seed {report.seed} - {mode}"
    )
    lines.append(
        f"{'epoch':>5s} {'flows':>7s} {'clouds':>6s} {'top-share':>9s} "
        f"{'top-rtt':>8s} {'distance':>8s} {'alarm':>6s} {'cache':>6s}  degradation"
    )
    for row in report.rows:
        rtt = "-" if row.dominant_rtt_ms is None else f"{row.dominant_rtt_ms:.1f}"
        distance = "-" if row.distance is None else f"{row.distance:.3f}"
        alarm = "ALARM" if row.alarm else ""
        cache = "hit" if row.cached else "miss"
        lines.append(
            f"{row.epoch:>5d} {row.flows:>7d} {row.clouds:>6d} "
            f"{row.dominant_share:>9.3f} {rtt:>8s} {distance:>8s} "
            f"{alarm:>6s} {cache:>6s}  {_degradation_cell(row)}"
        )
        for label in row.changes:
            lines.append(f"{'':>5s} ^ scheduled: {label}")
    lines.append("")
    alarm_epochs = report.alarm_epochs()
    lines.append(
        "alarms at epochs: " + (", ".join(map(str, alarm_epochs)) or "(none)")
    )
    lines.append(
        "ground truth:     " + (", ".join(map(str, report.truth)) or "(none)")
    )
    score = report.score
    lines.append(
        f"precision {score.precision:.2f}  recall {score.recall:.2f}  "
        f"f1 {score.f1:.2f}"
        + (
            f"  (misses: {', '.join(map(str, score.misses))})"
            if score.misses
            else ""
        )
        + (
            f"  (false alarms: {', '.join(map(str, score.false_alarms))})"
            if score.false_alarms
            else ""
        )
    )
    return "\n".join(lines)
