"""Evolving worlds: a schedule of spec deltas at epoch boundaries.

The longitudinal complement of the paper's one-week snapshot: an
:class:`EvolutionPlan` names the :class:`~repro.spec.model.Spec` deltas
that take effect at given epoch indices — a data center appears, the
preferred mapping flips, capacity shrinks, the selection policy switches
mid-run.  Applying the plan epoch by epoch yields a multi-week world
that *changes underneath the monitor*, and the plan itself doubles as
ground truth: :meth:`EvolutionPlan.change_epochs` is exactly the set of
epochs where :mod:`repro.monitor.detect` should raise an alarm.

Plans are immutable, JSON-serialisable, and canonically fingerprinted,
so a plan (plus epoch index) can key ``"monitor/epoch"`` artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.spec.info import ScenarioInfo, SpecError
from repro.spec.model import Spec, compose_all, par_delta


@dataclass(frozen=True)
class EvolutionStep:
    """One scheduled change: a spec delta in force from ``epoch`` onward.

    Attributes:
        epoch: First epoch index the delta applies to.  Must be >= 1 —
            a change at epoch 0 has no "before" to detect against.
        spec: The delta.  Must be non-empty (an identity step would be
            unobservable ground truth).
        label: Optional human label for timelines and reports.
    """

    epoch: int
    spec: Spec
    label: str = ""

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise SpecError("evolution steps must schedule at epoch >= 1")
        if self.spec.is_empty:
            raise SpecError(
                f"evolution step at epoch {self.epoch} is empty: an identity "
                "delta cannot be detected and must not be scheduled"
            )

    def to_json_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"epoch": self.epoch, "spec": self.spec.to_json_dict()}
        if self.label:
            doc["label"] = self.label
        return doc

    @classmethod
    def from_json_dict(cls, document: Mapping[str, Any]) -> "EvolutionStep":
        if not isinstance(document, Mapping):
            raise SpecError("an evolution step must be a mapping")
        unknown = set(document) - {"epoch", "spec", "label"}
        if unknown:
            raise SpecError(f"unknown EvolutionStep keys: {sorted(unknown)}")
        epoch = document.get("epoch")
        if not isinstance(epoch, int) or isinstance(epoch, bool):
            raise SpecError(f"step epoch must be an int, got {epoch!r}")
        return cls(
            epoch=epoch,
            spec=Spec.from_json_dict(document.get("spec") or {}),
            label=str(document.get("label", "")),
        )


@dataclass(frozen=True)
class EvolutionPlan:
    """A schedule of spec deltas applied cumulatively at epoch boundaries.

    Steps are kept sorted by epoch; several steps may share an epoch (they
    compose in schedule order).  The plan is *cumulative*: the scenario in
    force at epoch ``e`` is the base composed with every step scheduled at
    or before ``e`` (:meth:`spec_at`).

    Attributes:
        steps: The schedule, sorted by ``(epoch, schedule order)``.
    """

    steps: Tuple[EvolutionStep, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.steps, key=lambda s: s.epoch)
        )  # stable: same-epoch steps keep schedule order
        object.__setattr__(self, "steps", ordered)
        compose_all(step.spec for step in ordered)  # reject contradictions early

    @property
    def is_static(self) -> bool:
        """True for the empty plan (the world never changes)."""
        return not self.steps

    def spec_at(self, epoch: int) -> Spec:
        """The composed delta in force at one epoch."""
        return compose_all(step.spec for step in self.steps if step.epoch <= epoch)

    def change_epochs(self, epochs: Optional[int] = None) -> Tuple[int, ...]:
        """Ground-truth alarm epochs: distinct epochs where a step lands.

        Args:
            epochs: When given, only epochs in ``[1, epochs)`` — changes
                scheduled past the monitored horizon are not detectable
                and are excluded from scoring.
        """
        seen = []
        for step in self.steps:
            if epochs is not None and step.epoch >= epochs:
                continue
            if step.epoch not in seen:
                seen.append(step.epoch)
        return tuple(sorted(seen))

    def labels_at(self, epoch: int) -> Tuple[str, ...]:
        """Labels of the steps scheduled exactly at one epoch."""
        return tuple(
            step.label or step.spec.to_json()
            for step in self.steps
            if step.epoch == epoch
        )

    # ------------------------------------------------------------- identity
    def cache_fingerprint(self) -> Dict[str, Any]:
        """Canonical identity for artifact-cache keys."""
        return {"steps": [step.to_json_dict() for step in self.steps]}

    # ---------------------------------------------------------------- codecs
    def to_json_dict(self) -> Dict[str, Any]:
        return {"steps": [step.to_json_dict() for step in self.steps]}

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON text: key-sorted, stable across processes."""
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json_dict(cls, document: Mapping[str, Any]) -> "EvolutionPlan":
        if not isinstance(document, Mapping):
            raise SpecError("an evolution plan must be a mapping")
        unknown = set(document) - {"steps"}
        if unknown:
            raise SpecError(f"unknown EvolutionPlan keys: {sorted(unknown)}")
        steps = document.get("steps", [])
        if not isinstance(steps, (list, tuple)):
            raise SpecError("EvolutionPlan steps must be a list")
        return cls(steps=tuple(EvolutionStep.from_json_dict(s) for s in steps))

    @classmethod
    def from_json(cls, text: str) -> "EvolutionPlan":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"malformed evolution JSON: {error}") from None
        return cls.from_json_dict(document)


#: The static plan: no scheduled changes, zero ground-truth alarms.
STATIC_PLAN = EvolutionPlan()


def load_evolution(path: str) -> EvolutionPlan:
    """Load an evolution plan from a JSON file.

    Raises:
        SpecError: For malformed documents.
        OSError: For unreadable paths.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return EvolutionPlan.from_json(handle.read())


def standard_evolution() -> EvolutionPlan:
    """The canned demo schedule: three detectable CDN changes.

    Designed against the EU1 bases (vantage in Turin, preferred
    ``dc-milan``): a new data center appears next door and takes over
    the preferred role (epoch 2), operations then flips the preferred
    mapping to Frankfurt (epoch 4), and finally the selection policy
    switches to size-proportional spreading mid-run (epoch 6).  Each
    change migrates the bulk of the traffic between server /24 groups,
    so every step is detectable at small scales — and each leaves the
    scenario *unambiguous* (no two sites tied for the preferred rank),
    so epochs between changes differ only by sampling noise.
    """
    return EvolutionPlan(
        steps=(
            EvolutionStep(
                epoch=2,
                spec=Spec(
                    add=ScenarioInfo(
                        sets={"datacenter": [("Turin", 64)]},
                        pars={"preferred_override": "dc-turin"},
                    )
                ),
                label="datacenter added (Turin, 64 servers) and mapped preferred",
            ),
            EvolutionStep(
                epoch=4,
                spec=par_delta(preferred_override="dc-frankfurt"),
                label="preferred mapping flipped to dc-frankfurt",
            ),
            EvolutionStep(
                epoch=6,
                spec=par_delta(policy="proportional"),
                label="selection policy switched to proportional",
            ),
        )
    )
