"""Longitudinal CDN-change monitoring (`repro monitor`).

The YouLighter workload over the reproduced CDN: a multi-week world
evolves under an :class:`~repro.monitor.evolution.EvolutionPlan` of
spec deltas at epoch boundaries; each epoch streams into a bounded
edge-cloud :class:`~repro.monitor.snapshot.EpochSnapshot`; snapshots
are clustered (:mod:`repro.monitor.cluster`) and consecutive epochs
compared with a pattern-dissimilarity distance whose threshold
crossings raise change-point alarms (:mod:`repro.monitor.detect`),
scored against the plan's ground truth.  The driver
(:func:`~repro.monitor.run.run_monitor`) fans epochs out over the
executor and caches each under an epoch-keyed ``"monitor/epoch"``
stage, so warm re-runs only simulate newly appended epochs.

See docs/architecture.md ("Longitudinal monitoring") for the snapshot
definition, the dissimilarity metric, alarm semantics, and how CDN
changes are kept distinguishable from fault-plan degradation.
"""

from repro.monitor.cluster import (
    DEFAULT_RTT_GAP_MS,
    ClusteredSnapshot,
    EdgeCloud,
    cluster_snapshot,
)
from repro.monitor.detect import (
    DEFAULT_RTT_SCALE_MS,
    DEFAULT_THRESHOLD,
    Alarm,
    DetectionScore,
    consecutive_distances,
    detect_alarms,
    pattern_dissimilarity,
    score_detection,
)
from repro.monitor.evolution import (
    STATIC_PLAN,
    EvolutionPlan,
    EvolutionStep,
    load_evolution,
    standard_evolution,
)
from repro.monitor.report import render_timeline
from repro.monitor.run import (
    DEFAULT_EPOCH_S,
    DEFAULT_EPOCHS,
    EpochComputation,
    EpochRow,
    MonitorReport,
    run_monitor,
)
from repro.monitor.snapshot import EpochSnapshot, build_epoch_snapshot

__all__ = [
    "Alarm",
    "ClusteredSnapshot",
    "DEFAULT_EPOCHS",
    "DEFAULT_EPOCH_S",
    "DEFAULT_RTT_GAP_MS",
    "DEFAULT_RTT_SCALE_MS",
    "DEFAULT_THRESHOLD",
    "DetectionScore",
    "EdgeCloud",
    "EpochComputation",
    "EpochRow",
    "EpochSnapshot",
    "EvolutionPlan",
    "EvolutionStep",
    "MonitorReport",
    "STATIC_PLAN",
    "build_epoch_snapshot",
    "cluster_snapshot",
    "consecutive_distances",
    "detect_alarms",
    "load_evolution",
    "pattern_dissimilarity",
    "render_timeline",
    "run_monitor",
    "score_detection",
    "standard_evolution",
]
