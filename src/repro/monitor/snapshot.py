"""Per-epoch edge-cloud snapshots built from the streaming path.

One :class:`EpochSnapshot` is everything the monitor keeps of an epoch:
per-(client subnet x server /24) byte/flow totals folded online by an
:class:`~repro.stream.accumulators.EdgeCloudAccumulator` while the
epoch's flows stream through a tumbling windower, plus one min-filtered
RTT measurement per observed server prefix (a fault-aware ping campaign
— under an active :class:`~repro.faults.plan.FaultPlan`, lost probes
leave the prefix's RTT *absent* and are tallied as degradation, never
silently substituted).  Memory is bounded by distinct (subnet, prefix)
cells and one open window, so month-long monitored worlds never
materialise a full record list.

Snapshots are plain, canonically-serialisable data: sorted integer
cells, RTTs rounded to fixed precision, a stable JSON form and a sha256
digest over it — the unit the golden fixture pins and the
``"monitor/epoch"`` cache stage stores.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.exec.executor import ParallelExecutor
from repro.geoloc.probing import CampaignJob, run_campaigns
from repro.net.ip import format_ip
from repro.sim.engine import DEFAULT_MISS_PROBABILITY
from repro.sim.scenarios import ScenarioWorld
from repro.stream.accumulators import EdgeCloudAccumulator
from repro.stream.source import simulated_stream
from repro.stream.windows import TumblingWindower

#: Decimal places RTT centroids are rounded to before storage; fixed so
#: snapshot bytes (and digests) are stable across platforms.
RTT_DECIMALS = 3


@dataclass(frozen=True)
class EpochSnapshot:
    """The monitor's view of one epoch.

    Attributes:
        name: Scenario name the epoch was simulated from.
        epoch: Epoch index (0-based).
        duration_s: Epoch length in seconds.
        prefix_len: Server-side aggregation prefix length.
        cells: Sorted ``(subnet, prefix, num_bytes, num_flows)`` rows.
        rtt_ms: Sorted ``(prefix, min_rtt_ms)`` pairs; prefixes whose
            probe was lost (fault plans) are absent.
        bytes_total: Bytes over all cells.
        flows_total: Flows over all cells.
        probes_lost: Prefix probes lost to the ambient fault plan.
    """

    name: str
    epoch: int
    duration_s: float
    prefix_len: int
    cells: Tuple[Tuple[str, int, int, int], ...]
    rtt_ms: Tuple[Tuple[int, float], ...]
    bytes_total: int
    flows_total: int
    probes_lost: int

    # ----------------------------------------------------------- derivations
    def prefix_shares(self) -> Dict[int, float]:
        """Byte share per server prefix (empty snapshot -> empty dict)."""
        if self.bytes_total == 0:
            return {}
        shares: Dict[int, float] = {}
        for _subnet, prefix, num_bytes, _flows in self.cells:
            shares[prefix] = shares.get(prefix, 0.0) + num_bytes / self.bytes_total
        return shares

    def subnet_shares(self) -> Dict[str, float]:
        """Byte share per client subnet."""
        if self.bytes_total == 0:
            return {}
        shares: Dict[str, float] = {}
        for subnet, _prefix, num_bytes, _flows in self.cells:
            shares[subnet] = shares.get(subnet, 0.0) + num_bytes / self.bytes_total
        return shares

    def rtt_of(self, prefix: int) -> Optional[float]:
        """The measured RTT for one prefix, or ``None`` when lost."""
        for candidate, rtt in self.rtt_ms:
            if candidate == prefix:
                return rtt
        return None

    def prefix_str(self, prefix: int) -> str:
        """Dotted CIDR text for one prefix (timeline rendering)."""
        return f"{format_ip(prefix << (32 - self.prefix_len))}/{self.prefix_len}"

    # ------------------------------------------------------------- identity
    def to_json_dict(self) -> Dict:
        return {
            "name": self.name,
            "epoch": self.epoch,
            "duration_s": self.duration_s,
            "prefix_len": self.prefix_len,
            "cells": [list(cell) for cell in self.cells],
            "rtt_ms": [[prefix, rtt] for prefix, rtt in self.rtt_ms],
            "bytes_total": self.bytes_total,
            "flows_total": self.flows_total,
            "probes_lost": self.probes_lost,
        }

    def to_json(self) -> str:
        """Canonical JSON text: key-sorted, stable across processes."""
        return json.dumps(self.to_json_dict(), sort_keys=True)

    def digest(self) -> str:
        """sha256 over the canonical JSON (the golden-fixture unit)."""
        return hashlib.sha256(self.to_json().encode("ascii")).hexdigest()


def build_epoch_snapshot(
    world: ScenarioWorld,
    epoch: int,
    rtt_seed: int,
    probes: int = 4,
    prefix_len: int = 24,
    window_s: float = 3600.0,
    miss_probability: float = DEFAULT_MISS_PROBABILITY,
) -> EpochSnapshot:
    """Stream one epoch's world and condense it into a snapshot.

    Args:
        world: The epoch's built world (its ``duration_s`` is the epoch
            length).
        epoch: Epoch index, for labelling and the stored snapshot.
        rtt_seed: Seed for the prefix ping campaign's private RNG.
        probes: Pings per prefix measurement (minimum is kept).
        prefix_len: Server-side aggregation prefix length.
        window_s: Tumbling-window width for the ingest pass (never
            visible in the snapshot — windows only bound memory).
        miss_probability: Monitor classification-miss probability.

    Returns:
        The finished :class:`EpochSnapshot`.
    """
    vantage = world.vantage
    name = world.spec.name

    def subnet_of(client_ip: int) -> Optional[str]:
        subnet = vantage.subnet_of(client_ip)
        return None if subnet is None else subnet.name

    accumulator = EdgeCloudAccumulator(subnet_of, prefix_len=prefix_len)
    windower = TumblingWindower(min(window_s, world.duration_s))
    with obs.span("monitor/ingest", dataset=name, epoch=epoch):
        for event in simulated_stream(world, miss_probability=miss_probability):
            for window in windower.push(event):
                accumulator.observe_window(window)
        for window in windower.finish():
            accumulator.observe_window(window)
        obs.inc("monitor.flows", accumulator.flows_total, dataset=name)

    prefixes = accumulator.prefixes()
    targets = {}
    for prefix in prefixes:
        site = world.site_of_server_ip(accumulator.representative_ip(prefix))
        if site is not None:
            targets[prefix] = site
    measured: Dict[int, float] = {}
    if targets:
        with obs.span("monitor/probe", dataset=name, epoch=epoch, targets=len(targets)):
            job = CampaignJob(
                label=f"monitor/{name}/epoch{epoch}",
                latency=world.latency,
                origin=vantage.probe_site,
                targets=targets,
                probes=probes,
                seed=rtt_seed,
            )
            # One small campaign: fan-out overhead would dominate, so it
            # runs serially regardless of the ambient backend (results
            # are identical either way).
            (measurements,) = run_campaigns([job], executor=ParallelExecutor("serial"))
            measured = {
                prefix: round(rtt, RTT_DECIMALS)
                for prefix, rtt in measurements.items()
            }
    probes_lost = len(targets) - len(measured)
    if probes_lost:
        obs.inc("monitor.probes_lost", probes_lost, dataset=name)

    return EpochSnapshot(
        name=name,
        epoch=epoch,
        duration_s=world.duration_s,
        prefix_len=prefix_len,
        cells=tuple(accumulator.cells()),
        rtt_ms=tuple(sorted(measured.items())),
        bytes_total=accumulator.bytes_total,
        flows_total=accumulator.flows_total,
        probes_lost=probes_lost,
    )
