"""Pattern dissimilarity, change-point alarms, and ground-truth scoring.

The detector compares consecutive epochs' clustered snapshots with a
bounded pattern-dissimilarity distance and alarms when it crosses a
threshold.  The distance has two terms:

* **Volume migration** — total-variation distance between the two
  epochs' per-prefix byte-share distributions.  Mass that moved between
  server /24 groups (a drained data center, a flipped preferred
  mapping, a policy switch) lands here, at full weight.
* **Cloud RTT drift** — edge-clouds are matched across the epochs by
  share-weighted prefix overlap (greedy, best overlap first), and each
  matched pair contributes its overlap times the normalised shift of
  its RTT centroid.  The same addresses answering from a different
  network distance — a migration YouLighter's clustering is built to
  catch — lands here even when volumes barely move.

Both terms are built to *shrink*, never grow, under probe degradation:
a lost probe removes a prefix from the RTT axis (its mass still matches
by overlap) and can therefore lower the drift term's weight but cannot
add distance.  That is the change-vs-degradation disambiguation the
fault-plan confusion test pins: a static world under a nonzero
:class:`~repro.faults.plan.FaultPlan` must stay alarm-free.

Scoring closes the loop: alarms are compared against the
:class:`~repro.monitor.evolution.EvolutionPlan`'s scheduled change
epochs, yielding precision/recall/F1 plus the hit/miss/false-alarm
breakdown the CI gate asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.monitor.cluster import ClusteredSnapshot

#: Default alarm threshold on the dissimilarity distance: alarm when at
#: least half the pattern moved.  At the scales the tests and CI run,
#: between-epoch sampling noise stays below ~0.35 even in the noisiest
#: (proportional-policy, half-day-epoch) regime, while scheduled CDN
#: changes land at 0.85+.  See docs/faq.md for tuning guidance.
DEFAULT_THRESHOLD = 0.5

#: RTT-centroid shift (ms) that counts as a full migration of the
#: matched mass; smaller shifts contribute proportionally.
DEFAULT_RTT_SCALE_MS = 50.0


def pattern_dissimilarity(
    a: ClusteredSnapshot,
    b: ClusteredSnapshot,
    rtt_scale_ms: float = DEFAULT_RTT_SCALE_MS,
) -> float:
    """Bounded distance in ``[0, 1]`` between two clustered snapshots.

    Zero for identical traffic patterns; 1 for complete migration.
    Symmetric, and exactly 0 when both epochs put identical shares on
    identical prefixes with identical cloud centroids.

    Args:
        a: Earlier epoch.
        b: Later epoch.
        rtt_scale_ms: Centroid shift treated as a full migration.
    """
    shares_a = a.prefix_shares()
    shares_b = b.prefix_shares()
    prefixes = set(shares_a) | set(shares_b)
    migration = 0.5 * sum(
        abs(shares_a.get(p, 0.0) - shares_b.get(p, 0.0)) for p in prefixes
    )

    drift = 0.0
    overlaps: List[Tuple[float, int, int]] = []
    for i, cloud_a in enumerate(a.clouds):
        if cloud_a.rtt_ms is None:
            continue
        members_a = set(cloud_a.prefixes)
        for j, cloud_b in enumerate(b.clouds):
            if cloud_b.rtt_ms is None:
                continue
            overlap = sum(
                min(shares_a.get(p, 0.0), shares_b.get(p, 0.0))
                for p in members_a.intersection(cloud_b.prefixes)
            )
            if overlap > 0.0:
                overlaps.append((overlap, i, j))
    # Greedy one-to-one matching, biggest shared mass first; ties break
    # on cloud order for determinism.
    overlaps.sort(key=lambda item: (-item[0], item[1], item[2]))
    matched_a: set = set()
    matched_b: set = set()
    for overlap, i, j in overlaps:
        if i in matched_a or j in matched_b:
            continue
        matched_a.add(i)
        matched_b.add(j)
        shift = abs(a.clouds[i].rtt_ms - b.clouds[j].rtt_ms)
        drift += overlap * min(1.0, shift / rtt_scale_ms)

    return min(1.0, migration + drift)


def consecutive_distances(
    clustered: Sequence[ClusteredSnapshot],
    rtt_scale_ms: float = DEFAULT_RTT_SCALE_MS,
) -> List[float]:
    """``distances[i]`` = dissimilarity between epochs ``i`` and ``i+1``."""
    return [
        pattern_dissimilarity(clustered[i], clustered[i + 1], rtt_scale_ms)
        for i in range(len(clustered) - 1)
    ]


@dataclass(frozen=True)
class Alarm:
    """One change-point alarm.

    Attributes:
        epoch: The epoch whose snapshot first shows the new pattern.
        distance: The dissimilarity that crossed the threshold.
    """

    epoch: int
    distance: float


def detect_alarms(distances: Sequence[float], threshold: float) -> List[Alarm]:
    """Threshold the consecutive-epoch distances into alarms.

    ``distances[i]`` compares epochs ``i`` and ``i+1``, so an alarm on it
    points at epoch ``i + 1`` — the first epoch under the new pattern,
    which is exactly how :class:`~repro.monitor.evolution.EvolutionStep`
    epochs are defined.

    Raises:
        ValueError: For a non-positive threshold (zero would alarm on
            any sampling noise, defeating the point of the metric).
    """
    if threshold <= 0.0:
        raise ValueError("threshold must be positive")
    return [
        Alarm(epoch=i + 1, distance=distance)
        for i, distance in enumerate(distances)
        if distance >= threshold
    ]


@dataclass(frozen=True)
class DetectionScore:
    """Alarms scored against ground-truth change epochs.

    Attributes:
        hits: Alarm epochs that match a scheduled change.
        misses: Scheduled changes no alarm fired for.
        false_alarms: Alarm epochs with no scheduled change.
        precision: ``hits / alarms`` (1.0 with no alarms).
        recall: ``hits / truth`` (1.0 with no scheduled changes).
        f1: Harmonic mean of precision and recall.
    """

    hits: Tuple[int, ...]
    misses: Tuple[int, ...]
    false_alarms: Tuple[int, ...]
    precision: float
    recall: float
    f1: float

    def as_dict(self) -> Dict:
        return {
            "hits": list(self.hits),
            "misses": list(self.misses),
            "false_alarms": list(self.false_alarms),
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "f1": round(self.f1, 6),
        }


def score_detection(
    alarm_epochs: Sequence[int], truth_epochs: Sequence[int]
) -> DetectionScore:
    """Score alarms against the evolution plan's scheduled epochs.

    An alarm is a hit iff a change was scheduled at exactly its epoch —
    detecting the right event one epoch late still counts as a miss plus
    a false alarm, which is the strictness the CI gate wants.
    """
    alarms = sorted(set(alarm_epochs))
    truth = sorted(set(truth_epochs))
    hits = tuple(e for e in alarms if e in truth)
    misses = tuple(e for e in truth if e not in alarms)
    false_alarms = tuple(e for e in alarms if e not in truth)
    precision = len(hits) / len(alarms) if alarms else 1.0
    recall = len(hits) / len(truth) if truth else 1.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0.0
        else 0.0
    )
    return DetectionScore(
        hits=hits,
        misses=misses,
        false_alarms=false_alarms,
        precision=precision,
        recall=recall,
        f1=f1,
    )
