"""The monitor driver: epoch fan-out, epoch-keyed caching, detection.

``run_monitor`` turns an (base scenario, :class:`EvolutionPlan`) pair
into a :class:`MonitorReport`: each epoch composes the plan's deltas in
force, builds that epoch's world (physical topology pinned on the master
seed, workload re-sampled from a per-epoch traffic seed), streams
it into an :class:`~repro.monitor.snapshot.EpochSnapshot`, clusters it,
and the consecutive-epoch dissimilarities are thresholded into alarms
scored against the plan's ground truth.

Epochs are independent units of work: they fan out over the
:class:`~repro.exec.executor.ParallelExecutor` (results are identical
on every backend) and each resolves against the artifact store first
under an epoch-keyed ``"monitor/epoch"`` stage — a warm re-run with
``--epochs`` extended simulates only the appended epochs, exactly like
a daily monitoring job that only ever processes the newest epoch.

Per-epoch degradation is captured *inside* the epoch's unit of work and
stored with the snapshot, so the timeline can show which epochs were
degraded (and by how much) even when they were computed in a worker
process or served from the cache — fixing the "degradation report only
at the end of the run" blind spot for multi-epoch runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.artifacts.keys import CanonicalizationError, stage_key
from repro.artifacts.store import default_store
from repro.exec.executor import ParallelExecutor, default_executor
from repro.faults import report as degradation
from repro.monitor.cluster import (
    DEFAULT_RTT_GAP_MS,
    ClusteredSnapshot,
    cluster_snapshot,
)
from repro.monitor.detect import (
    DEFAULT_RTT_SCALE_MS,
    DEFAULT_THRESHOLD,
    Alarm,
    DetectionScore,
    consecutive_distances,
    detect_alarms,
    score_detection,
)
from repro.monitor.evolution import STATIC_PLAN, EvolutionPlan
from repro.monitor.snapshot import EpochSnapshot, build_epoch_snapshot
from repro.sim.engine import DEFAULT_MISS_PROBABILITY
from repro.sim.scenarios import ScenarioSpec, build_world
from repro.sim.seeding import derive_seed
from repro.spec.model import Spec, apply_to_scenario

#: Default epoch length: one simulated day.
DEFAULT_EPOCH_S = 86400.0

#: Default monitored horizon, chosen so the canned
#: :func:`~repro.monitor.evolution.standard_evolution` schedule fits.
DEFAULT_EPOCHS = 8

_MISS = object()


@dataclass(frozen=True)
class EpochComputation:
    """What one epoch's unit of work produces (and the cache stores).

    Attributes:
        snapshot: The epoch's edge-cloud snapshot.
        degradation: Per-stage degradation counters recorded while this
            epoch was computed (empty without an active fault plan).
    """

    snapshot: EpochSnapshot
    degradation: Dict[str, Dict[str, int]] = field(default_factory=dict)


def _degradation_delta(
    before: Dict[str, Dict[str, int]], after: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    """Per-stage counter increments between two collector snapshots."""
    delta: Dict[str, Dict[str, int]] = {}
    for stage, tally in after.items():
        base = before.get(stage, {})
        changed = {
            name: count - base.get(name, 0)
            for name, count in tally.items()
            if count - base.get(name, 0)
        }
        if changed:
            delta[stage] = changed
    return delta


def _epoch_task(payload: Tuple) -> EpochComputation:
    """Process-safe unit of work: build, stream and snapshot one epoch."""
    (
        base,
        spec,
        epoch,
        epoch_s,
        scale,
        seed,
        base_policy,
        probes,
        prefix_len,
        miss_probability,
    ) = payload
    before = degradation.collect().stages
    with obs.span("monitor/epoch", dataset=base.name, epoch=epoch):
        scenario, policy = apply_to_scenario(base, spec, base_policy=base_policy)
        # The physical world (latency paths, catalog, client placement)
        # stays on the master seed: epochs must differ only by workload
        # sampling and by *scheduled* changes, never by re-rolled paths.
        world = build_world(
            scenario,
            scale=scale,
            seed=seed,
            duration_s=epoch_s,
            policy_kind=policy,
            traffic_seed=derive_seed(seed, "monitor", "epoch", str(epoch)),
        )
        snapshot = build_epoch_snapshot(
            world,
            epoch=epoch,
            rtt_seed=derive_seed(seed, "monitor", "rtt", str(epoch)),
            probes=probes,
            prefix_len=prefix_len,
            miss_probability=miss_probability,
        )
    after = degradation.collect().stages
    return EpochComputation(
        snapshot=snapshot, degradation=_degradation_delta(before, after)
    )


@dataclass(frozen=True)
class EpochRow:
    """One timeline row: an epoch's snapshot summary plus detection state.

    Attributes:
        epoch: Epoch index.
        cached: Whether the epoch was served from the artifact store.
        flows: Flows observed this epoch.
        num_bytes: Bytes observed this epoch.
        clouds: Edge-cloud count.
        dominant_share: Byte share of the dominant cloud (0.0 if empty).
        dominant_rtt_ms: Dominant cloud's RTT centroid (``None`` when
            unprobed or empty).
        distance: Dissimilarity to the previous epoch (``None`` for
            epoch 0).
        alarm: Whether the distance crossed the threshold.
        changes: Ground-truth change labels scheduled at this epoch.
        degradation: Per-stage degradation recorded computing the epoch.
        probes_lost: Prefix probes lost to the fault plan this epoch.
        digest: The snapshot's sha256 (the golden-fixture unit).
    """

    epoch: int
    cached: bool
    flows: int
    num_bytes: int
    clouds: int
    dominant_share: float
    dominant_rtt_ms: Optional[float]
    distance: Optional[float]
    alarm: bool
    changes: Tuple[str, ...]
    degradation: Dict[str, Dict[str, int]]
    probes_lost: int
    digest: str


@dataclass
class MonitorReport:
    """Everything one monitor run produced.

    Attributes:
        base: Base scenario name.
        policy: Base selection-policy kind.
        epochs: Number of monitored epochs.
        epoch_s: Epoch length in seconds.
        scale: Traffic scale.
        seed: Master seed.
        threshold: Alarm threshold on the dissimilarity.
        plan: The evolution plan (ground truth).
        rows: One :class:`EpochRow` per epoch, in order.
        clustered: The clustered snapshots, in epoch order.
        alarms: Raised alarms, in epoch order.
        truth: Ground-truth change epochs within the horizon.
        score: Alarms scored against the truth.
    """

    base: str
    policy: str
    epochs: int
    epoch_s: float
    scale: float
    seed: int
    threshold: float
    plan: EvolutionPlan
    rows: List[EpochRow]
    clustered: List[ClusteredSnapshot]
    alarms: List[Alarm]
    truth: Tuple[int, ...]
    score: DetectionScore

    def alarm_epochs(self) -> List[int]:
        return [alarm.epoch for alarm in self.alarms]

    def verdict_dict(self) -> Dict:
        """The backend- and epoch-length-invariant detection verdict.

        Exactly this sub-document must be byte-identical across executor
        backends and across reasonable ``--epoch-s`` choices (the
        property tests pin both).
        """
        return {
            "alarms": self.alarm_epochs(),
            "truth": list(self.truth),
            "score": self.score.as_dict(),
        }

    def as_dict(self) -> Dict:
        """The machine-readable report (``repro monitor --json``)."""
        return {
            "base": self.base,
            "policy": self.policy,
            "epochs": self.epochs,
            "epoch_s": self.epoch_s,
            "scale": self.scale,
            "seed": self.seed,
            "threshold": self.threshold,
            "static": self.plan.is_static,
            "plan": self.plan.to_json_dict(),
            "verdict": self.verdict_dict(),
            "epochs_cached": sum(1 for row in self.rows if row.cached),
            "epochs_computed": sum(1 for row in self.rows if not row.cached),
            "timeline": [
                {
                    "epoch": row.epoch,
                    "cached": row.cached,
                    "flows": row.flows,
                    "bytes": row.num_bytes,
                    "clouds": row.clouds,
                    "dominant_share": round(row.dominant_share, 6),
                    "dominant_rtt_ms": row.dominant_rtt_ms,
                    "distance": (
                        None if row.distance is None else round(row.distance, 6)
                    ),
                    "alarm": row.alarm,
                    "changes": list(row.changes),
                    "degradation": row.degradation,
                    "probes_lost": row.probes_lost,
                    "digest": row.digest,
                }
                for row in self.rows
            ],
        }

    def digest_lines(self) -> List[str]:
        """``digest epochNN <sha256>`` lines (the golden-fixture form)."""
        return [f"digest epoch{row.epoch:02d} {row.digest}" for row in self.rows]


def run_monitor(
    base: Union[str, ScenarioSpec] = "EU1-ADSL",
    plan: Optional[EvolutionPlan] = None,
    epochs: int = DEFAULT_EPOCHS,
    epoch_s: float = DEFAULT_EPOCH_S,
    scale: float = 0.02,
    seed: int = 7,
    threshold: float = DEFAULT_THRESHOLD,
    rtt_gap_ms: float = DEFAULT_RTT_GAP_MS,
    rtt_scale_ms: float = DEFAULT_RTT_SCALE_MS,
    probes: int = 4,
    prefix_len: int = 24,
    base_policy: str = "preferred",
    miss_probability: float = DEFAULT_MISS_PROBABILITY,
    executor: Optional[ParallelExecutor] = None,
) -> MonitorReport:
    """Monitor an evolving world and score change detection.

    Args:
        base: Base scenario — a registry name or a
            :class:`~repro.sim.scenarios.ScenarioSpec`.
        plan: The evolution schedule; ``None`` monitors a static world.
        epochs: Number of consecutive epochs to monitor.
        epoch_s: Epoch length in seconds.
        scale: Traffic scale relative to the paper.
        seed: Master seed.  The physical world (latency paths, catalog,
            client placement) is built from it for *every* epoch; each
            epoch derives only a traffic sub-seed, so consecutive epochs
            are fresh workload samples of the same (or changed) scenario.
        threshold: Alarm threshold on the pattern dissimilarity.
        rtt_gap_ms: Edge-cloud single-linkage gap.
        rtt_scale_ms: Centroid shift treated as a full migration.
        probes: Pings per prefix RTT measurement.
        prefix_len: Server-side aggregation prefix length.
        base_policy: Selection policy the base scenario runs.
        miss_probability: Monitor classification-miss probability.
        executor: Epoch fan-out strategy; defaults to the environment's.

    Returns:
        The :class:`MonitorReport`.

    Raises:
        ValueError: For a non-positive horizon or epoch length.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if epoch_s <= 0:
        raise ValueError("epoch_s must be positive")
    if plan is None:
        plan = STATIC_PLAN
    if isinstance(base, str):
        from repro.spec.registry import scenario_spec

        base = scenario_spec(base)

    specs: List[Spec] = [plan.spec_at(e) for e in range(epochs)]
    store = default_store()
    computations: List[Optional[EpochComputation]] = [None] * epochs
    keys: List[Optional[str]] = [None] * epochs
    cached: List[bool] = [False] * epochs
    pending: List[int] = []

    with obs.span(
        "monitor/run", base=base.name, epochs=epochs, epoch_s=epoch_s
    ):
        for e in range(epochs):
            if store is not None:
                try:
                    keys[e] = stage_key(
                        "monitor/epoch",
                        {
                            "base": base,
                            "spec": specs[e],
                            "epoch": e,
                            "epoch_s": epoch_s,
                            "scale": scale,
                            "seed": seed,
                            "base_policy": base_policy,
                            "probes": probes,
                            "prefix_len": prefix_len,
                            "miss_probability": miss_probability,
                        },
                    )
                except CanonicalizationError:
                    keys[e] = None
                if keys[e] is not None:
                    hit = store.get(keys[e], _MISS, stage="monitor/epoch")
                    if hit is not _MISS:
                        computations[e] = hit
                        cached[e] = True
                        obs.inc("monitor.epochs_cached")
                        continue
            pending.append(e)

        if pending:
            executor = default_executor(executor)
            fresh = executor.map(
                _epoch_task,
                [
                    (
                        base,
                        specs[e],
                        e,
                        epoch_s,
                        scale,
                        seed,
                        base_policy,
                        probes,
                        prefix_len,
                        miss_probability,
                    )
                    for e in pending
                ],
                labels=[f"{base.name}/epoch{e}" for e in pending],
            )
            for e, computation in zip(pending, fresh):
                computations[e] = computation
                obs.inc("monitor.epochs_computed")
                if store is not None and keys[e] is not None:
                    store.put(keys[e], computation, stage="monitor/epoch")

        clustered = [
            cluster_snapshot(computation.snapshot, rtt_gap_ms=rtt_gap_ms)
            for computation in computations
        ]
        distances = consecutive_distances(clustered, rtt_scale_ms=rtt_scale_ms)
        for distance in distances:
            obs.observe("monitor.distance", distance, base=base.name)
        alarms = detect_alarms(distances, threshold)
        if alarms:
            obs.inc("monitor.alarms", len(alarms), base=base.name)
        truth = plan.change_epochs(epochs)
        score = score_detection([a.epoch for a in alarms], truth)
        obs.set_gauge("monitor.precision", score.precision)
        obs.set_gauge("monitor.recall", score.recall)

        alarmed = {alarm.epoch for alarm in alarms}
        rows = []
        for e in range(epochs):
            snap = computations[e].snapshot
            dominant = clustered[e].dominant
            rows.append(
                EpochRow(
                    epoch=e,
                    cached=cached[e],
                    flows=snap.flows_total,
                    num_bytes=snap.bytes_total,
                    clouds=len(clustered[e].clouds),
                    dominant_share=dominant.share if dominant else 0.0,
                    dominant_rtt_ms=dominant.rtt_ms if dominant else None,
                    distance=None if e == 0 else distances[e - 1],
                    alarm=e in alarmed,
                    changes=plan.labels_at(e) if e in truth else (),
                    degradation=computations[e].degradation,
                    probes_lost=snap.probes_lost,
                    digest=snap.digest(),
                )
            )

    return MonitorReport(
        base=base.name,
        policy=base_policy,
        epochs=epochs,
        epoch_s=epoch_s,
        scale=scale,
        seed=seed,
        threshold=threshold,
        plan=plan,
        rows=rows,
        clustered=clustered,
        alarms=alarms,
        truth=truth,
        score=score,
    )
