"""Simulation driver: scenario specs, world building, and week runs.

The five scenario specs mirror the paper's five datasets (Table I); a
scenario builds a self-contained world (CDN + vantage point + workload) and
the engine pushes a simulated week of requests through it, producing the
flow-level dataset the analysis pipeline consumes.
"""

from repro.sim.seeding import derive_seed
from repro.sim.scenarios import (
    DATASET_NAMES,
    PAPER_SCENARIOS,
    ScenarioSpec,
    ScenarioWorld,
    build_world,
)
from repro.sim.engine import RequestProcessor, SimulationResult, run_requests
from repro.sim.driver import run_all, run_scenario
from repro.sim.multistudy import build_shared_worlds, run_shared, run_shared_study

__all__ = [
    "derive_seed",
    "DATASET_NAMES",
    "PAPER_SCENARIOS",
    "ScenarioSpec",
    "ScenarioWorld",
    "build_world",
    "RequestProcessor",
    "SimulationResult",
    "run_requests",
    "run_all",
    "run_scenario",
    "build_shared_worlds",
    "run_shared",
    "run_shared_study",
]
