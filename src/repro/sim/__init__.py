"""Simulation driver: scenario specs, world building, and week runs.

The five scenario specs mirror the paper's five datasets (Table I); a
scenario builds a self-contained world (CDN + vantage point + workload) and
the engine pushes a simulated week of requests through it, producing the
flow-level dataset the analysis pipeline consumes.
"""

from repro.sim.seeding import derive_seed
from repro.sim.scenarios import (
    DATASET_NAMES,
    ScenarioSpec,
    ScenarioWorld,
    build_world,
)
from repro.sim.engine import RequestProcessor, SimulationResult, run_requests
from repro.sim.driver import run_all, run_scenario
from repro.sim.multistudy import build_shared_worlds, run_shared, run_shared_study


def __getattr__(name: str):
    # PEP 562: PAPER_SCENARIOS materialises from repro.spec.registry, which
    # itself imports this package for ScenarioSpec.  Re-exporting it lazily
    # keeps `from repro.sim import PAPER_SCENARIOS` working without forcing
    # the registry to load mid-way through this module's own import.
    if name == "PAPER_SCENARIOS":
        from repro.sim import scenarios

        return scenarios.PAPER_SCENARIOS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "derive_seed",
    "DATASET_NAMES",
    "PAPER_SCENARIOS",
    "ScenarioSpec",
    "ScenarioWorld",
    "build_world",
    "RequestProcessor",
    "SimulationResult",
    "run_requests",
    "run_all",
    "run_scenario",
    "build_shared_worlds",
    "run_shared",
    "run_shared_study",
]
