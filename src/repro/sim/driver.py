"""High-level drivers: run one scenario or the whole five-dataset study.

Runs are memoised in-process by their full parameter tuple: tests and the
per-figure benchmarks all analyse the same simulated week, exactly like the
paper's authors analysing one set of collected traces many times.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.exec.executor import ParallelExecutor, default_executor
from repro.sim.engine import SimulationResult, run_requests
from repro.sim.scenarios import DATASET_NAMES, PAPER_SCENARIOS, ScenarioSpec, build_world
from repro.trace.records import WEEK_S

#: Default volume scale used by tests/benchmarks; preserves all shapes at
#: roughly 2 % of the paper's traffic.
DEFAULT_SCALE = 0.02

_CACHE: Dict[Tuple, SimulationResult] = {}


def run_scenario(
    name: str,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    duration_s: float = WEEK_S,
    policy_kind: str = "preferred",
    use_cache: bool = True,
) -> SimulationResult:
    """Simulate one dataset's week.

    Args:
        name: Dataset name from :data:`~repro.sim.scenarios.PAPER_SCENARIOS`.
        scale: Traffic volume scale (1.0 = paper scale).
        seed: Master seed.
        duration_s: Collection window.
        policy_kind: ``"preferred"`` or ``"proportional"`` (ablation).
        use_cache: Reuse a previous identical run in this process.

    Returns:
        The :class:`~repro.sim.engine.SimulationResult`.

    Raises:
        KeyError: For unknown dataset names.
    """
    spec = PAPER_SCENARIOS.get(name)
    if spec is None:
        raise KeyError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    return run_spec(spec, scale, seed, duration_s, policy_kind, use_cache)


def run_spec(
    spec: ScenarioSpec,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    duration_s: float = WEEK_S,
    policy_kind: str = "preferred",
    use_cache: bool = True,
) -> SimulationResult:
    """Simulate an arbitrary scenario spec (see :func:`run_scenario`)."""
    key = (spec, scale, seed, duration_s, policy_kind)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    world = build_world(spec, scale=scale, seed=seed, duration_s=duration_s,
                        policy_kind=policy_kind)
    result = run_requests(world)
    if use_cache:
        _CACHE[key] = result
    return result


def _scenario_task(key: Tuple) -> SimulationResult:
    """Process-safe unit of work: build one scenario's world and run it."""
    spec, scale, seed, duration_s, policy_kind = key
    world = build_world(spec, scale=scale, seed=seed, duration_s=duration_s,
                        policy_kind=policy_kind)
    return run_requests(world)


def run_all(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    duration_s: float = WEEK_S,
    policy_kind: str = "preferred",
    names: Optional[Tuple[str, ...]] = None,
    executor: Optional[ParallelExecutor] = None,
) -> Dict[str, SimulationResult]:
    """Simulate every dataset of the study.

    The five vantage points' weeks are independent (each world derives all
    of its randomness from its own scenario name), so they fan out over the
    executor — one task per dataset, byte-identical across backends.
    Results land in the in-process memo cache either way.

    Args:
        executor: Fan-out strategy; ``None`` reads ``REPRO_EXECUTOR``.

    Returns:
        Mapping from dataset name to its result, in the paper's order.
    """
    selected = names if names is not None else DATASET_NAMES
    for name in selected:
        if name not in PAPER_SCENARIOS:
            raise KeyError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    keys = {
        name: (PAPER_SCENARIOS[name], scale, seed, duration_s, policy_kind)
        for name in selected
    }
    pending = [name for name in selected if keys[name] not in _CACHE]
    if pending:
        executor = default_executor(executor)
        fresh = executor.map(
            _scenario_task, [keys[name] for name in pending], labels=pending
        )
        for name, result in zip(pending, fresh):
            _CACHE[keys[name]] = result
    return {name: _CACHE[keys[name]] for name in selected}


def clear_cache() -> None:
    """Drop all memoised runs (tests use this to control memory)."""
    _CACHE.clear()
