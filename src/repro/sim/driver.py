"""High-level drivers: run one scenario or the whole five-dataset study.

Runs are memoised at two levels.  In-process, by full parameter tuple:
tests and the per-figure benchmarks all analyse the same simulated week,
exactly like the paper's authors analysing one set of collected traces
many times.  On disk, through the artifact store
(:mod:`repro.artifacts`): a warm re-run — another process, another day —
loads the pickled week instead of resimulating it, and process-backend
workers share the cache through the filesystem.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import obs
from repro.artifacts.memo import memoized_stage
from repro.exec.executor import ParallelExecutor, default_executor
from repro.sim.engine import DEFAULT_MISS_PROBABILITY, SimulationResult, run_requests
from repro.sim.scenarios import DATASET_NAMES, ScenarioSpec, _paper_scenarios, build_world
from repro.trace.records import WEEK_S

#: Default volume scale used by tests/benchmarks; preserves all shapes at
#: roughly 2 % of the paper's traffic.
DEFAULT_SCALE = 0.02

_CACHE: Dict[Tuple, SimulationResult] = {}


def run_scenario(
    name: str,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    duration_s: float = WEEK_S,
    policy_kind: str = "preferred",
    use_cache: bool = True,
) -> SimulationResult:
    """Simulate one dataset's week.

    Args:
        name: Dataset name from :data:`~repro.sim.scenarios.PAPER_SCENARIOS`.
        scale: Traffic volume scale (1.0 = paper scale).
        seed: Master seed.
        duration_s: Collection window.
        policy_kind: ``"preferred"`` or ``"proportional"`` (ablation).
        use_cache: Reuse a previous identical run in this process.

    Returns:
        The :class:`~repro.sim.engine.SimulationResult`.

    Raises:
        KeyError: For unknown dataset names.
    """
    spec = _paper_scenarios().get(name)
    if spec is None:
        raise KeyError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    return run_spec(spec, scale, seed, duration_s, policy_kind, use_cache)


def run_spec(
    spec: ScenarioSpec,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    duration_s: float = WEEK_S,
    policy_kind: str = "preferred",
    use_cache: bool = True,
) -> SimulationResult:
    """Simulate an arbitrary scenario spec (see :func:`run_scenario`)."""
    key = (spec, scale, seed, duration_s, policy_kind)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    result = simulate_week(spec, scale, seed, duration_s, policy_kind)
    if use_cache:
        _CACHE[key] = result
    return result


def run_applied(
    base,
    delta,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    duration_s: float = WEEK_S,
    base_policy: str = "preferred",
    use_cache: bool = True,
) -> SimulationResult:
    """Simulate a spec delta applied to a base scenario.

    The declarative entry point: the delta's pars/set changes (including
    its ``"policy"`` par) are validated against and composed with the
    base by :func:`repro.spec.model.apply_to_scenario`, and the result
    runs through :func:`run_spec` — so a grid point, a what-if variant
    and a hand-rolled ``run_applied`` call with equal inputs all share
    one ``"sim/run_week"`` artifact.

    Args:
        base: A :class:`ScenarioSpec`, or a :mod:`repro.spec.registry`
            name.
        delta: The :class:`~repro.spec.model.Spec` to apply.
        base_policy: Policy the ``"policy"`` par starts from.

    Raises:
        SpecError: If the delta cannot apply to the base.
        KeyError: For unknown registry names.
    """
    from repro.spec.model import apply_to_scenario
    from repro.spec.registry import scenario_spec

    if isinstance(base, str):
        base = scenario_spec(base)
    scenario, policy = apply_to_scenario(base, delta, base_policy=base_policy)
    return run_spec(scenario, scale, seed, duration_s, policy, use_cache)


@memoized_stage("sim/run_week")
def simulate_week(
    spec: ScenarioSpec,
    scale: float,
    seed: int,
    duration_s: float,
    policy_kind: str,
    miss_probability: float = DEFAULT_MISS_PROBABILITY,
) -> SimulationResult:
    """Build a scenario's world and run its week (disk-memoized).

    This is the study's most expensive pure stage, so it is the cache's
    anchor: every entry point — :func:`run_spec`, :func:`run_all` tasks,
    :func:`repro.sim.engine.run_many`, what-if variants and sweep grid
    points — keys the same ``"sim/run_week"`` artifacts, so a week
    simulated by any of them is a warm hit for all of them.
    """
    world = build_world(spec, scale=scale, seed=seed, duration_s=duration_s,
                        policy_kind=policy_kind)
    return run_requests(world, miss_probability=miss_probability)


def _scenario_task(key: Tuple) -> SimulationResult:
    """Process-safe unit of work: build one scenario's world and run it.

    Runs through :func:`simulate_week`, so a process worker reads and
    populates the shared on-disk artifact store.
    """
    spec, scale, seed, duration_s, policy_kind = key
    return simulate_week(spec, scale, seed, duration_s, policy_kind)


def _scenario_task_shm(arg: Tuple) -> Tuple:
    """The zero-copy variant: publish the columns, return a slim result.

    The flow records — the dominant pickle term — stay behind in a
    shared-memory segment named by the dispatching scope; only the
    record-free result and a table handle travel back.
    """
    from dataclasses import replace

    from repro.shard.shm import publish_table

    key, segment_name = arg
    result = _scenario_task(key)
    handle = publish_table(result.dataset.columnar(), name=segment_name)
    slim = replace(result, dataset=replace(result.dataset, records=[]))
    return (slim, handle)


def _rehydrate_shm(slim_and_handle: Tuple) -> SimulationResult:
    """Attach a slim result's columns, restoring a full-featured result.

    The rehydrated dataset's ``records`` is the attached
    :class:`~repro.trace.columnar.FlowTable` — a ``Sequence[FlowRecord]``
    that materialises record objects only if something iterates it — and
    its columnar cache is primed with the same table, so numpy kernels
    run zero-copy over the shared columns.
    """
    from dataclasses import replace

    from repro.shard.shm import attach_table

    slim, handle = slim_and_handle
    table = attach_table(handle)
    dataset = replace(slim.dataset, records=table)
    dataset.__dict__["_columnar"] = (table, table)
    return replace(slim, dataset=dataset)


def run_all(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    duration_s: float = WEEK_S,
    policy_kind: str = "preferred",
    names: Optional[Tuple[str, ...]] = None,
    executor: Optional[ParallelExecutor] = None,
    transport: Optional[str] = None,
) -> Dict[str, SimulationResult]:
    """Simulate every dataset of the study.

    The five vantage points' weeks are independent (each world derives all
    of its randomness from its own scenario name), so they fan out over the
    executor — one task per dataset, byte-identical across backends.
    Results land in the in-process memo cache either way.

    Args:
        executor: Fan-out strategy; ``None`` reads ``REPRO_EXECUTOR``.
        transport: ``"shm"`` ships each dataset's columns through a
            shared-memory segment instead of pickling its records
            (:mod:`repro.shard.shm`); ``None`` uses plain pickling.
            Results are identical either way.

    Returns:
        Mapping from dataset name to its result, in the paper's order.

    Raises:
        ValueError: For an unknown transport name.
    """
    if transport not in (None, "shm"):
        raise ValueError(f"unknown transport {transport!r}; expected None or 'shm'")
    selected = names if names is not None else DATASET_NAMES
    scenarios = _paper_scenarios()
    for name in selected:
        if name not in scenarios:
            raise KeyError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    keys = {
        name: (scenarios[name], scale, seed, duration_s, policy_kind)
        for name in selected
    }
    pending = [name for name in selected if keys[name] not in _CACHE]
    if pending:
        with obs.span("sim/run_all", datasets=len(pending), scale=scale):
            executor = default_executor(executor)
            if transport == "shm":
                from repro.shard.shm import SegmentScope

                with SegmentScope() as scope:
                    slim = executor.map(
                        _scenario_task_shm,
                        [
                            (keys[name], scope.name_for(f"run-all-{name}"))
                            for name in pending
                        ],
                        labels=pending,
                    )
                    fresh = [_rehydrate_shm(pair) for pair in slim]
            else:
                fresh = executor.map(
                    _scenario_task, [keys[name] for name in pending], labels=pending
                )
        for name, result in zip(pending, fresh):
            _CACHE[keys[name]] = result
    return {name: _CACHE[keys[name]] for name in selected}


def clear_cache() -> None:
    """Drop all memoised runs (tests use this to control memory)."""
    _CACHE.clear()
