"""Shared-world studies: all five vantage points against one CDN.

The paper's datasets were collected *simultaneously*: five monitors
watching the same production CDN in the same week.  Per-scenario worlds
(:func:`repro.sim.scenarios.build_world`) are cheap and independent — the
right tool for most analyses — but a shared world lets the vantage points
*interact*: they draw from one catalog, warm the same pull-through caches,
and compete for the same server capacity.

:func:`build_shared_worlds` constructs one CDN plus a
:class:`~repro.sim.scenarios.ScenarioWorld` facade per dataset, and
:func:`run_shared` pushes the merged, time-ordered request stream through
it, producing per-dataset results that drop into
:class:`~repro.core.pipeline.StudyPipeline` unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.artifacts.memo import memoized_stage
from repro.artifacts.store import default_store
from repro.cdn.catalog import DEFAULT_NUM_SHARDS, VideoCatalog
from repro.exec.executor import ParallelExecutor, default_executor
from repro.cdn.cluster import CdnSystem
from repro.cdn.datacenter import DataCenter, DataCenterDirectory, build_datacenter
from repro.cdn.redirection import RedirectionEngine
from repro.cdn.selection import PolicyContext, make_policy
from repro.cdn.store import ContentPlacement
from repro.geo.cities import default_atlas
from repro.net.asn import AsRegistry, CW_ASN, GBLX_ASN, GOOGLE_ASN, YOUTUBE_EU_ASN
from repro.net.dns import AuthoritativeServer, LocalResolver
from repro.net.ip import Ipv4Allocator, parse_network
from repro.net.latency import LatencyModel, Site
from repro.net.topology import Subnet, VantagePoint
from repro.sim.engine import RequestProcessor, SimulationResult
from repro.sim.scenarios import (
    DATASET_NAMES,
    GOOGLE_DC_PLAN,
    LEGACY_DC_PLAN,
    THIRD_PARTY_DC_PLAN,
    ScenarioSpec,
    ScenarioWorld,
    _paper_scenarios,
    _slug,
)
from repro.sim.seeding import derive_seed
from repro.trace.records import WEEK_S
from repro.workload.clients import build_population
from repro.workload.interactions import InteractionModel
from repro.workload.requests import Request, RequestGenerator


def build_shared_worlds(
    scale: float = 0.02,
    seed: int = 7,
    duration_s: float = WEEK_S,
    names: Sequence[str] = DATASET_NAMES,
) -> Dict[str, ScenarioWorld]:
    """Build one CDN and a world facade per dataset.

    Args:
        scale: Traffic scale applied to every dataset.
        seed: Master seed (component sub-seeds match the per-scenario
            builder, so workloads are comparable across modes).
        duration_s: Simulation window.
        names: Datasets to include.

    Returns:
        Mapping dataset name → its :class:`ScenarioWorld`; all entries
        share the same ``system``, ``registry`` and ``latency``.

    Raises:
        KeyError: For unknown dataset names.
        ValueError: For a non-positive scale.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    specs: List[ScenarioSpec] = []
    for name in names:
        spec = _paper_scenarios().get(name)
        if spec is None:
            raise KeyError(f"unknown dataset {name!r}")
        specs.append(spec)
    atlas = default_atlas()

    # ----------------------------------------------------------- registry
    registry = AsRegistry()
    registry.register_as(GOOGLE_ASN, "Google Inc.")
    registry.register_as(YOUTUBE_EU_ASN, "YouTube-EU")
    registry.register_as(CW_ASN, "Cable&Wireless")
    registry.register_as(GBLX_ASN, "Global Crossing")
    for spec in specs:
        # Two vantage points can share an AS (EU1-ADSL and EU1-FTTH are
        # PoPs of the same ISP); first registration names it.
        if not registry.has_as(spec.vantage_asn):
            registry.register_as(spec.vantage_asn, f"{spec.name} host network")

    google_alloc = Ipv4Allocator(
        (parse_network("173.194.0.0/15"), parse_network("74.125.0.0/16"))
    )
    legacy_alloc = Ipv4Allocator((parse_network("208.65.152.0/21"),))
    third_alloc = Ipv4Allocator((parse_network("195.50.0.0/20"),))
    isp_alloc = Ipv4Allocator((parse_network("81.200.0.0/18"),))

    # --------------------------------------------------------- data centers
    google_dcs = [
        build_datacenter(f"dc-{_slug(city)}", atlas.get(city), size, google_alloc, GOOGLE_ASN)
        for city, size in GOOGLE_DC_PLAN
    ]
    internal_dc: Optional[DataCenter] = None
    internal_owner: Optional[ScenarioSpec] = next(
        (spec for spec in specs if spec.internal_dc), None
    )
    if internal_owner is not None:
        internal_dc = build_datacenter(
            dc_id="dc-eu2-internal",
            city=atlas.get(internal_owner.vantage_city),
            num_servers=32,
            allocator=isp_alloc,
            asn=internal_owner.vantage_asn,
        )
    legacy_dcs = [
        build_datacenter(
            f"legacy-{_slug(city)}", atlas.get(city), size, legacy_alloc, YOUTUBE_EU_ASN
        )
        for city, size in LEGACY_DC_PLAN
    ]
    third_party_dcs = [
        build_datacenter(
            f"3p-{label}-{_slug(city)}",
            atlas.get(city),
            size,
            third_alloc,
            CW_ASN if label == "cw" else GBLX_ASN,
        )
        for city, label, size in THIRD_PARTY_DC_PLAN
    ]
    ranked_dcs: List[DataCenter] = list(google_dcs)
    if internal_dc is not None:
        ranked_dcs.append(internal_dc)
    directory = DataCenterDirectory(ranked_dcs + legacy_dcs + third_party_dcs)
    for dc in ranked_dcs + legacy_dcs + third_party_dcs:
        for network in dc.networks:
            registry.announce(network, dc.asn)

    # ------------------------------------------------------------ latencies
    detours: Dict[Tuple[str, str], float] = {}
    for spec in _paper_scenarios().values():
        spec_group = f"vp:{spec.name}"
        for dc_id, detour_ms in spec.detour_pins:
            detours[(spec_group, dc_id)] = detour_ms
        if spec.internal_dc:
            detours[(spec_group, "dc-eu2-internal")] = 0.0
    latency = LatencyModel(seed=derive_seed(seed, "latency"), detour_overrides=detours)

    # --------------------------------------- rankings, caps, and capacities
    rankings: Dict[str, Sequence[str]] = {}
    dns_caps: Dict[str, float] = {}
    preferred_demand: Dict[str, float] = {}
    spec_rankings: Dict[str, List[str]] = {}
    for spec in specs:
        probe = Site(
            key=f"vp:{spec.name}",
            point=atlas.get(spec.vantage_city).point,
            access=spec.access,
            extra_ms=spec.egress_ms,
            group=f"vp:{spec.name}",
        )

        def dc_rtt(dc: DataCenter) -> float:
            return latency.min_rtt_ms(probe, dc.server_site(dc.servers[0]))

        # Eligible data centers: every Google one, plus the in-ISP data
        # center for the ISP's own customers only.
        eligible = [
            dc for dc in ranked_dcs
            if dc is not internal_dc or spec.internal_dc
        ]
        ranked_ids = [dc.dc_id for dc in sorted(eligible, key=dc_rtt)]
        spec_rankings[spec.name] = ranked_ids
        mean_hourly = spec.requests_per_day * scale / 24.0
        preferred_demand[ranked_ids[0]] = preferred_demand.get(ranked_ids[0], 0.0) + mean_hourly
        for subnet_spec in spec.subnets:
            resolver_id = f"{spec.name}/{subnet_spec.name}"
            if subnet_spec.divergent_resolver:
                rankings[resolver_id] = [ranked_ids[1], ranked_ids[0]] + ranked_ids[2:]
            else:
                rankings[resolver_id] = list(ranked_ids)
        if spec.internal_dc and internal_dc is not None:
            dns_caps[internal_dc.dc_id] = max(
                2.0, spec.internal_dc_cap_of_mean * mean_hourly
            )

    # Per-server capacity: preferred data centers are sized against the
    # demand homed on them; everything else gets the median of those caps.
    caps: Dict[str, float] = {}
    for dc in ranked_dcs:
        demand = preferred_demand.get(dc.dc_id)
        if demand is not None:
            multiple = max(spec.server_capacity_multiple for spec in specs)
            caps[dc.dc_id] = multiple * demand / dc.size + 4.0
    default_cap = sorted(caps.values())[len(caps) // 2] if caps else 10.0
    for dc in ranked_dcs:
        dc.server_capacity_per_hour = caps.get(dc.dc_id, default_cap)

    # -------------------------------------------------- shared CDN system
    total_rpd = sum(spec.requests_per_day for spec in specs) * scale
    weeks = max(1.0, duration_s / WEEK_S)
    catalog = VideoCatalog(
        size=max(500, int(0.6 * total_rpd * 7 * weeks)),
        zipf_alpha=1.0,
        seed=derive_seed(seed, "shared", "catalog"),
        num_featured_days=max(1, int(duration_s // 86400.0)),
        featured_share=0.10,
    )
    placement = ContentPlacement(
        catalog=catalog,
        dc_ids=[dc.dc_id for dc in ranked_dcs],
        replicated_mass=0.75,
        regional_presence_prob=0.8,
    )
    redirection = RedirectionEngine(
        directory=directory,
        placement=placement,
        rebalance_probability=0.14,
        origin_fetch_probability=0.35,
        seed=derive_seed(seed, "shared", "redirection"),
    )
    # Through the registry, like build_world — byte-identical to the
    # direct PreferredDcPolicy construction it replaces.
    policy = make_policy(
        "preferred",
        PolicyContext(
            directory=directory,
            rankings=rankings,
            eligible=tuple(dc.dc_id for dc in ranked_dcs),
            dns_capacity_per_hour=dns_caps,
            spill_probability=max(spec.spill_probability for spec in specs),
            seed=derive_seed(seed, "shared", "policy"),
        ),
    )
    system = CdnSystem(
        catalog=catalog,
        directory=directory,
        placement=placement,
        policy=policy,
        redirection=redirection,
        latency=latency,
        num_shards=DEFAULT_NUM_SHARDS,
        legacy_dcs=legacy_dcs,
        third_party_dcs=third_party_dcs,
        legacy_probability=0.06,
        third_party_probability=0.008,
    )
    authoritative = AuthoritativeServer(mapper=policy)

    # --------------------------------------------------- per-dataset worlds
    worlds: Dict[str, ScenarioWorld] = {}
    for spec in specs:
        subnet_networks = list(parse_network(spec.client_block).subnets(18))
        subnets = [
            Subnet(
                name=subnet_spec.name,
                network=subnet_networks[i],
                resolver=LocalResolver(
                    resolver_id=f"{spec.name}/{subnet_spec.name}",
                    authoritative=authoritative,
                ),
                client_share=subnet_spec.client_share,
            )
            for i, subnet_spec in enumerate(spec.subnets)
        ]
        vantage = VantagePoint(
            name=spec.name,
            city=atlas.get(spec.vantage_city),
            access=spec.access,
            egress_ms=spec.egress_ms,
            subnets=subnets,
            asn=spec.vantage_asn,
        )
        population = build_population(
            vantage,
            max(40, int(spec.num_clients * scale)),
            seed=derive_seed(seed, spec.name, "clients"),
        )
        generator = RequestGenerator(
            population=population,
            catalog=catalog,
            profile=spec.diurnal_profile(),
            requests_per_day=spec.requests_per_day * scale,
            interactions=InteractionModel(),
            seed=derive_seed(seed, spec.name, "workload"),
        )
        worlds[spec.name] = ScenarioWorld(
            spec=spec,
            scale=scale,
            seed=seed,
            system=system,
            vantage=vantage,
            population=population,
            generator=generator,
            registry=registry,
            latency=latency,
            google_dc_ids=spec_rankings[spec.name],
            internal_dc_id=None if internal_dc is None else internal_dc.dc_id,
            duration_s=duration_s,
        )
    return worlds


def _generate_task(world: ScenarioWorld) -> List[Request]:
    """Process-safe unit of work: one vantage point's request stream.

    Generation only reads the world and draws from the generator's own
    RNG, so a pickled copy produces value-identical requests (floats
    round-trip pickling exactly) — the merged stream is byte-identical
    across backends.
    """
    return world.generator.generate(world.duration_s)


def run_shared(
    worlds: Dict[str, ScenarioWorld],
    executor: Optional[ParallelExecutor] = None,
) -> Dict[str, SimulationResult]:
    """Run the merged request stream through the shared CDN.

    Requests from every vantage point are interleaved in global time order,
    so DNS budgets, server loads and pull-through caches see the causal
    order a real shared week would produce.  That interleaved processing is
    inherently serial — the vantage points interact through shared state —
    but the per-vantage request *generation* is independent and fans out
    over the executor.

    Args:
        worlds: Per-dataset facades sharing one system.
        executor: Fan-out strategy for generation; ``None`` reads
            ``REPRO_EXECUTOR``.

    Returns:
        Per-dataset :class:`SimulationResult`, pipeline-compatible.

    Raises:
        ValueError: If the worlds do not share one system.
    """
    if not worlds:
        raise ValueError("no worlds to run")
    systems = {id(world.system) for world in worlds.values()}
    if len(systems) != 1:
        raise ValueError("run_shared needs worlds sharing one CdnSystem")

    executor = default_executor(executor)
    names = list(worlds)
    with obs.span("sim/shared_generate", datasets=len(names)):
        streams = executor.map(
            _generate_task,
            [worlds[name] for name in names],
            labels=[f"generate/{name}" for name in names],
        )
    with obs.span("sim/shared_process", datasets=len(names)):
        tagged: List[Tuple[float, str, Request]] = []
        for name, stream in zip(names, streams):
            for request in stream:
                tagged.append((request.t_s, name, request))
        tagged.sort(key=lambda item: item[0])

        processors = {name: RequestProcessor(world) for name, world in worlds.items()}
        for _, name, request in tagged:
            processors[name].process(request)
        return {name: processor.finish() for name, processor in processors.items()}


@memoized_stage("sim/shared_study", ignore=("executor",))
def run_shared_study(
    scale: float = 0.02,
    seed: int = 7,
    duration_s: float = WEEK_S,
    names: Sequence[str] = DATASET_NAMES,
    executor: Optional[ParallelExecutor] = None,
) -> Dict[str, SimulationResult]:
    """Build the shared world and run the whole study in one call.

    Disk-memoized as one ``"sim/shared_study"`` artifact: the shared world
    is causally coupled across vantage points, so the cacheable unit is
    the whole interleaved study, keyed by ``(scale, seed, duration_s,
    names)`` — never the individual facades.  The ``executor`` only
    shapes how generation fans out, not what comes back, so it stays out
    of the key.
    """
    return run_shared(build_shared_worlds(scale, seed, duration_s, names), executor=executor)


#: Distinct miss sentinel for store lookups.
_STUDY_MISS = object()


def _shared_study_task(config: Dict) -> Dict[str, SimulationResult]:
    """Process-safe unit of work: one complete shared study.

    The inner generation runs serially — the fan-out lives at the study
    level here, and nesting pools would oversubscribe the workers.
    """
    return run_shared_study(
        scale=config.get("scale", 0.02),
        seed=config.get("seed", 7),
        duration_s=config.get("duration_s", WEEK_S),
        names=config.get("names", DATASET_NAMES),
        executor=ParallelExecutor("serial"),
    )


def _shared_study_task_shm(arg: Tuple) -> Dict[str, Tuple]:
    """The zero-copy variant: publish each dataset's columns, return slims.

    Mirrors :func:`repro.sim.driver._scenario_task_shm` at the study
    level — one shared-memory segment per dataset, named by the parent's
    scope, so the flow records never ride the result pickle.
    """
    from dataclasses import replace

    from repro.shard.shm import publish_table

    config, segment_names = arg
    results = _shared_study_task(config)
    packed: Dict[str, Tuple] = {}
    for name, result in results.items():
        handle = publish_table(result.dataset.columnar(), name=segment_names[name])
        slim = replace(result, dataset=replace(result.dataset, records=[]))
        packed[name] = (slim, handle)
    return packed


def run_shared_studies(
    configs: Sequence[Dict],
    executor: Optional[ParallelExecutor] = None,
    transport: Optional[str] = None,
) -> List[Dict[str, SimulationResult]]:
    """Fan out several complete shared studies, one per executor task.

    This is the multi-scenario sweep surface: each config dict may set
    ``scale``, ``seed``, ``duration_s`` and ``names``, and each study
    builds its own CDN, so the studies are fully independent.  Results
    are byte-identical to running :func:`run_shared_study` serially per
    config.

    Args:
        configs: One kwargs-style dict per study.
        executor: Fan-out strategy; ``None`` reads ``REPRO_EXECUTOR``.
        transport: ``"shm"`` ships each dataset's columns through a
            shared-memory segment instead of pickling its records
            (:mod:`repro.shard.shm`); ``None`` uses plain pickling.
            Results are identical either way.

    Warm configs resolve from the artifact store in the parent (their
    ``"sim/shared_study"`` keys are pre-checked via
    ``run_shared_study.cache_key``); only the missing studies fan out, so
    an N-config sweep that shares M already-simulated configs pays for
    exactly N - M studies.

    Returns:
        Per-config result mappings, in input order.

    Raises:
        ValueError: With no configs, or an unknown transport name.
    """
    if not configs:
        raise ValueError("no study configs given")
    if transport not in (None, "shm"):
        raise ValueError(f"unknown transport {transport!r}; expected None or 'shm'")
    configs = list(configs)
    store = default_store()
    results: List[Optional[Dict[str, SimulationResult]]] = [None] * len(configs)
    pending: List[int] = []
    for i, config in enumerate(configs):
        if store is not None:
            hit = store.get(run_shared_study.cache_key(**config), _STUDY_MISS,
                            stage="sim/shared_study")
            if hit is not _STUDY_MISS:
                results[i] = hit
                continue
        pending.append(i)

    if pending:
        executor = default_executor(executor)
        labels = [
            "study/" + ",".join(f"{k}={configs[i][k]}" for k in sorted(configs[i])
                                if k != "names")
            for i in pending
        ]
        if transport == "shm":
            from repro.shard.shm import SegmentScope
            from repro.sim.driver import _rehydrate_shm

            with SegmentScope() as scope:
                packed = executor.map(
                    _shared_study_task_shm,
                    [
                        (
                            configs[i],
                            {
                                name: scope.name_for(f"study-{i}-{name}")
                                for name in configs[i].get("names", DATASET_NAMES)
                            },
                        )
                        for i in pending
                    ],
                    labels=labels,
                )
                fresh = [
                    {name: _rehydrate_shm(pair) for name, pair in study.items()}
                    for study in packed
                ]
        else:
            fresh = executor.map(
                _shared_study_task, [configs[i] for i in pending], labels=labels
            )
        for i, result in zip(pending, fresh):
            results[i] = result
    return results
