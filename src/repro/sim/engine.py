"""The simulation engine: push a request stream through the world.

Requests are processed in time order so that the stateful mechanisms —
DNS assignment budgets, per-server hourly loads, pull-through caching —
see the same causal order a real week would produce.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cdn.cluster import RequestOutcome
from repro.exec.executor import ParallelExecutor, default_executor
from repro.net.dns import LocalResolver
from repro.net.latency import Site
from repro.sim.scenarios import ScenarioWorld
from repro.sim.seeding import derive_seed
from repro.trace.monitor import EdgeMonitor
from repro.trace.records import Dataset
from repro.workload.requests import Request


#: Cap on retained per-request performance samples (reservoir truncation).
_MAX_PERF_SAMPLES = 50_000

#: Default monitor classification-miss probability (shared by every
#: engine entry point and by the cache keys over them).
DEFAULT_MISS_PROBABILITY = 0.002

#: Ground-truth attribution labels, mirroring the blind pipeline's
#: three-way verdict (:func:`repro.core.nonpreferred.session_verdicts`).
TRUTH_PREFERRED = "preferred"
TRUTH_DNS = "dns"
TRUTH_REDIRECTION = "redirection"

#: All truth labels, in confusion-matrix display order.
TRUTH_LABELS: Tuple[str, ...] = (TRUTH_PREFERRED, TRUTH_DNS, TRUTH_REDIRECTION)


@dataclass
class GroundTruthLog:
    """Per-request ground truth the attribution scorer grades against.

    Parallel lists, one entry per processed request (compact to pickle —
    the log rides inside every cached :class:`SimulationResult`).  The
    ``anchor`` of a request is the policy's intended data center for the
    vantage point's reference resolver at that moment
    (:meth:`~repro.cdn.selection.SelectionPolicy.preferred_now`), i.e.
    the simulator-side counterpart of the blind pipeline's one inferred
    preferred data center per dataset.

    Attributes:
        client_ips: Requesting client address per request.
        video_ids: Requested video per request.
        t_s: Request time per request.
        anchor_dcs: The anchor (intended/preferred) data center.
        dns_dcs: Data center the DNS answer actually pointed at.
        served_dcs: Data center that finally served the video.
        labels: Attribution label: :data:`TRUTH_DNS` when the DNS answer
            itself left the anchor, :data:`TRUTH_REDIRECTION` when DNS
            agreed with the anchor but the redirect chain left it,
            :data:`TRUTH_PREFERRED` otherwise.
    """

    client_ips: List[int] = field(default_factory=list)
    video_ids: List[str] = field(default_factory=list)
    t_s: List[float] = field(default_factory=list)
    anchor_dcs: List[str] = field(default_factory=list)
    dns_dcs: List[str] = field(default_factory=list)
    served_dcs: List[str] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.labels)

    def append(
        self,
        client_ip: int,
        video_id: str,
        t_s: float,
        anchor_dc: str,
        dns_dc: str,
        chain_dcs: Sequence[str],
    ) -> None:
        """Record one request's truth (label derived, no randomness)."""
        if dns_dc != anchor_dc:
            label = TRUTH_DNS
        elif any(dc_id != anchor_dc for dc_id in chain_dcs):
            label = TRUTH_REDIRECTION
        else:
            label = TRUTH_PREFERRED
        self.client_ips.append(client_ip)
        self.video_ids.append(video_id)
        self.t_s.append(t_s)
        self.anchor_dcs.append(anchor_dc)
        self.dns_dcs.append(dns_dc)
        self.served_dcs.append(chain_dcs[-1] if chain_dcs else dns_dc)
        self.labels.append(label)

    def label_counts(self) -> Counter:
        """Tally of the three truth labels."""
        return Counter(self.labels)


@dataclass
class SimulationResult:
    """A finished scenario run.

    Attributes:
        world: The world that was run (kept for active measurements — the
            probing and PlanetLab experiments need the physical world).
        dataset: The collected flow-level trace.
        requests: Number of requests processed.
        cause_counts: Ground-truth redirect-cause tally (tests only — the
            analysis pipeline never reads it).
        dns_dc_counts: Ground-truth DNS-assignment tally per data center.
        served_dc_counts: Ground-truth serve tally per data center.
        startup_delay_samples: Per-request video startup delays in seconds
            (time from the request until the video flow's first byte) — the
            user-performance metric what-if comparisons report.
        serving_rtt_samples: Floor RTT (ms) between each client and the
            server that delivered its video.
        truth: Per-request attribution ground truth
            (:class:`GroundTruthLog`) — read only by
            :mod:`repro.eval.attribution`; the blind analysis pipeline
            never sees it.
    """

    world: ScenarioWorld
    dataset: Dataset
    requests: int
    cause_counts: Counter = field(default_factory=Counter)
    dns_dc_counts: Counter = field(default_factory=Counter)
    served_dc_counts: Counter = field(default_factory=Counter)
    startup_delay_samples: List[float] = field(default_factory=list)
    serving_rtt_samples: List[float] = field(default_factory=list)
    truth: GroundTruthLog = field(default_factory=GroundTruthLog)


class RequestProcessor:
    """Per-vantage processing state: monitor, RNG, caches, result tallies.

    Both the per-scenario engine (:func:`run_requests`) and the shared-world
    engine (:func:`repro.sim.multistudy.run_shared`) drive one of these per
    dataset.
    """

    def __init__(
        self,
        world: ScenarioWorld,
        miss_probability: float = DEFAULT_MISS_PROBABILITY,
        record_sink: Optional[Callable] = None,
    ):
        self.world = world
        self.monitor = EdgeMonitor(
            world.vantage,
            miss_probability=miss_probability,
            seed=derive_seed(world.seed, world.spec.name, "monitor"),
            sink=record_sink,
        )
        self._serve_rng = random.Random(
            derive_seed(world.seed, world.spec.name, "serve")
        )
        self._site_cache: Dict[int, Site] = {}
        self._resolver_cache: Dict[int, LocalResolver] = {}
        self.result = SimulationResult(world=world, dataset=None, requests=0)
        # Anchor resolver for ground-truth labels: the first non-divergent
        # subnet's resolver — the vantage point's canonical view, matching
        # the single preferred data center the blind pipeline infers per
        # dataset.  (Divergent subnets are exactly the ones whose answers
        # should read as DNS-caused deviations.)
        self._anchor_resolver: Optional[str] = None
        subnets = getattr(world.spec, "subnets", ())
        for subnet_spec in subnets:
            if not getattr(subnet_spec, "divergent_resolver", False):
                self._anchor_resolver = f"{world.spec.name}/{subnet_spec.name}"
                break
        if self._anchor_resolver is None and subnets:
            self._anchor_resolver = f"{world.spec.name}/{subnets[0].name}"

    def process(self, request: Request) -> RequestOutcome:
        """Serve one request, record its flows and ground truth."""
        world = self.world
        result = self.result
        client_ip = request.client.ip
        site = self._site_cache.get(client_ip)
        if site is None:
            site = world.vantage.client_site(client_ip)
            self._site_cache[client_ip] = site
        resolver = self._resolver_cache.get(client_ip)
        if resolver is None:
            resolver = world.vantage.resolver_for(client_ip)
            self._resolver_cache[client_ip] = resolver
        outcome = world.system.handle_request(
            client_ip=client_ip,
            client_site=site,
            resolver=resolver,
            video=request.video,
            resolution=request.resolution,
            t_s=request.t_s,
            rng=self._serve_rng,
        )
        self.monitor.observe_all(outcome.events)
        result.requests += 1
        result.dns_dc_counts[outcome.dns_dc_id] += 1
        result.served_dc_counts[outcome.served_dc_id] += 1
        # Ground truth: what the policy intended vs. what happened.  The
        # anchor lookup is a pure observation (preferred_now consumes no
        # randomness), so recording truth never perturbs the week.
        anchor_dc = None
        if self._anchor_resolver is not None:
            try:
                anchor_dc = world.system.policy.preferred_now(
                    self._anchor_resolver, request.t_s
                )
            except KeyError:
                anchor_dc = None
        if anchor_dc is None:
            # Hand-built worlds without a configured anchor resolver:
            # degrade to labelling relative to the DNS answer itself.
            anchor_dc = outcome.dns_dc_id
        result.truth.append(
            client_ip=client_ip,
            video_id=request.video.video_id,
            t_s=request.t_s,
            anchor_dc=anchor_dc,
            dns_dc=outcome.dns_dc_id,
            chain_dcs=[hop.dc_id for hop in outcome.decision.hops],
        )
        if outcome.decision.causes:
            for cause in outcome.decision.causes:
                result.cause_counts[cause] += 1
        else:
            result.cause_counts["direct"] += 1
        if len(result.startup_delay_samples) < _MAX_PERF_SAMPLES:
            serving = outcome.decision.serving_server
            rtt_ms = world.latency.min_rtt_ms(site, world.system.server_site(serving))
            video_flow = outcome.events[len(outcome.decision.hops) - 1]
            # Startup = redirect chain latency + one more RTT to first byte.
            startup = (video_flow.t_start - request.t_s) + 2.0 * rtt_ms / 1000.0
            result.startup_delay_samples.append(startup)
            result.serving_rtt_samples.append(rtt_ms)
        return outcome

    def finish(self) -> SimulationResult:
        """Close collection and return the populated result."""
        self.result.dataset = self.monitor.finish(
            self.world.spec.name, self.world.duration_s
        )
        return self.result


def run_requests(
    world: ScenarioWorld,
    requests: Optional[Sequence[Request]] = None,
    miss_probability: float = DEFAULT_MISS_PROBABILITY,
) -> SimulationResult:
    """Run a request stream through the world and collect the trace.

    Args:
        world: The built scenario world.
        requests: Request stream; generated from the world's generator when
            omitted.
        miss_probability: Monitor classification-miss probability.

    Returns:
        The :class:`SimulationResult` with the dataset and ground truth.
    """
    if requests is None:
        requests = world.generator.generate(world.duration_s)
    processor = RequestProcessor(world, miss_probability=miss_probability)
    for request in requests:
        processor.process(request)
    return processor.finish()


def stream_requests(
    world: ScenarioWorld,
    requests: Optional[Sequence[Request]] = None,
    miss_probability: float = DEFAULT_MISS_PROBABILITY,
) -> Iterator[object]:
    """Live-emit mode: the week as a time-ordered event stream.

    Yields :class:`~repro.stream.events.WatermarkAdvance` and
    :class:`~repro.stream.events.FlowArrival` events instead of collecting
    a :class:`~repro.trace.records.Dataset`.  Request processing is
    identical to :func:`run_requests` — same
    :class:`RequestProcessor`, same miss/serve RNG consumption — so the
    emitted records are exactly the batch dataset's records, in monitor
    observation order.  Only the retention differs: flows are handed off
    as they are observed, keeping memory independent of the flow count.

    Watermark semantics: requests are processed in increasing ``t_s`` and
    every flow a request produces starts at or after its ``t_s``, so the
    current request time is a valid low watermark — no later arrival can
    start before it.  A final infinite watermark closes the stream.
    """
    from repro.stream.events import FlowArrival, WatermarkAdvance

    if requests is None:
        requests = world.generator.generate(world.duration_s)
    fresh: List = []
    processor = RequestProcessor(
        world, miss_probability=miss_probability, record_sink=fresh.append
    )
    seq = 0
    for request in requests:
        yield WatermarkAdvance(t_s=request.t_s)
        processor.process(request)
        for record in fresh:
            yield FlowArrival(record=record, seq=seq)
            seq += 1
        fresh.clear()
    yield WatermarkAdvance(t_s=math.inf)


#: Distinct miss sentinel (a cached stage value can legitimately be None).
_RUN_MISS = object()


def _run_world_task(args: Tuple[ScenarioWorld, float]) -> SimulationResult:
    """Process-safe unit of work: one vantage point's whole week."""
    world, miss_probability = args
    return run_requests(world, miss_probability=miss_probability)


def run_many(
    worlds: Sequence[ScenarioWorld],
    miss_probability: float = DEFAULT_MISS_PROBABILITY,
    executor: Optional[ParallelExecutor] = None,
) -> List[SimulationResult]:
    """Run several independent worlds, one per executor task.

    Each world owns all of its random state (its RNGs were derived from
    its own ``(seed, scenario)`` path at build time), so the backends are
    interchangeable: results are byte-identical in every mode and arrive
    in input order.

    Worlds built canonically by :func:`~repro.sim.scenarios.build_world`
    (``policy_kind`` set) resolve against the on-disk artifact store
    first, under the same ``"sim/run_week"`` keys
    :func:`repro.sim.driver.simulate_week` writes; only the missing weeks
    fan out.  A hand-modified world must clear ``world.policy_kind`` (set
    it to ``None``) to opt out — the cache cannot see mutations made
    after the build.  The idiomatic alternative is to express the change
    as a :class:`~repro.spec.model.Spec` delta and rebuild through
    :func:`repro.spec.model.apply_spec`: spec-built worlds always carry a
    canonical fingerprint, so the opt-out (and its cold-path cost) never
    applies to them — see :mod:`repro.artifacts.keys`.

    Args:
        worlds: Independent built worlds (must not share a ``system``;
            shared-world studies are causally serial — see
            :func:`repro.sim.multistudy.run_shared`).
        miss_probability: Monitor classification-miss probability.
        executor: Fan-out strategy; defaults to the environment's.

    Returns:
        One :class:`SimulationResult` per world, in input order.

    Raises:
        ValueError: If two worlds share a CDN system.
    """
    from repro.artifacts.store import default_store
    from repro.sim.driver import simulate_week

    worlds = list(worlds)
    systems = {id(world.system) for world in worlds}
    if len(systems) != len(worlds):
        raise ValueError(
            "run_many needs independent worlds; use run_shared for a shared CdnSystem"
        )

    store = default_store()
    results: List[Optional[SimulationResult]] = [None] * len(worlds)
    keys: List[Optional[str]] = [None] * len(worlds)
    pending: List[int] = []
    for i, world in enumerate(worlds):
        if store is not None and world.policy_kind is not None:
            keys[i] = simulate_week.cache_key(
                world.spec, world.scale, world.seed, world.duration_s,
                world.policy_kind, miss_probability,
            )
            hit = store.get(keys[i], _RUN_MISS, stage="sim/run_week")
            if hit is not _RUN_MISS:
                results[i] = hit
                continue
        pending.append(i)

    if pending:
        executor = default_executor(executor)
        fresh = executor.map(
            _run_world_task,
            [(worlds[i], miss_probability) for i in pending],
            labels=[worlds[i].spec.name for i in pending],
        )
        for i, result in zip(pending, fresh):
            results[i] = result
            if store is not None and keys[i] is not None:
                store.put(keys[i], result, stage="sim/run_week")
    return results
