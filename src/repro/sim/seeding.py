"""Deterministic seed derivation.

Every random component of a world (latency hashes, catalog durations, DNS
policy, redirection engine, workload, monitor) gets its own sub-seed derived
from the master seed and a label path, so that (a) the whole study is
reproducible from one integer, and (b) changing one component's draws never
perturbs another's.
"""

from __future__ import annotations

import hashlib


def derive_seed(master: int, *labels: str) -> int:
    """Derive a 63-bit sub-seed from a master seed and a label path.

    Args:
        master: The master seed.
        labels: Component path, e.g. ``("US-Campus", "workload")``.

    Returns:
        A non-negative 63-bit integer seed.
    """
    if not labels:
        raise ValueError("at least one label is required")
    text = str(master) + "/" + "/".join(labels)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF
