"""Scenario specifications and world building.

A :class:`ScenarioSpec` captures everything that distinguishes one of the
paper's five datasets: vantage-point geography and access technology,
client population and request volume (Table I), the internal subnet plan
(Figure 12), the DNS-policy quirks (EU2's capacity-limited in-ISP data
center, US-Campus's divergent Net-3 resolvers), and the legacy-traffic mix
(Table II).

:func:`build_world` turns a spec plus a ``scale`` knob into a runnable
:class:`ScenarioWorld`.  ``scale = 1.0`` reproduces the paper's traffic
volumes (hundreds of thousands of flows per dataset); benchmarks default to
a small scale that preserves every shape at a laptop-friendly cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdn.catalog import DEFAULT_NUM_SHARDS, VideoCatalog
from repro.cdn.cluster import CdnSystem
from repro.cdn.datacenter import DataCenter, DataCenterDirectory, build_datacenter
from repro.cdn.redirection import RedirectionEngine
from repro.cdn.selection import (
    PolicyContext,
    SelectionPolicy,
    make_policy,
    registered_policy_kinds,
)
from repro.cdn.store import ContentPlacement
from repro.geo.cities import City, default_atlas
from repro.net.asn import (
    AsRegistry,
    CW_ASN,
    GBLX_ASN,
    GOOGLE_ASN,
    YOUTUBE_EU_ASN,
)
from repro.net.dns import AuthoritativeServer, LocalResolver
from repro.net.ip import Ipv4Allocator, parse_network
from repro.net.latency import AccessTechnology, LatencyModel, Site
from repro.net.topology import Subnet, VantagePoint
from repro.sim.seeding import derive_seed
from repro.trace.records import WEEK_S
from repro.workload.clients import ClientPopulation, build_population
from repro.workload.diurnal import DiurnalProfile
from repro.workload.interactions import InteractionModel
from repro.workload.requests import RequestGenerator

#: Google data centers: (city, fleet size).  13 in the US, 14 in Europe and
#: 6 elsewhere — the 33 data centers the paper finds (Section V).
GOOGLE_DC_PLAN: Tuple[Tuple[str, int], ...] = (
    # United States
    ("Mountain View", 96),
    ("Los Angeles", 48),
    ("Seattle", 48),
    ("Denver", 24),
    ("Dallas", 64),
    ("Houston", 32),
    ("Chicago", 96),
    ("Atlanta", 64),
    ("Miami", 32),
    ("Ashburn", 96),
    ("New York", 64),
    ("Boston", 32),
    ("Kansas City", 24),
    # Europe
    ("Amsterdam", 96),
    ("Frankfurt", 96),
    ("London", 64),
    ("Paris", 64),
    ("Lisbon", 24),
    ("Milan", 48),
    ("Stockholm", 32),
    ("Dublin", 48),
    ("Brussels", 32),
    ("Zurich", 32),
    ("Vienna", 24),
    ("Munich", 32),
    ("Hamburg", 24),
    ("Warsaw", 24),
    # Rest of world
    ("Tokyo", 64),
    ("Singapore", 48),
    ("Hong Kong", 32),
    ("Sydney", 32),
    ("Sao Paulo", 32),
    ("Mumbai", 24),
)

#: Legacy YouTube-EU (AS 43515) asset pools: small leftover infrastructure.
LEGACY_DC_PLAN: Tuple[Tuple[str, int], ...] = (
    ("Amsterdam", 80),
    ("London", 70),
    ("Mountain View", 60),
)

#: Third-party pools (the "Others" column of Table II).
THIRD_PARTY_DC_PLAN: Tuple[Tuple[str, str, int], ...] = (
    ("London", "cw", 40),
    ("New York", "gblx", 40),
)

_ISP_ASN_EU2 = 3352  # the EU2 host ISP's AS (hosts the in-ISP data center)


def _slug(city_name: str) -> str:
    return city_name.lower().replace(" ", "-").replace(".", "")


@dataclass(frozen=True)
class SubnetSpec:
    """Plan for one internal subnet.

    Attributes:
        name: Subnet label (``"Net-3"``).
        client_share: Fraction of the vantage point's clients homed here.
        divergent_resolver: Whether this subnet's local DNS servers receive
            a *different preferred data center* from YouTube's authoritative
            servers — the Section VII-B mechanism behind Figure 12.
    """

    name: str
    client_share: float
    divergent_resolver: bool = False


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything that distinguishes one dataset's world.

    Volume fields are at paper scale (``scale = 1.0``); see Table I.
    """

    name: str
    vantage_city: str
    access: AccessTechnology
    egress_ms: float
    vantage_asn: int
    subnets: Tuple[SubnetSpec, ...]
    num_clients: int
    requests_per_day: float
    residential: bool
    #: Probability DNS hands out a non-preferred answer as background LB.
    spill_probability: float
    #: Client address space (a /15 split into /18 subnets).  Distinct per
    #: scenario so that shared-world studies can interleave all five
    #: vantage points' clients without address collisions.
    client_block: str = "128.210.0.0/15"
    #: Host an in-ISP data center (the EU2 situation)?
    internal_dc: bool = False
    #: DNS-assignment capacity of the internal data center, as a fraction of
    #: the *mean* hourly request rate (Section VII-A load balancing).
    internal_dc_cap_of_mean: float = 0.55
    #: Per-server serve capacity as a multiple of the preferred data
    #: center's mean per-server load (Section VII-C hot-spots).
    server_capacity_multiple: float = 6.0
    #: Chance a request also fetches a legacy (AS 43515) asset.
    legacy_probability: float = 0.06
    #: Chance of a third-party (CW/GBLX) asset flow.
    third_party_probability: float = 0.008
    #: Baseline intra-data-center rebalance probability.
    rebalance_probability: float = 0.14
    #: Chance a content miss is fetched from the canonical origin copy.
    origin_fetch_probability: float = 0.35
    #: Pin these vantage→data-center detours (ms); used to engineer RTT
    #: rankings, e.g. US-Campus's far-but-fast preferred data center.
    detour_pins: Tuple[Tuple[str, float], ...] = ()
    #: Catalog size as a fraction of the week's request count.
    catalog_per_request: float = 0.6
    #: Zipf exponent of the catalog's popularity distribution.
    zipf_alpha: float = 1.0
    #: Share of requests captured by the day's featured video.
    featured_share: float = 0.10
    #: Fraction of request mass whose videos are replicated everywhere.
    replicated_mass: float = 0.75
    #: Chance a tail video is already present at a data center at t=0.
    regional_presence_prob: float = 0.8
    #: Per-data-center cap on pulled-through tail videos (LRU eviction
    #: beyond it); ``None`` = effectively infinite over one trace week.
    cache_capacity: Optional[int] = None
    #: Enable local-resolver answer caching (off by default: YouTube's
    #: short TTLs keep per-request control at the authoritative side).
    dns_cache_enabled: bool = False
    #: TTL of authoritative answers, seconds (only matters when resolver
    #: caching is enabled).
    dns_ttl_s: float = 20.0
    #: Drain the preferred data center at the DNS level (zero assignment
    #: budget) — an outage / maintenance what-if.
    drain_preferred: bool = False
    #: Force this data center to the top of every resolver's ranking,
    #: regardless of RTT.  Models the paper's February-2011 observation
    #: that "the majority of US-Campus video requests are directed to a
    #: data center with an RTT of more than 100 ms and not to the closest
    #: data center": the preferred data center is an assignment, and
    #: YouTube can (and did) re-assign it away from the RTT optimum.
    preferred_override: Optional[str] = None
    #: Extra Google-fleet data centers beyond :data:`GOOGLE_DC_PLAN`, as
    #: (city, fleet size) pairs — the topology axis for what-if grids
    #: (``repro.spec``'s ``"datacenter"`` set deltas land here).
    extra_dcs: Tuple[Tuple[str, int], ...] = ()
    #: Cities removed from :data:`GOOGLE_DC_PLAN` (drained/decommissioned
    #: data-center what-ifs; the complementary half of the topology axis).
    removed_dcs: Tuple[str, ...] = ()

    def diurnal_profile(self) -> DiurnalProfile:
        """The arrival profile matching the vantage point's nature."""
        return DiurnalProfile.residential() if self.residential else DiurnalProfile.campus()

    def effective_dc_plan(self) -> Tuple[Tuple[str, int], ...]:
        """The Google data-center plan this scenario actually builds:
        the shared :data:`GOOGLE_DC_PLAN` minus :attr:`removed_dcs` plus
        :attr:`extra_dcs`.

        Raises:
            ValueError: If :attr:`removed_dcs` names an absent city or
                the effective plan holds duplicate cities.
        """
        removed = set(self.removed_dcs)
        known = {city for city, _size in GOOGLE_DC_PLAN}
        unknown = sorted(removed - known)
        if unknown:
            raise ValueError(f"removed_dcs name no known data center: {unknown}")
        plan = tuple(
            pair for pair in GOOGLE_DC_PLAN if pair[0] not in removed
        ) + tuple(self.extra_dcs)
        cities = [city for city, _size in plan]
        if len(set(cities)) != len(cities):
            raise ValueError(f"duplicate data-center cities in plan: {cities}")
        return plan


#: Dataset names of Table I, in the paper's order.
DATASET_NAMES: Tuple[str, ...] = (
    "US-Campus",
    "EU1-Campus",
    "EU1-ADSL",
    "EU1-FTTH",
    "EU2",
)


def _paper_scenarios() -> Dict[str, ScenarioSpec]:
    """The five Table-I scenarios, materialised from the spec registry.

    The definitions live in :mod:`repro.spec.registry` as declarative
    deltas over a bare base (imported lazily — the registry imports this
    module for :class:`ScenarioSpec` itself); the result is
    value-identical to the historical literal dict.
    """
    from repro.spec.registry import paper_scenarios

    return paper_scenarios()


def __getattr__(name: str):
    # PEP 562: PAPER_SCENARIOS is registry-backed but keeps its historical
    # module-constant spelling.  The first access materialises and caches
    # it; later accesses hit the module dict directly.
    if name == "PAPER_SCENARIOS":
        value = _paper_scenarios()
        globals()["PAPER_SCENARIOS"] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def february_2011_us_campus() -> ScenarioSpec:
    """The paper's February-2011 follow-up observation, as a spec.

    "In a more recent dataset collected in February 2011, we found that the
    majority of US-Campus video requests are directed to a data center with
    an RTT of more than 100 ms and not to the closest data center, which is
    around 30 ms away."  The re-assignment is modelled by the registry's
    ``US-Campus-Feb2011`` spec (the US-Campus delta composed with
    :data:`repro.spec.registry.FEB_2011_DELTA`); this constructor is the
    thin legacy wrapper over it.
    """
    from repro.spec.registry import scenario_spec

    return scenario_spec("US-Campus-Feb2011")


@dataclass
class ScenarioWorld:
    """A fully built, runnable scenario.

    Attributes:
        spec: The source specification.
        scale: Applied volume scale.
        seed: Master seed.
        system: The CDN.
        vantage: The monitored vantage point.
        population: Client population.
        generator: Request generator for the simulated window.
        registry: The AS registry (the simulated whois).
        latency: The shared delay model.
        google_dc_ids: Ranked (DNS-eligible) data-center IDs.
        internal_dc_id: The in-ISP data center's ID (EU2 only).
        duration_s: Simulation window.
        policy_kind: Selection-policy kind this world was built with, or
            ``None`` for worlds not built canonically by
            :func:`build_world` (shared-world facades, hand-assembled test
            worlds).  ``None`` opts the world out of artifact caching —
            see :meth:`build_config`.  Worlds produced by
            :func:`repro.spec.model.apply_spec` always come through
            :func:`build_world` and therefore always carry a canonical
            fingerprint: the spec layer has no ``None`` escape-hatch.
    """

    spec: ScenarioSpec
    scale: float
    seed: int
    system: CdnSystem
    vantage: VantagePoint
    population: ClientPopulation
    generator: RequestGenerator
    registry: AsRegistry
    latency: LatencyModel
    google_dc_ids: List[str]
    internal_dc_id: Optional[str]
    duration_s: float
    policy_kind: Optional[str] = None

    def build_config(self) -> Optional[Dict]:
        """The canonical build inputs, or ``None`` if not cacheable.

        A world straight out of :func:`build_world` is a pure function of
        ``(spec, scale, seed, duration_s, policy_kind)``, so running it is
        cacheable under a key over exactly those inputs.  Worlds whose
        ``policy_kind`` is ``None`` — shared-world facades (their results
        depend on every co-resident vantage point) and hand-built test
        worlds — return ``None`` and are never cached at this level.
        """
        if self.policy_kind is None:
            return None
        return {
            "spec": self.spec,
            "scale": self.scale,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "policy_kind": self.policy_kind,
        }

    @property
    def probe_site(self) -> Site:
        """The monitoring PC's network position."""
        return self.vantage.probe_site

    def site_of_server_ip(self, server_ip: int) -> Optional[Site]:
        """Network position of a server address seen in the trace.

        This is what active measurement tools "see": they can ping an IP,
        which physically means reaching the machine wherever it is.
        """
        server = self.system.directory.server_at(server_ip)
        if server is None:
            return None
        return self.system.server_site(server)


def build_world(
    spec: ScenarioSpec,
    scale: float = 1.0,
    seed: int = 7,
    duration_s: float = WEEK_S,
    policy_kind: str = "preferred",
    traffic_seed: Optional[int] = None,
) -> ScenarioWorld:
    """Build a runnable world for a scenario.

    Args:
        spec: Scenario specification.
        scale: Volume scale; multiplies clients and request rate, and scales
            the capacity limits accordingly so load ratios are preserved.
        seed: Master seed.
        duration_s: Simulation window (default one week).
        traffic_seed: Optional separate seed for the *per-request*
            randomness (workload arrivals, redirection coin flips, the
            policy's spill sampling).  ``None`` (the default) keeps
            everything on ``seed`` — byte-identical to the historical
            behaviour.  The longitudinal monitor passes a per-epoch
            ``traffic_seed`` while holding ``seed`` fixed, so
            consecutive epochs are fresh traffic samples of the *same*
            physical world: latency paths, the catalog, the client
            address plan and the RTT ranking never re-roll between
            epochs (re-rolled paths would masquerade as CDN changes).
        policy_kind: A registered selection-policy kind (see
            :func:`repro.cdn.selection.registered_policy_kinds`):
            ``"preferred"`` for the paper's inferred (RTT-driven) policy,
            ``"proportional"`` for the old-infrastructure ablation
            baseline, ``"geographic"`` for an idealised distance-driven
            policy (what selection would look like if proximity *were*
            the criterion — it is not, per Figure 8), plus the
            literature policies of :mod:`repro.cdn.policies`
            (``"gwtw"``, ``"isp-te"``, ``"partition"``).

    Returns:
        The assembled :class:`ScenarioWorld`.

    Raises:
        ValueError: For a non-positive scale or an unregistered policy
            kind (the message names every registered policy).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if policy_kind not in registered_policy_kinds():
        raise ValueError(
            f"unknown policy {policy_kind!r}; registered policies: "
            f"{', '.join(registered_policy_kinds())}"
        )
    request_seed = seed if traffic_seed is None else traffic_seed
    atlas = default_atlas()
    vantage_city = atlas.get(spec.vantage_city)

    # ---------------------------------------------------------- address plan
    registry = AsRegistry()
    registry.register_as(GOOGLE_ASN, "Google Inc.")
    registry.register_as(YOUTUBE_EU_ASN, "YouTube-EU")
    registry.register_as(CW_ASN, "Cable&Wireless")
    registry.register_as(GBLX_ASN, "Global Crossing")
    registry.register_as(spec.vantage_asn, f"{spec.name} host network")

    google_alloc = Ipv4Allocator(
        (parse_network("173.194.0.0/15"), parse_network("74.125.0.0/16"))
    )
    legacy_alloc = Ipv4Allocator((parse_network("208.65.152.0/21"),))
    third_alloc = Ipv4Allocator((parse_network("195.50.0.0/20"),))
    isp_alloc = Ipv4Allocator((parse_network("81.200.0.0/18"),))

    # ----------------------------------------------------------- data centers
    group = f"vp:{spec.name}"
    scaled_rpd = spec.requests_per_day * scale
    mean_hourly = scaled_rpd / 24.0

    google_dcs: List[DataCenter] = []
    for city_name, size in spec.effective_dc_plan():
        dc = build_datacenter(
            dc_id=f"dc-{_slug(city_name)}",
            city=atlas.get(city_name),
            num_servers=size,
            allocator=google_alloc,
            asn=GOOGLE_ASN,
        )
        google_dcs.append(dc)

    internal_dc: Optional[DataCenter] = None
    if spec.internal_dc:
        internal_dc = build_datacenter(
            dc_id="dc-eu2-internal",
            city=vantage_city,
            num_servers=32,
            allocator=isp_alloc,
            asn=spec.vantage_asn,
        )

    # ------------------------------------------------------------- latencies
    # Every world shares one physical internet: the same latency seed AND
    # the same detour pins.  Pins are keyed by vantage group, so the union
    # over all scenarios is conflict-free — and it must be the union, or a
    # measurement made "through" one world would see different paths than
    # another world's policy ranked by.
    detours: Dict[Tuple[str, str], float] = {}
    for any_spec in _paper_scenarios().values():
        any_group = f"vp:{any_spec.name}"
        for dc_id, detour_ms in any_spec.detour_pins:
            detours[(any_group, dc_id)] = detour_ms
        if any_spec.internal_dc:
            # Traffic to the in-ISP data center never leaves the ISP.
            detours[(any_group, "dc-eu2-internal")] = 0.0
    for dc_id, detour_ms in spec.detour_pins:
        detours[(group, dc_id)] = detour_ms
    if internal_dc is not None:
        detours[(group, internal_dc.dc_id)] = 0.0
    latency = LatencyModel(seed=derive_seed(seed, "latency"), detour_overrides=detours)

    legacy_dcs: List[DataCenter] = [
        build_datacenter(
            dc_id=f"legacy-{_slug(city_name)}",
            city=atlas.get(city_name),
            num_servers=size,
            allocator=legacy_alloc,
            asn=YOUTUBE_EU_ASN,
        )
        for city_name, size in LEGACY_DC_PLAN
    ]
    third_party_dcs: List[DataCenter] = [
        build_datacenter(
            dc_id=f"3p-{label}-{_slug(city_name)}",
            city=atlas.get(city_name),
            num_servers=size,
            allocator=third_alloc,
            asn=CW_ASN if label == "cw" else GBLX_ASN,
        )
        for city_name, label, size in THIRD_PARTY_DC_PLAN
    ]

    ranked_dcs: List[DataCenter] = list(google_dcs)
    if internal_dc is not None:
        ranked_dcs.append(internal_dc)
    all_dcs = ranked_dcs + legacy_dcs + third_party_dcs
    directory = DataCenterDirectory(all_dcs)

    for dc in all_dcs:
        for network in dc.networks:
            registry.announce(network, dc.asn)

    # --------------------------------------------------------------- vantage
    probe_site = Site(
        key=f"vp:{spec.name}",
        point=vantage_city.point,
        access=spec.access,
        extra_ms=spec.egress_ms,
        group=group,
    )

    # RTT ranking from the vantage point to every eligible data center —
    # this is the ground the preferred-data-center policy stands on.  The
    # "geographic" ablation ranks by distance instead, which Figure 8 shows
    # is NOT what the real system does.
    def dc_rtt(dc: DataCenter) -> float:
        return latency.min_rtt_ms(probe_site, dc.server_site(dc.servers[0]))

    def dc_distance(dc: DataCenter) -> float:
        return vantage_city.point.distance_km(dc.city.point)

    rank_key = dc_distance if policy_kind == "geographic" else dc_rtt
    ranked_ids = [dc.dc_id for dc in sorted(ranked_dcs, key=rank_key)]
    if spec.preferred_override is not None:
        if spec.preferred_override not in ranked_ids:
            raise ValueError(
                f"preferred_override {spec.preferred_override!r} is not a "
                f"rankable data center"
            )
        ranked_ids.remove(spec.preferred_override)
        ranked_ids.insert(0, spec.preferred_override)

    # ----------------------------------------------------------- DNS policy
    # One PolicyContext serves every registered kind: rankings reflect this
    # kind's ranking basis (distance for "geographic", RTT otherwise) and
    # the Section VII-B divergent-resolver overrides; caps carry the EU2
    # internal-DC budget (Section VII-A) and drain what-ifs; rtt_ms is the
    # link-cost signal the racing/traffic-engineering policies steer on.
    rankings: Dict[str, Sequence[str]] = {}
    for subnet_spec in spec.subnets:
        resolver_id = f"{spec.name}/{subnet_spec.name}"
        if subnet_spec.divergent_resolver:
            # YouTube's per-resolver assignment hands this resolver a
            # different preferred data center (Section VII-B).
            rankings[resolver_id] = [ranked_ids[1], ranked_ids[0]] + ranked_ids[2:]
        else:
            rankings[resolver_id] = list(ranked_ids)
    dns_caps: Dict[str, float] = {}
    if internal_dc is not None:
        dns_caps[internal_dc.dc_id] = max(2.0, spec.internal_dc_cap_of_mean * mean_hourly)
    if spec.drain_preferred:
        dns_caps[ranked_ids[0]] = 0.0
    policy: SelectionPolicy = make_policy(
        policy_kind,
        PolicyContext(
            directory=directory,
            rankings=rankings,
            eligible=tuple(dc.dc_id for dc in ranked_dcs),
            rtt_ms={dc.dc_id: dc_rtt(dc) for dc in ranked_dcs},
            dns_capacity_per_hour=dns_caps,
            spill_probability=spec.spill_probability,
            seed=derive_seed(request_seed, spec.name, "policy"),
            ttl_s=spec.dns_ttl_s,
            duration_s=duration_s,
        ),
    )

    authoritative = AuthoritativeServer(mapper=policy)
    subnet_block = parse_network(spec.client_block)
    subnet_networks = list(subnet_block.subnets(18))
    subnets: List[Subnet] = []
    for i, subnet_spec in enumerate(spec.subnets):
        resolver = LocalResolver(
            resolver_id=f"{spec.name}/{subnet_spec.name}",
            authoritative=authoritative,
            cache_enabled=spec.dns_cache_enabled,
        )
        subnets.append(
            Subnet(
                name=subnet_spec.name,
                network=subnet_networks[i],
                resolver=resolver,
                client_share=subnet_spec.client_share,
            )
        )
    vantage = VantagePoint(
        name=spec.name,
        city=vantage_city,
        access=spec.access,
        egress_ms=spec.egress_ms,
        subnets=subnets,
        asn=spec.vantage_asn,
    )

    # ------------------------------------------------ capacities and content
    preferred_id = (
        max(ranked_dcs, key=lambda d: d.size).dc_id
        if policy_kind == "proportional"
        else ranked_ids[0]
    )
    preferred_dc = directory.get(preferred_id)
    mean_per_server = mean_hourly / preferred_dc.size
    # The +4 floor keeps Poisson noise from tripping the limit at tiny
    # scales while leaving the hot shard server (which concentrates the
    # featured video's demand) well above it during feature-day peaks.
    capacity = spec.server_capacity_multiple * mean_per_server + 4.0
    for dc in ranked_dcs:
        dc.server_capacity_per_hour = capacity

    weeks = max(1.0, duration_s / WEEK_S)
    catalog_size = max(500, int(spec.catalog_per_request * scaled_rpd * 7 * weeks))
    catalog = VideoCatalog(
        size=catalog_size,
        zipf_alpha=spec.zipf_alpha,
        seed=derive_seed(seed, spec.name, "catalog"),
        num_featured_days=max(1, int(duration_s // 86400.0)),
        featured_share=spec.featured_share,
    )
    placement = ContentPlacement(
        catalog=catalog,
        dc_ids=[dc.dc_id for dc in ranked_dcs],
        replicated_mass=spec.replicated_mass,
        regional_presence_prob=spec.regional_presence_prob,
        cache_capacity=spec.cache_capacity,
    )
    redirection = RedirectionEngine(
        directory=directory,
        placement=placement,
        rebalance_probability=spec.rebalance_probability,
        origin_fetch_probability=spec.origin_fetch_probability,
        seed=derive_seed(request_seed, spec.name, "redirection"),
    )
    system = CdnSystem(
        catalog=catalog,
        directory=directory,
        placement=placement,
        policy=policy,
        redirection=redirection,
        latency=latency,
        num_shards=DEFAULT_NUM_SHARDS,
        legacy_dcs=legacy_dcs,
        third_party_dcs=third_party_dcs,
        legacy_probability=spec.legacy_probability,
        third_party_probability=spec.third_party_probability,
    )

    # --------------------------------------------------------------- workload
    num_clients = max(40, int(spec.num_clients * scale))
    population = build_population(
        vantage, num_clients, seed=derive_seed(seed, spec.name, "clients")
    )
    generator = RequestGenerator(
        population=population,
        catalog=catalog,
        profile=spec.diurnal_profile(),
        requests_per_day=scaled_rpd,
        interactions=InteractionModel(),
        seed=derive_seed(request_seed, spec.name, "workload"),
    )

    return ScenarioWorld(
        spec=spec,
        scale=scale,
        seed=seed,
        system=system,
        vantage=vantage,
        population=population,
        generator=generator,
        registry=registry,
        latency=latency,
        google_dc_ids=[dc.dc_id for dc in ranked_dcs],
        internal_dc_id=None if internal_dc is None else internal_dc.dc_id,
        duration_s=duration_s,
        policy_kind=policy_kind,
    )
