"""Active RTT probing.

The measurement primitive behind Figure 2 (vantage-point ping campaigns),
CBG's landmark probes, and the PlanetLab experiments: send a handful of
pings, keep the minimum.  The prober owns its RNG so that measurement noise
never perturbs the simulated world's randomness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.artifacts.keys import CanonicalizationError, stage_key
from repro.artifacts.store import default_store
from repro.exec.executor import ParallelExecutor, default_executor
from repro.net.latency import LatencyModel, Site


class RttProber:
    """Min-filtered RTT measurements over the shared delay model.

    Args:
        latency: The world's delay model.
        probes: Pings per measurement (the minimum is reported).
        seed: RNG seed for queueing noise.
    """

    def __init__(self, latency: LatencyModel, probes: int = 10, seed: int = 0):
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self._latency = latency
        self._probes = probes
        self._rng = random.Random(seed)
        self.measurements = 0

    def measure_ms(self, origin: Site, target: Site) -> float:
        """One min-filtered RTT measurement, in milliseconds."""
        self.measurements += 1
        return self._latency.measure_min_rtt_ms(origin, target, self._rng, self._probes)

    def campaign(self, origin: Site, targets: Mapping[str, Site]) -> Dict[str, float]:
        """Measure from one origin to many labelled targets.

        Returns:
            Mapping from target label to measured min RTT (ms).
        """
        return {label: self.measure_ms(origin, site) for label, site in targets.items()}

    def matrix(
        self, origins: Mapping[str, Site], targets: Mapping[str, Site]
    ) -> Dict[Tuple[str, str], float]:
        """Full origin × target measurement matrix."""
        results: Dict[Tuple[str, str], float] = {}
        for o_label, o_site in origins.items():
            for t_label, t_site in targets.items():
                results[(o_label, t_label)] = self.measure_ms(o_site, t_site)
        return results


@dataclass(frozen=True)
class CampaignJob:
    """One self-contained ping campaign: a vantage point's full sweep.

    Self-contained means picklable and order-deterministic: the job names
    its own RNG seed, and targets are measured in the mapping's insertion
    order, so the same job measures the same values on every backend.

    Attributes:
        label: Campaign label (timing reports and error messages).
        latency: The shared delay model (read-only during measurement).
        origin: Probing origin site.
        targets: Target label → site, in measurement order.
        probes: Pings per measurement.
        seed: Seed for this campaign's private prober RNG.
    """

    label: str
    latency: LatencyModel
    origin: Site
    targets: Dict[object, Site] = field(hash=False)
    probes: int = 10
    seed: int = 0

    def cache_fingerprint(self) -> Dict[str, object]:
        """Canonical identity for artifact-cache keys.

        Target order is *preserved* (the campaign's RNG is shared across
        targets, so reordering changes the measured values), and the
        cosmetic ``label`` is excluded — two differently-labelled sweeps
        of the same targets measure the same numbers.
        """
        return {
            "latency": self.latency,
            "origin": self.origin,
            "targets": [[label, site] for label, site in self.targets.items()],
            "probes": self.probes,
            "seed": self.seed,
        }


def run_campaign_job(job: CampaignJob) -> Dict[object, float]:
    """Process-safe unit of work: run one campaign with a fresh prober."""
    prober = RttProber(job.latency, probes=job.probes, seed=job.seed)
    return prober.campaign(job.origin, job.targets)


#: Distinct miss sentinel for store lookups.
_CAMPAIGN_MISS = object()


def _campaign_cache_key(job: CampaignJob) -> Optional[str]:
    """The job's artifact key, or ``None`` when it cannot be derived.

    A :class:`CampaignJob` is a frozen dataclass over canonicalisable
    parts (the delay model carries a ``cache_fingerprint``; sites are
    dataclasses), so the whole job canonicalises wholesale.  Exotic
    target labels that resist canonicalisation just make the job
    uncacheable — never wrongly shared.
    """
    try:
        return stage_key("geoloc/campaign", job)
    except CanonicalizationError:
        return None


def run_campaigns(
    jobs: Sequence[CampaignJob],
    executor: Optional[ParallelExecutor] = None,
) -> List[Dict[object, float]]:
    """Fan independent campaigns out over the executor.

    Every job owns its RNG, so campaigns never share random state and the
    backends are interchangeable.  Measured matrices are small and
    campaigns are re-run for every analysis pass, so each job resolves
    against the artifact store first (stage ``"geoloc/campaign"``); only
    unmeasured campaigns fan out.

    Returns:
        One measurement mapping per job, in input order.
    """
    jobs = list(jobs)
    store = default_store()
    results: List[Optional[Dict[object, float]]] = [None] * len(jobs)
    keys: List[Optional[str]] = [None] * len(jobs)
    pending: List[int] = []
    for i, job in enumerate(jobs):
        if store is not None:
            keys[i] = _campaign_cache_key(job)
            if keys[i] is not None:
                hit = store.get(keys[i], _CAMPAIGN_MISS, stage="geoloc/campaign")
                if hit is not _CAMPAIGN_MISS:
                    results[i] = hit
                    continue
        pending.append(i)

    if pending:
        executor = default_executor(executor)
        fresh = executor.map(
            run_campaign_job,
            [jobs[i] for i in pending],
            labels=[jobs[i].label for i in pending],
        )
        for i, measured in zip(pending, fresh):
            results[i] = measured
            if store is not None and keys[i] is not None:
                store.put(keys[i], measured, stage="geoloc/campaign")
    return results
