"""Active RTT probing.

The measurement primitive behind Figure 2 (vantage-point ping campaigns),
CBG's landmark probes, and the PlanetLab experiments: send a handful of
pings, keep the minimum.  The prober owns its RNG so that measurement noise
never perturbs the simulated world's randomness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exec.executor import ParallelExecutor, default_executor
from repro.net.latency import LatencyModel, Site


class RttProber:
    """Min-filtered RTT measurements over the shared delay model.

    Args:
        latency: The world's delay model.
        probes: Pings per measurement (the minimum is reported).
        seed: RNG seed for queueing noise.
    """

    def __init__(self, latency: LatencyModel, probes: int = 10, seed: int = 0):
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self._latency = latency
        self._probes = probes
        self._rng = random.Random(seed)
        self.measurements = 0

    def measure_ms(self, origin: Site, target: Site) -> float:
        """One min-filtered RTT measurement, in milliseconds."""
        self.measurements += 1
        return self._latency.measure_min_rtt_ms(origin, target, self._rng, self._probes)

    def campaign(self, origin: Site, targets: Mapping[str, Site]) -> Dict[str, float]:
        """Measure from one origin to many labelled targets.

        Returns:
            Mapping from target label to measured min RTT (ms).
        """
        return {label: self.measure_ms(origin, site) for label, site in targets.items()}

    def matrix(
        self, origins: Mapping[str, Site], targets: Mapping[str, Site]
    ) -> Dict[Tuple[str, str], float]:
        """Full origin × target measurement matrix."""
        results: Dict[Tuple[str, str], float] = {}
        for o_label, o_site in origins.items():
            for t_label, t_site in targets.items():
                results[(o_label, t_label)] = self.measure_ms(o_site, t_site)
        return results


@dataclass(frozen=True)
class CampaignJob:
    """One self-contained ping campaign: a vantage point's full sweep.

    Self-contained means picklable and order-deterministic: the job names
    its own RNG seed, and targets are measured in the mapping's insertion
    order, so the same job measures the same values on every backend.

    Attributes:
        label: Campaign label (timing reports and error messages).
        latency: The shared delay model (read-only during measurement).
        origin: Probing origin site.
        targets: Target label → site, in measurement order.
        probes: Pings per measurement.
        seed: Seed for this campaign's private prober RNG.
    """

    label: str
    latency: LatencyModel
    origin: Site
    targets: Dict[object, Site] = field(hash=False)
    probes: int = 10
    seed: int = 0


def run_campaign_job(job: CampaignJob) -> Dict[object, float]:
    """Process-safe unit of work: run one campaign with a fresh prober."""
    prober = RttProber(job.latency, probes=job.probes, seed=job.seed)
    return prober.campaign(job.origin, job.targets)


def run_campaigns(
    jobs: Sequence[CampaignJob],
    executor: Optional[ParallelExecutor] = None,
) -> List[Dict[object, float]]:
    """Fan independent campaigns out over the executor.

    Every job owns its RNG, so campaigns never share random state and the
    backends are interchangeable.

    Returns:
        One measurement mapping per job, in input order.
    """
    executor = default_executor(executor)
    return executor.map(
        run_campaign_job, list(jobs), labels=[job.label for job in jobs]
    )
