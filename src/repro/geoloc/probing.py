"""Active RTT probing.

The measurement primitive behind Figure 2 (vantage-point ping campaigns),
CBG's landmark probes, and the PlanetLab experiments: send a handful of
pings, keep the minimum.  The prober owns its RNG so that measurement noise
never perturbs the simulated world's randomness.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Tuple

from repro.net.latency import LatencyModel, Site


class RttProber:
    """Min-filtered RTT measurements over the shared delay model.

    Args:
        latency: The world's delay model.
        probes: Pings per measurement (the minimum is reported).
        seed: RNG seed for queueing noise.
    """

    def __init__(self, latency: LatencyModel, probes: int = 10, seed: int = 0):
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self._latency = latency
        self._probes = probes
        self._rng = random.Random(seed)
        self.measurements = 0

    def measure_ms(self, origin: Site, target: Site) -> float:
        """One min-filtered RTT measurement, in milliseconds."""
        self.measurements += 1
        return self._latency.measure_min_rtt_ms(origin, target, self._rng, self._probes)

    def campaign(self, origin: Site, targets: Mapping[str, Site]) -> Dict[str, float]:
        """Measure from one origin to many labelled targets.

        Returns:
            Mapping from target label to measured min RTT (ms).
        """
        return {label: self.measure_ms(origin, site) for label, site in targets.items()}

    def matrix(
        self, origins: Mapping[str, Site], targets: Mapping[str, Site]
    ) -> Dict[Tuple[str, str], float]:
        """Full origin × target measurement matrix."""
        results: Dict[Tuple[str, str], float] = {}
        for o_label, o_site in origins.items():
            for t_label, t_site in targets.items():
                results[(o_label, t_label)] = self.measure_ms(o_site, t_site)
        return results
