"""Active RTT probing.

The measurement primitive behind Figure 2 (vantage-point ping campaigns),
CBG's landmark probes, and the PlanetLab experiments: send a handful of
pings, keep the minimum.  The prober owns its RNG so that measurement noise
never perturbs the simulated world's randomness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.artifacts.keys import CanonicalizationError, stage_key
from repro.artifacts.store import default_store
from repro.exec.executor import ParallelExecutor, default_executor
from repro.faults import report as degradation
from repro.faults.plan import FaultPlan, active_plan
from repro.faults.retry import ProbeTimeout, RetryPolicy, default_retry_policy
from repro.net.latency import LatencyModel, Site


class RttProber:
    """Min-filtered RTT measurements over the shared delay model.

    Args:
        latency: The world's delay model.
        probes: Pings per measurement (the minimum is reported).
        seed: RNG seed for queueing noise.
    """

    def __init__(self, latency: LatencyModel, probes: int = 10, seed: int = 0):
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self._latency = latency
        self._probes = probes
        self._rng = random.Random(seed)
        self.measurements = 0

    def measure_ms(self, origin: Site, target: Site) -> float:
        """One min-filtered RTT measurement, in milliseconds."""
        self.measurements += 1
        return self._latency.measure_min_rtt_ms(origin, target, self._rng, self._probes)

    def campaign(self, origin: Site, targets: Mapping[str, Site]) -> Dict[str, float]:
        """Measure from one origin to many labelled targets.

        Returns:
            Mapping from target label to measured min RTT (ms).
        """
        return {label: self.measure_ms(origin, site) for label, site in targets.items()}

    def matrix(
        self, origins: Mapping[str, Site], targets: Mapping[str, Site]
    ) -> Dict[Tuple[str, str], float]:
        """Full origin × target measurement matrix."""
        results: Dict[Tuple[str, str], float] = {}
        for o_label, o_site in origins.items():
            for t_label, t_site in targets.items():
                results[(o_label, t_label)] = self.measure_ms(o_site, t_site)
        return results


@dataclass(frozen=True)
class CampaignJob:
    """One self-contained ping campaign: a vantage point's full sweep.

    Self-contained means picklable and order-deterministic: the job names
    its own RNG seed, and targets are measured in the mapping's insertion
    order, so the same job measures the same values on every backend.

    Attributes:
        label: Campaign label (timing reports and error messages).
        latency: The shared delay model (read-only during measurement).
        origin: Probing origin site.
        targets: Target label → site, in measurement order.
        probes: Pings per measurement.
        seed: Seed for this campaign's private prober RNG.
    """

    label: str
    latency: LatencyModel
    origin: Site
    targets: Dict[object, Site] = field(hash=False)
    probes: int = 10
    seed: int = 0

    def cache_fingerprint(self) -> Dict[str, object]:
        """Canonical identity for artifact-cache keys.

        Target order is *preserved* (the campaign's RNG is shared across
        targets, so reordering changes the measured values), and the
        cosmetic ``label`` is excluded — two differently-labelled sweeps
        of the same targets measure the same numbers.
        """
        return {
            "latency": self.latency,
            "origin": self.origin,
            "targets": [[label, site] for label, site in self.targets.items()],
            "probes": self.probes,
            "seed": self.seed,
        }


def run_campaign_job(job: CampaignJob) -> Dict[object, float]:
    """Process-safe unit of work: run one campaign with a fresh prober."""
    prober = RttProber(job.latency, probes=job.probes, seed=job.seed)
    return prober.campaign(job.origin, job.targets)


@dataclass(frozen=True)
class CampaignOutcome:
    """A faulted campaign's result plus its degradation accounting.

    Attributes:
        measurements: Target label → measured min RTT (lost targets absent).
        lost: Targets lost outright (probe loss, or timeouts that
            exhausted their retries).
        timeouts: Individual measurement attempts that timed out.
        retried: Measurement attempts that were retried after a timeout.
    """

    measurements: Dict[object, float]
    lost: int = 0
    timeouts: int = 0
    retried: int = 0


def run_campaign_job_faulted(job: CampaignJob) -> CampaignOutcome:
    """Run one campaign under the ambient fault plan.

    Probe loss drops a target before any measurement; timeouts fail
    individual measurement *attempts* and are retried under the default
    :class:`~repro.faults.retry.RetryPolicy` (an exhausted target counts
    as lost).  Every decision is keyed on ``(plan.seed, campaign label,
    target label, attempt)``, so the same (seed, plan) loses the same
    probes on every backend.  Falls back to the clean path when no plan
    is active (e.g. a worker whose environment lost ``REPRO_FAULTS``
    would diverge silently otherwise — better to measure cleanly and let
    the parent's accounting show zero degradation).
    """
    plan = active_plan()
    if plan is None:
        return CampaignOutcome(measurements=run_campaign_job(job))
    prober = RttProber(job.latency, probes=job.probes, seed=job.seed)
    retry = default_retry_policy()
    measurements: Dict[object, float] = {}
    lost = timeouts = retried = 0
    for t_label, site in job.targets.items():
        if plan.decide(plan.probe_loss, "probe/loss", job.label, str(t_label)):
            lost += 1
            continue
        counters = {"timeouts": 0, "retried": 0}
        try:
            measurements[t_label] = _measure_with_timeouts(
                prober, job, plan, retry, t_label, site, counters
            )
        except ProbeTimeout:
            lost += 1
            counters["timeouts"] += 1
        timeouts += counters["timeouts"]
        retried += counters["retried"]
    return CampaignOutcome(
        measurements=measurements, lost=lost, timeouts=timeouts, retried=retried
    )


def _measure_with_timeouts(
    prober: RttProber,
    job: CampaignJob,
    plan: FaultPlan,
    retry: RetryPolicy,
    t_label: object,
    site: Site,
    counters: Dict[str, int],
) -> float:
    """One target's measurement with per-attempt timeout injection."""

    def attempt_once(attempt: int) -> float:
        value = prober.measure_ms(job.origin, site)
        if plan.attempt_fails(
            plan.probe_timeout, attempt, "probe/timeout", job.label, str(t_label)
        ):
            counters["timeouts"] += 1
            raise ProbeTimeout(
                f"injected RTT timeout: {job.label} -> {t_label} (attempt {attempt})"
            )
        return value

    def on_retry(_attempt: int, _error: BaseException) -> None:
        counters["retried"] += 1

    return retry.run(
        attempt_once, label=f"{job.label}/{t_label}", on_retry=on_retry
    )


#: Distinct miss sentinel for store lookups.
_CAMPAIGN_MISS = object()


def _campaign_cache_key(job: CampaignJob) -> Optional[str]:
    """The job's artifact key, or ``None`` when it cannot be derived.

    A :class:`CampaignJob` is a frozen dataclass over canonicalisable
    parts (the delay model carries a ``cache_fingerprint``; sites are
    dataclasses), so the whole job canonicalises wholesale.  Exotic
    target labels that resist canonicalisation just make the job
    uncacheable — never wrongly shared.
    """
    try:
        return stage_key("geoloc/campaign", job)
    except CanonicalizationError:
        return None


def run_campaigns(
    jobs: Sequence[CampaignJob],
    executor: Optional[ParallelExecutor] = None,
) -> List[Dict[object, float]]:
    """Fan independent campaigns out over the executor.

    Every job owns its RNG, so campaigns never share random state and the
    backends are interchangeable.  Measured matrices are small and
    campaigns are re-run for every analysis pass, so each job resolves
    against the artifact store first (stage ``"geoloc/campaign"``); only
    unmeasured campaigns fan out.

    Under an active fault plan the faulted runner is used instead (probe
    loss and retried timeouts; lost targets are simply absent from the
    returned mapping) and each campaign's degradation is recorded.  The
    cache still applies — an active plan is folded into every stage key,
    so faulted campaigns never shadow clean ones.

    Returns:
        One measurement mapping per job, in input order.
    """
    jobs = list(jobs)
    plan = active_plan()
    store = default_store()
    results: List[Optional[Dict[object, float]]] = [None] * len(jobs)
    keys: List[Optional[str]] = [None] * len(jobs)
    pending: List[int] = []
    for i, job in enumerate(jobs):
        if store is not None:
            keys[i] = _campaign_cache_key(job)
            if keys[i] is not None:
                hit = store.get(keys[i], _CAMPAIGN_MISS, stage="geoloc/campaign")
                if hit is not _CAMPAIGN_MISS:
                    results[i] = _unpack_outcome(jobs[i], hit)
                    continue
        pending.append(i)

    if pending:
        executor = default_executor(executor)
        task = run_campaign_job_faulted if plan is not None else run_campaign_job
        fresh = executor.map(
            task,
            [jobs[i] for i in pending],
            labels=[jobs[i].label for i in pending],
        )
        for i, measured in zip(pending, fresh):
            if store is not None and keys[i] is not None:
                store.put(keys[i], measured, stage="geoloc/campaign")
            results[i] = _unpack_outcome(jobs[i], measured)
    return results


def _unpack_outcome(job: CampaignJob, value) -> Dict[object, float]:
    """Normalise a campaign result, recording any degradation it carries."""
    if not isinstance(value, CampaignOutcome):
        return value
    degradation.record(
        "geoloc/campaign",
        completed=1,
        degraded=1 if value.lost else 0,
        probes_lost=value.lost,
        timeouts=value.timeouts,
        retried=value.retried,
    )
    if value.lost:
        obs.inc("probe.lost", value.lost, stage="geoloc/campaign")
    if value.timeouts:
        obs.inc("probe.timeout", value.timeouts, stage="geoloc/campaign")
    if value.retried:
        obs.inc("retries", value.retried, stage="geoloc/campaign")
    return value.measurements
