"""Server geolocation toolkit (Section V of the paper).

Three geolocation methods, matching the paper's comparison:

* :mod:`repro.geoloc.cbg` — Constraint-Based Geolocation (Gueye et al.,
  ToN 2006), implemented from scratch: per-landmark bestline calibration,
  RTT-to-distance constraints, spherical region intersection, confidence
  radius.  The method the paper adopts.
* :mod:`repro.geoloc.geodb` — an IP-to-location database in the Maxmind
  mould; accurate for ISP space, pins the whole Google AS to Mountain View
  (the failure the paper documents).
* :mod:`repro.geoloc.rdns` — reverse-DNS name parsing with airport codes;
  works on the legacy infrastructure, returns nothing for the new one
  ("DNS reverse lookup is not allowed").

Plus the active-probing plumbing (:mod:`repro.geoloc.probing`) and the
server-to-data-center clustering step (:mod:`repro.geoloc.clustering`).
"""

from repro.geoloc.probing import RttProber
from repro.geoloc.cbg import Bestline, CbgGeolocator, CbgResult
from repro.geoloc.geodb import GeoDatabase, build_reference_geodb
from repro.geoloc.rdns import ReverseDnsTable, build_reverse_dns, infer_city_from_hostname
from repro.geoloc.clustering import DataCenterCluster, ServerMap, cluster_servers

__all__ = [
    "RttProber",
    "Bestline",
    "CbgGeolocator",
    "CbgResult",
    "GeoDatabase",
    "build_reference_geodb",
    "ReverseDnsTable",
    "build_reverse_dns",
    "infer_city_from_hostname",
    "DataCenterCluster",
    "ServerMap",
    "cluster_servers",
]
