"""Physical sanity checks on geolocation claims.

Section V's refutation of the IP-to-location database is a physics
argument: "many of the RTT measurements for the European connections are
too small to be compatible with intercontinental propagation time
constraints".  This module turns that argument into a reusable check: given
a claimed location and a measured RTT from a known vantage, is the claim
physically possible?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.geo.coords import GeoPoint, haversine_km
from repro.net.latency import LatencyModel


@dataclass(frozen=True)
class SanityViolation:
    """One physically impossible location claim.

    Attributes:
        target: Label of the checked target (e.g. the server IP string).
        claimed: The claimed location.
        measured_rtt_ms: The measured RTT from the vantage.
        required_rtt_ms: The minimum RTT physics allows for the claim.
    """

    target: str
    claimed: GeoPoint
    measured_rtt_ms: float
    required_rtt_ms: float

    @property
    def impossibility_factor(self) -> float:
        """How many times too fast the measurement is for the claim."""
        if self.measured_rtt_ms <= 0:
            return float("inf")
        return self.required_rtt_ms / self.measured_rtt_ms


def check_claim(
    vantage: GeoPoint,
    claimed: GeoPoint,
    measured_rtt_ms: float,
    target: str = "",
    slack: float = 1.0,
) -> Optional[SanityViolation]:
    """Check one location claim against one RTT measurement.

    Args:
        vantage: Where the measurement was taken from.
        claimed: The claimed target location.
        measured_rtt_ms: Measured minimum RTT.
        target: Label for reporting.
        slack: Multiplier on the physical bound (1.0 = strict
            speed-of-light-in-fibre; lower values tolerate measurement
            error).

    Returns:
        A :class:`SanityViolation` when the claim is impossible, else
        ``None``.

    Raises:
        ValueError: For non-positive slack.
    """
    if slack <= 0:
        raise ValueError("slack must be positive")
    distance = haversine_km(vantage, claimed)
    required = LatencyModel.ideal_rtt_ms(distance) * slack
    if measured_rtt_ms < required:
        return SanityViolation(
            target=target,
            claimed=claimed,
            measured_rtt_ms=measured_rtt_ms,
            required_rtt_ms=required,
        )
    return None


def audit_claims(
    vantage: GeoPoint,
    claims: Mapping[str, GeoPoint],
    rtts_ms: Mapping[str, float],
    slack: float = 1.0,
) -> List[SanityViolation]:
    """Audit a batch of claims against a ping campaign.

    Targets without both a claim and a measurement are skipped.

    Returns:
        All violations, sorted by impossibility factor (worst first).
    """
    violations: List[SanityViolation] = []
    for target, claimed in claims.items():
        rtt = rtts_ms.get(target)
        if rtt is None:
            continue
        violation = check_claim(vantage, claimed, rtt, target=target, slack=slack)
        if violation is not None:
            violations.append(violation)
    violations.sort(key=lambda v: -v.impossibility_factor)
    return violations


def violation_fraction(
    vantage: GeoPoint,
    claims: Mapping[str, GeoPoint],
    rtts_ms: Mapping[str, float],
    slack: float = 1.0,
) -> float:
    """Fraction of audited claims that are physically impossible.

    Raises:
        ValueError: When nothing can be audited.
    """
    audited = [t for t in claims if t in rtts_ms]
    if not audited:
        raise ValueError("no targets with both a claim and a measurement")
    violations = audit_claims(vantage, claims, rtts_ms, slack=slack)
    return len(violations) / len(audited)
