"""Geolocation-method evaluation harness.

Runs any set of geolocation methods over a common target set and scores
them on answer rate and positional error — the quantitative backbone of
the Section V methodology choice and of the A2 ablation.  Methods are
plugged in as callables so CBG, shortest-ping, the geo database, reverse
DNS, or any future method evaluate under identical conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Tuple

from repro.geo.coords import GeoPoint, haversine_km
from repro.reporting.series import Cdf
from repro.reporting.tables import TextTable

#: A method answers with an estimated position, or ``None`` (no answer).
GeolocateFn = Callable[[str], Optional[GeoPoint]]


@dataclass(frozen=True)
class MethodScore:
    """One method's evaluation outcome.

    Attributes:
        method: Method name.
        targets: Targets offered.
        answered: Targets the method produced an estimate for.
        errors_km: Positional error per answered target.
    """

    method: str
    targets: int
    answered: int
    errors_km: Tuple[float, ...]

    @property
    def answer_rate(self) -> float:
        """Fraction of targets answered."""
        return self.answered / max(1, self.targets)

    @property
    def median_error_km(self) -> float:
        """Median positional error over answered targets.

        Raises:
            ValueError: If nothing was answered.
        """
        if not self.errors_km:
            raise ValueError(f"method {self.method!r} answered nothing")
        ordered = sorted(self.errors_km)
        return ordered[len(ordered) // 2]

    def error_cdf(self) -> Cdf:
        """The error CDF over answered targets.

        Raises:
            ValueError: If nothing was answered.
        """
        return Cdf(self.errors_km)


@dataclass
class EvaluationReport:
    """Scores for every evaluated method over one target set."""

    scores: List[MethodScore] = field(default_factory=list)

    def score(self, method: str) -> MethodScore:
        """Score by method name.

        Raises:
            KeyError: For unknown methods.
        """
        for candidate in self.scores:
            if candidate.method == method:
                return candidate
        raise KeyError(f"no score for method {method!r}")

    def render(self) -> str:
        """Text table of the comparison."""
        table = TextTable(
            ["method", "answered", "answer rate", "median err [km]", "p90 err [km]"],
            title="GEOLOCATION METHOD EVALUATION",
        )
        for score in self.scores:
            if score.errors_km:
                cdf = score.error_cdf()
                median = f"{cdf.median:.0f}"
                p90 = f"{cdf.quantile(0.9):.0f}"
            else:
                median = p90 = "-"
            table.add_row(
                score.method,
                f"{score.answered}/{score.targets}",
                f"{score.answer_rate:.0%}",
                median,
                p90,
            )
        return table.render()


def evaluate_methods(
    methods: Mapping[str, GeolocateFn],
    truth: Mapping[str, GeoPoint],
) -> EvaluationReport:
    """Evaluate methods against ground-truth target positions.

    Args:
        methods: Method name → geolocation callable (takes the target
            label, returns an estimate or ``None``).
        truth: Target label → true position.

    Returns:
        The :class:`EvaluationReport`, methods in input order.

    Raises:
        ValueError: With no targets.
    """
    if not truth:
        raise ValueError("no targets to evaluate on")
    report = EvaluationReport()
    for name, geolocate in methods.items():
        errors: List[float] = []
        answered = 0
        for target, true_point in truth.items():
            estimate = geolocate(target)
            if estimate is None:
                continue
            answered += 1
            errors.append(haversine_km(estimate, true_point))
        report.scores.append(
            MethodScore(
                method=name,
                targets=len(truth),
                answered=answered,
                errors_km=tuple(errors),
            )
        )
    return report
