"""Shortest-Ping geolocation baseline.

The simplest delay-based method (and the classic straw-man CBG is compared
against in Gueye et al.): place the target at the location of the landmark
that measures the smallest RTT to it.  No calibration, no triangulation —
accuracy is bounded by landmark density, and there is no confidence region
at all.  Included to quantify what CBG's constraint intersection buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.geo.coords import GeoPoint
from repro.geo.landmarks import Landmark, LandmarkSet
from repro.geoloc.probing import RttProber
from repro.net.latency import AccessTechnology, Site


@dataclass(frozen=True)
class ShortestPingResult:
    """Outcome of a shortest-ping localisation.

    Attributes:
        estimate: The winning landmark's position.
        landmark_name: The winning landmark.
        rtt_ms: Its measured RTT to the target.
    """

    estimate: GeoPoint
    landmark_name: str
    rtt_ms: float


class ShortestPingGeolocator:
    """Shortest-ping over a landmark set.

    Args:
        landmarks: Landmark population.
        prober: Measurement plumbing.
    """

    def __init__(self, landmarks: LandmarkSet, prober: RttProber):
        if len(landmarks) < 1:
            raise ValueError("need at least one landmark")
        self._landmarks = list(landmarks)
        self._prober = prober

    def _site(self, landmark: Landmark) -> Site:
        return Site(
            key=f"lm:{landmark.name}",
            point=landmark.point,
            access=AccessTechnology.CAMPUS,
        )

    def measure_target(self, target: Site) -> Mapping[str, float]:
        """Probe the target from every landmark."""
        return {
            lm.name: self._prober.measure_ms(self._site(lm), target)
            for lm in self._landmarks
        }

    def geolocate(self, target_rtts: Mapping[str, float]) -> ShortestPingResult:
        """Locate a target from per-landmark RTTs.

        Raises:
            ValueError: With no usable measurements.
        """
        best_name: Optional[str] = None
        best_rtt = float("inf")
        for lm in self._landmarks:
            rtt = target_rtts.get(lm.name)
            if rtt is not None and rtt < best_rtt:
                best_name, best_rtt = lm.name, rtt
        if best_name is None:
            raise ValueError("no landmark measurements supplied")
        winner = next(lm for lm in self._landmarks if lm.name == best_name)
        return ShortestPingResult(
            estimate=winner.point, landmark_name=best_name, rtt_ms=best_rtt
        )

    def geolocate_target(self, target: Site) -> ShortestPingResult:
        """Probe and locate in one step."""
        return self.geolocate(self.measure_target(target))
