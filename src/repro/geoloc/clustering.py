"""Server-to-data-center clustering (Section V, last step).

"Since several servers actually fall in a very similar area, we consider
all the YouTube servers found in all the datasets and aggregate them into
the same 'data center'.  In particular, servers are grouped into the same
data center if they are located in the same city according to CBG.  We note
that all servers with IP addresses in the same /24 subnet are always
aggregated to the same data center."

The implementation exploits the /24 observation for efficiency the way the
authors could have: geolocate one representative address per /24, then
agglomerate /24s whose estimates fall within city distance of each other
(geolocation error is comparable to metro size, so "same city" is a
distance threshold, not an exact string match).  Each cluster is labelled
with the nearest atlas city for reporting.  Everything here is *inference*
from measurements — ground-truth data center identities never enter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.geo.cities import City, WorldAtlas, default_atlas
from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.regions import Continent
from repro.geoloc.cbg import CbgResult
from repro.net.ip import format_ip, slash24_of


@dataclass
class DataCenterCluster:
    """An inferred data center: servers CBG places in the same city.

    Attributes:
        cluster_id: Stable identifier, e.g. ``"cluster-amsterdam"``.
        city: The city the cluster snapped to.
        estimate: Mean CBG estimate over the member /24 representatives.
        confidence_radius_km: Mean CBG confidence radius of the members.
        server_ips: All member server addresses.
    """

    cluster_id: str
    city: City
    estimate: GeoPoint
    confidence_radius_km: float
    server_ips: List[int] = field(default_factory=list)

    @property
    def continent(self) -> Continent:
        """Continent of the inferred city (Table III bucketing)."""
        return self.city.continent

    def __len__(self) -> int:
        return len(self.server_ips)


@dataclass
class ServerMap:
    """The full inference result: address → cluster.

    Attributes:
        clusters: All inferred data centers.
        by_ip: Mapping from server address to its cluster.
        results_by_slash24: The raw CBG result per /24 representative.
    """

    clusters: List[DataCenterCluster]
    by_ip: Dict[int, DataCenterCluster]
    results_by_slash24: Dict[int, CbgResult]

    def cluster_of(self, server_ip: int) -> DataCenterCluster:
        """Cluster of a server address.

        Raises:
            KeyError: For addresses not in the map.
        """
        try:
            return self.by_ip[server_ip]
        except KeyError:
            raise KeyError(f"server {format_ip(server_ip)} was never clustered") from None

    def continent_counts(self, server_ips: Iterable[int]) -> Dict[str, int]:
        """Table III row: server count per continent bucket."""
        counts = {"N. America": 0, "Europe": 0, "Others": 0}
        for ip in server_ips:
            cluster = self.by_ip.get(ip)
            if cluster is None:
                continue
            counts[cluster.continent.table3_bucket()] += 1
        return counts


#: Two /24 estimates closer than this are "in the same city".  /24s of one
#: physical data center measure nearly identical RTTs from every landmark,
#: so their estimates almost coincide — the threshold only needs to absorb
#: probe noise, and staying tight keeps neighbouring metro areas
#: (Amsterdam/Brussels, Zurich/Munich) apart even when CBG error is large.
DEFAULT_MERGE_KM = 80.0


def cluster_servers(
    server_ips: Sequence[int],
    geolocate: Callable[[int], CbgResult],
    atlas: Optional[WorldAtlas] = None,
    merge_km: float = DEFAULT_MERGE_KM,
) -> ServerMap:
    """Cluster server addresses into inferred data centers.

    Args:
        server_ips: All server addresses seen in the traces.
        geolocate: Measurement callback: geolocate one address with CBG.
            Called once per distinct /24.
        atlas: City vocabulary used to *label* clusters.
        merge_km: Same-city distance threshold between /24 estimates.

    Returns:
        The :class:`ServerMap`.

    Raises:
        ValueError: For a non-positive merge threshold.
    """
    if merge_km <= 0:
        raise ValueError("merge_km must be positive")
    if atlas is None:
        atlas = default_atlas()

    by_slash24: Dict[int, List[int]] = {}
    for ip in server_ips:
        by_slash24.setdefault(slash24_of(ip), []).append(ip)

    results: Dict[int, CbgResult] = {}
    # Agglomerate /24s around running centroids.
    groups: List[Dict] = []  # {"centroid": GeoPoint, "results": [...], "ips": [...]}
    for net24 in sorted(by_slash24):
        representative = by_slash24[net24][0]
        result = geolocate(representative)
        results[net24] = result
        best = None
        best_km = merge_km
        for group in groups:
            d = haversine_km(result.estimate, group["centroid"])
            if d < best_km:
                best, best_km = group, d
        if best is None:
            best = {"centroid": result.estimate, "results": [], "ips": []}
            groups.append(best)
        best["results"].append(result)
        best["ips"].extend(by_slash24[net24])
        lats = [r.estimate.lat for r in best["results"]]
        lons = [r.estimate.lon for r in best["results"]]
        best["centroid"] = GeoPoint(sum(lats) / len(lats), sum(lons) / len(lons))

    clusters: List[DataCenterCluster] = []
    by_ip: Dict[int, DataCenterCluster] = {}
    used_ids: Dict[str, int] = {}
    for group in sorted(groups, key=lambda g: (g["centroid"].lat, g["centroid"].lon)):
        city = atlas.nearest(group["centroid"])
        if city is None:
            continue
        member_results = group["results"]
        mean_conf = sum(r.confidence_radius_km for r in member_results) / len(member_results)
        slug = city.name.lower().replace(" ", "-").replace(".", "")
        count = used_ids.get(slug, 0)
        used_ids[slug] = count + 1
        cluster_id = f"cluster-{slug}" if count == 0 else f"cluster-{slug}-{count + 1}"
        cluster = DataCenterCluster(
            cluster_id=cluster_id,
            city=city,
            estimate=group["centroid"],
            confidence_radius_km=mean_conf,
            server_ips=sorted(group["ips"]),
        )
        clusters.append(cluster)
        for ip in cluster.server_ips:
            by_ip[ip] = cluster
    return ServerMap(clusters=clusters, by_ip=by_ip, results_by_slash24=results)
