"""Reverse-DNS geolocation baseline.

Adhikari et al. located the *old* YouTube infrastructure by parsing data
center identifiers out of server hostnames.  The paper notes "this approach
is not applicable to the new YouTube infrastructure, where DNS reverse
lookup is not allowed" (Section V).  We model both halves: legacy servers
get airport-coded PTR names; Google-AS servers have no PTR record at all.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.cdn.datacenter import DataCenter
from repro.geo.cities import City, WorldAtlas, default_atlas

#: IATA-style codes for the cities that host legacy infrastructure (plus a
#: few extras so the parser is useful beyond the built-in scenarios).
CITY_AIRPORT_CODES: Dict[str, str] = {
    "Amsterdam": "ams",
    "London": "lhr",
    "Mountain View": "sjc",
    "Paris": "cdg",
    "Frankfurt": "fra",
    "New York": "lga",
    "Chicago": "ord",
    "Dallas": "dfw",
    "Ashburn": "iad",
    "Tokyo": "nrt",
    "Sydney": "syd",
    "Sao Paulo": "gru",
    "Miami": "mia",
    "Seattle": "sea",
    "Milan": "mxp",
}

_CODE_TO_CITY = {code: name for name, code in CITY_AIRPORT_CODES.items()}


@dataclass
class ReverseDnsTable:
    """PTR records of the simulated world.

    Attributes:
        records: Mapping from integer IPv4 to PTR hostname.  Addresses with
            no entry behave like the new infrastructure: NXDOMAIN.
    """

    records: Dict[int, str] = field(default_factory=dict)

    def lookup(self, ip: int) -> Optional[str]:
        """PTR hostname for an address, or ``None`` (NXDOMAIN)."""
        return self.records.get(ip)

    def __len__(self) -> int:
        return len(self.records)


def build_reverse_dns(legacy_dcs: Iterable[DataCenter]) -> ReverseDnsTable:
    """PTR records for the legacy fleets; nothing for the new infrastructure.

    Legacy names follow the old YouTube convention of embedding the site's
    airport code, e.g. ``v03.lscache-ams.youtube.com``.

    Raises:
        KeyError: If a legacy data center's city has no airport code.
    """
    table = ReverseDnsTable()
    for dc in legacy_dcs:
        code = CITY_AIRPORT_CODES.get(dc.city.name)
        if code is None:
            raise KeyError(f"no airport code for legacy city {dc.city.name!r}")
        for server in dc.servers:
            shard = zlib.crc32(str(server.ip).encode()) % 24
            table.records[server.ip] = f"v{shard:02d}.lscache-{code}.youtube.com"
    return table


def infer_city_from_hostname(
    hostname: str, atlas: Optional[WorldAtlas] = None
) -> Optional[City]:
    """Extract the location hint from a PTR hostname, if any.

    Args:
        hostname: A PTR name such as ``"v03.lscache-ams.youtube.com"``.
        atlas: City atlas (defaults to the shared one).

    Returns:
        The matching :class:`City`, or ``None`` when no known code appears.
    """
    if atlas is None:
        atlas = default_atlas()
    for label in hostname.lower().split("."):
        for chunk in label.replace("_", "-").split("-"):
            city_name = _CODE_TO_CITY.get(chunk)
            if city_name is not None and city_name in atlas:
                return atlas.get(city_name)
    return None
