"""Constraint-Based Geolocation (CBG), from scratch.

Implements the algorithm of Gueye, Ziviani, Crovella and Fdida
("Constraint-based Geolocation of Internet Hosts", IEEE/ACM ToN 2006) that
the paper uses to locate YouTube servers (Section V):

1. **Self-calibration.**  Each landmark measures RTTs to all other
   landmarks, whose positions it knows.  From the (distance, RTT) cloud it
   fits its *bestline* — the line lying at or below every point, with slope
   no gentler than the speed-of-light-in-fibre bound.  The bestline converts
   a measured RTT into the loosest *over*-estimate of distance consistent
   with that landmark's observed paths.

2. **Multilateration.**  For a target, each landmark's measured RTT yields a
   constraint circle (centre = landmark, radius = bestline distance).  The
   target must lie in the intersection of all circles.

3. **Region estimation.**  The intersection is sampled on a sunflower grid
   laid over the tightest circle; the estimate is the spherical centroid of
   the feasible samples, and the *confidence radius* is the radius of the
   disc with the same area as the feasible region — the quantity whose CDF
   the paper reports in Figure 3.

Constraints only ever over-estimate distance (detours and queueing add
delay), so the true location is in the region; when noise makes the region
empty the solver relaxes all radii by 5 % and retries a few times, then
falls back to the tightest landmark's neighbourhood.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.faults import report as degradation
from repro.faults.plan import active_plan
from repro.geo.coords import GeoPoint, destination_point, haversine_km, haversine_km_many
from repro.geo.landmarks import Landmark, LandmarkSet
from repro.geoloc.probing import RttProber
from repro.net.latency import AccessTechnology, C_FIBER_KM_PER_MS, Site

#: Minimum bestline slope: RTT grows at least at the fibre propagation rate.
MIN_SLOPE_MS_PER_KM = 2.0 / C_FIBER_KM_PER_MS

#: Never let a constraint radius collapse below this (absorbs the fixed
#: access/processing latency difference between calibration and target
#: paths).
MIN_RADIUS_KM = 30.0

#: Sunflower samples laid over the tightest constraint circle.
_REGION_SAMPLES = 512

#: Relaxation schedule when the intersection comes up empty.
_RELAX_FACTOR = 1.05
_RELAX_ROUNDS = 4


@dataclass(frozen=True)
class Bestline:
    """A landmark's calibrated RTT-to-distance conversion.

    Attributes:
        slope_ms_per_km: Bestline slope (≥ the fibre bound).
        intercept_ms: Bestline intercept (≥ 0).
    """

    slope_ms_per_km: float
    intercept_ms: float

    def distance_km(self, rtt_ms: float) -> float:
        """The constraint radius implied by a measured RTT."""
        raw = (rtt_ms - self.intercept_ms) / self.slope_ms_per_km
        return max(MIN_RADIUS_KM, raw)


def fit_bestline(distances_km: Sequence[float], rtts_ms: Sequence[float]) -> Bestline:
    """Fit the bestline under a (distance, RTT) point cloud.

    The bestline is the line below all points whose slope is at least the
    fibre bound, chosen (as in the CBG paper) to minimise the total vertical
    distance to the cloud.  Candidates are the edges of the cloud's lower
    convex hull, clamped to the slope bound.

    Raises:
        ValueError: With fewer than 2 calibration points.
    """
    if len(distances_km) != len(rtts_ms):
        raise ValueError("distances and rtts must align")
    if len(distances_km) < 2:
        raise ValueError("need at least 2 calibration points")
    pts = sorted(zip(distances_km, rtts_ms))
    xs = np.array([p[0] for p in pts])
    ys = np.array([p[1] for p in pts])

    hull = _lower_hull(pts)
    candidates: List[Tuple[float, float]] = []
    for (x1, y1), (x2, y2) in zip(hull, hull[1:]):
        if x2 <= x1:
            continue
        slope = (y2 - y1) / (x2 - x1)
        if slope < MIN_SLOPE_MS_PER_KM:
            continue
        intercept = y1 - slope * x1
        candidates.append((slope, max(0.0, intercept)))
    # Always include the slope-bound fallback: the steepest line at the
    # fibre slope that stays below every point.
    fallback_intercept = float(np.min(ys - MIN_SLOPE_MS_PER_KM * xs))
    candidates.append((MIN_SLOPE_MS_PER_KM, max(0.0, fallback_intercept)))

    best: Optional[Tuple[float, float, float]] = None  # (cost, slope, intercept)
    for slope, intercept in candidates:
        predicted = slope * xs + intercept
        if np.any(predicted > ys + 1e-9):
            # Clamping the intercept pushed the line above a point; lower it.
            intercept = float(np.min(ys - slope * xs))
            if intercept < 0.0:
                continue
            predicted = slope * xs + intercept
        cost = float(np.sum(ys - predicted))
        if best is None or cost < best[0]:
            best = (cost, slope, intercept)
    if best is None:
        # Every candidate required a negative intercept: fall back to the
        # fibre slope through the origin.
        return Bestline(slope_ms_per_km=MIN_SLOPE_MS_PER_KM, intercept_ms=0.0)
    return Bestline(slope_ms_per_km=best[1], intercept_ms=best[2])


def _lower_hull(points: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Lower convex hull of points sorted by x (Andrew's monotone chain)."""
    hull: List[Tuple[float, float]] = []
    for p in points:
        while len(hull) >= 2:
            (x1, y1), (x2, y2) = hull[-2], hull[-1]
            if (x2 - x1) * (p[1] - y1) - (y2 - y1) * (p[0] - x1) <= 0:
                hull.pop()
            else:
                break
        hull.append(p)
    return hull


@dataclass
class CbgResult:
    """Outcome of geolocating one target.

    Attributes:
        estimate: Estimated position (centroid of the feasible region).
        confidence_radius_km: Radius of the disc with the feasible region's
            area (Figure 3's quantity).
        feasible: Whether a non-empty intersection was found without
            falling back.
        constraints_used: Number of landmark constraints applied.
    """

    estimate: GeoPoint
    confidence_radius_km: float
    feasible: bool
    constraints_used: int


class CbgGeolocator:
    """A calibrated CBG instance over a landmark set.

    Args:
        landmarks: The landmark population (positions known).
        prober: Measurement plumbing (shared delay model underneath).
    """

    def __init__(self, landmarks: LandmarkSet, prober: RttProber):
        if len(landmarks) < 4:
            raise ValueError("CBG needs at least 4 landmarks")
        self._landmarks = list(landmarks)
        self._prober = prober
        self._bestlines: Dict[str, Bestline] = {}
        self._calibrate()

    @property
    def landmarks(self) -> List[Landmark]:
        """The landmark population."""
        return list(self._landmarks)

    def bestline(self, landmark_name: str) -> Bestline:
        """The calibrated bestline of one landmark.

        Raises:
            KeyError: For unknown landmark names.
        """
        return self._bestlines[landmark_name]

    def _landmark_site(self, landmark: Landmark) -> Site:
        return Site(
            key=f"lm:{landmark.name}",
            point=landmark.point,
            access=AccessTechnology.CAMPUS,
        )

    def _calibrate(self) -> None:
        """Fit every landmark's bestline from inter-landmark RTTs."""
        sites = {lm.name: self._landmark_site(lm) for lm in self._landmarks}
        points = {lm.name: lm.point for lm in self._landmarks}
        for lm in self._landmarks:
            distances: List[float] = []
            rtts: List[float] = []
            for other in self._landmarks:
                if other.name == lm.name:
                    continue
                distances.append(haversine_km(points[lm.name], points[other.name]))
                rtts.append(self._prober.measure_ms(sites[lm.name], sites[other.name]))
            self._bestlines[lm.name] = fit_bestline(distances, rtts)

    # ------------------------------------------------------------- geolocate

    def measure_target(self, target: Site) -> Dict[str, float]:
        """Probe the target from every landmark.

        Under an active fault plan, individual landmark probes can be
        lost (the paper's PlanetLab campaigns tolerated exactly this);
        lost landmarks are simply absent from the returned mapping, and
        at least four survivors are always kept so multilateration stays
        possible.  Loss decisions are keyed on ``(target key, landmark
        name)`` — deterministic and order-independent.
        """
        plan = active_plan()
        rtts: Dict[str, float] = {}
        lost = 0
        may_drop = (
            len(self._landmarks) - 4 if plan is not None and plan.probe_loss else 0
        )
        for lm in self._landmarks:
            if may_drop > 0 and plan.decide(
                plan.probe_loss, "cbg/loss", target.key, lm.name
            ):
                lost += 1
                may_drop -= 1
                continue
            rtts[lm.name] = self._prober.measure_ms(self._landmark_site(lm), target)
        if lost:
            degradation.record(
                "geoloc/cbg", degraded=1, probes_lost=lost
            )
        return rtts

    def geolocate(
        self,
        target_rtts: Mapping[str, float],
        expected_constraints: Optional[int] = None,
    ) -> CbgResult:
        """Locate a target from per-landmark RTT measurements.

        Args:
            target_rtts: Mapping landmark name → measured min RTT (ms);
                landmarks absent from the mapping contribute no constraint.
            expected_constraints: How many constraints a loss-free
                measurement would have produced.  When more than were
                actually available, the confidence radius is widened by
                ``sqrt(expected / used)`` — fewer landmarks mean a larger
                feasible region, exactly the behaviour the paper reports
                for sparse landmark sets.

        Returns:
            The :class:`CbgResult`.

        Raises:
            ValueError: If fewer than 3 constraints are available.
        """
        centers: List[GeoPoint] = []
        radii: List[float] = []
        for lm in self._landmarks:
            rtt = target_rtts.get(lm.name)
            if rtt is None:
                continue
            radius = self._bestlines[lm.name].distance_km(rtt)
            centers.append(lm.point)
            radii.append(radius)
        if len(centers) < 3:
            raise ValueError("CBG needs at least 3 constraints")
        widen = 1.0
        if expected_constraints is not None and expected_constraints > len(centers):
            widen = math.sqrt(expected_constraints / len(centers))

        radii_arr = np.array(radii)
        for _ in range(_RELAX_ROUNDS):
            result = self._intersect(centers, radii_arr)
            if result is not None:
                estimate, confidence = result
                return CbgResult(
                    estimate=estimate,
                    confidence_radius_km=confidence * widen,
                    feasible=True,
                    constraints_used=len(centers),
                )
            radii_arr = radii_arr * _RELAX_FACTOR

        # Fallback: the tightest constraint's neighbourhood.
        tightest = int(np.argmin(radii_arr))
        return CbgResult(
            estimate=centers[tightest],
            confidence_radius_km=float(radii_arr[tightest]) * widen,
            feasible=False,
            constraints_used=len(centers),
        )

    def geolocate_target(self, target: Site) -> CbgResult:
        """Probe and locate a target in one step.

        Passes the landmark count as the expected constraint count, so a
        measurement degraded by probe loss yields a correspondingly wider
        confidence region (loss-free measurements are unaffected: the
        widening factor is exactly 1).
        """
        return self.geolocate(
            self.measure_target(target),
            expected_constraints=len(self._landmarks),
        )

    def _intersect(
        self, centers: Sequence[GeoPoint], radii: np.ndarray
    ) -> Optional[Tuple[GeoPoint, float]]:
        """Sample the intersection of the constraint discs.

        Returns:
            ``(centroid, confidence_radius_km)`` or ``None`` if the sampled
            intersection is empty.
        """
        tightest = int(np.argmin(radii))
        anchor = centers[tightest]
        anchor_radius = float(radii[tightest])
        lats, lons = _sunflower(anchor, anchor_radius, _REGION_SAMPLES)

        mask = np.ones(lats.shape[0], dtype=bool)
        for center, radius in zip(centers, radii):
            if not mask.any():
                return None
            distances = haversine_km_many(center, lats, lons)
            mask &= distances <= radius
        if not mask.any():
            return None
        feasible_lats = lats[mask]
        feasible_lons = lons[mask]
        centroid = _spherical_centroid(feasible_lats, feasible_lons)
        area_fraction = feasible_lats.shape[0] / lats.shape[0]
        confidence = anchor_radius * math.sqrt(area_fraction)
        return centroid, confidence


def _sunflower(center: GeoPoint, radius_km: float, count: int) -> Tuple[np.ndarray, np.ndarray]:
    """A sunflower-spiral sample of the disc around ``center``."""
    golden = math.pi * (3.0 - math.sqrt(5.0))
    lats = np.empty(count)
    lons = np.empty(count)
    for i in range(count):
        r = radius_km * math.sqrt((i + 0.5) / count)
        theta = math.degrees(golden * i) % 360.0
        p = destination_point(center, theta, r)
        lats[i] = p.lat
        lons[i] = p.lon
    return lats, lons


def _spherical_centroid(lats: np.ndarray, lons: np.ndarray) -> GeoPoint:
    """Centroid of points on the sphere (3-D mean projected back)."""
    lat_r = np.radians(lats)
    lon_r = np.radians(lons)
    x = np.cos(lat_r) * np.cos(lon_r)
    y = np.cos(lat_r) * np.sin(lon_r)
    z = np.sin(lat_r)
    mx, my, mz = float(np.mean(x)), float(np.mean(y)), float(np.mean(z))
    norm = math.sqrt(mx * mx + my * my + mz * mz)
    if norm == 0.0:
        return GeoPoint(0.0, 0.0)
    lat = math.degrees(math.asin(mz / norm))
    lon = math.degrees(math.atan2(my, mx))
    return GeoPoint(lat, lon)
