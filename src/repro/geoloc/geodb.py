"""IP-to-location database baseline (the Maxmind failure mode).

Section V: "according to the Maxmind database, all YouTube content servers
found in the datasets should be located in Mountain View, California, USA"
— which the RTT measurements immediately falsify.  This module builds a
database with exactly that behaviour: correct for ordinary ISP space
(databases are "fairly accurate for IPs belonging to commercial ISPs"),
useless for the internals of a large corporate network whose prefixes are
all registered at headquarters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.geo.cities import City, WorldAtlas, default_atlas
from repro.net.asn import AsRegistry, GOOGLE_ASN, YOUTUBE_EU_ASN
from repro.net.ip import IPv4Network


@dataclass(frozen=True)
class GeoDbEntry:
    """One database row: a prefix and its claimed location."""

    network: IPv4Network
    city: City


class GeoDatabase:
    """Longest-prefix-match IP-to-city database."""

    def __init__(self) -> None:
        self._by_len: Dict[int, Dict[int, City]] = {}
        self._lens_desc: List[int] = []

    def add(self, network: IPv4Network, city: City) -> None:
        """Register a prefix's claimed location (overwrites duplicates)."""
        bucket = self._by_len.setdefault(network.prefix_len, {})
        bucket[network.network] = city
        if network.prefix_len not in self._lens_desc:
            self._lens_desc.append(network.prefix_len)
            self._lens_desc.sort(reverse=True)

    def lookup(self, ip: int) -> Optional[City]:
        """The claimed city of an address, or ``None`` when uncovered."""
        for plen in self._lens_desc:
            mask = 0 if plen == 0 else ((1 << 32) - 1) ^ ((1 << (32 - plen)) - 1)
            city = self._by_len[plen].get(ip & mask)
            if city is not None:
                return city
        return None

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_len.values())


def build_reference_geodb(
    registry: AsRegistry,
    atlas: Optional[WorldAtlas] = None,
    corporate_asns: Tuple[int, ...] = (GOOGLE_ASN, YOUTUBE_EU_ASN),
    headquarters_city: str = "Mountain View",
) -> GeoDatabase:
    """Build the Maxmind-style database for a simulated world.

    Every prefix announced by a *corporate* AS is pinned to the corporation's
    headquarters (the documented failure); everything else the registry
    knows about is left uncovered here — ISP client space is added by
    callers that know the true PoP locations, mirroring how commercial
    databases really are accurate for access networks.

    Args:
        registry: The world's AS registry.
        atlas: City atlas (defaults to the shared one).
        corporate_asns: ASes whose space is pinned to headquarters.
        headquarters_city: Where the database claims all corporate IPs live.

    Returns:
        The populated :class:`GeoDatabase`.
    """
    if atlas is None:
        atlas = default_atlas()
    hq = atlas.get(headquarters_city)
    db = GeoDatabase()
    for asn in corporate_asns:
        for network in registry.announced_networks(asn):
            db.add(network, hq)
    return db


def add_isp_entries(db: GeoDatabase, networks, city: City) -> int:
    """Register accurate entries for an access ISP's customer space.

    The paper notes that location databases "are fairly accurate for IPs
    belonging to commercial ISPs" — it is the corporate-infrastructure
    space they get wrong.  Use this to model that asymmetry: feed it the
    vantage point's client blocks and their true PoP city.

    Args:
        db: The database to extend.
        networks: Iterable of :class:`~repro.net.ip.IPv4Network` client
            blocks.
        city: The PoP's true city.

    Returns:
        Number of entries added.
    """
    count = 0
    for network in networks:
        db.add(network, city)
        count += 1
    return count
