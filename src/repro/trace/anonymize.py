"""Prefix-preserving trace anonymisation.

The reason studies like this one cannot share their raw data is that flow
logs identify customers.  The standard remedy is Crypto-PAn-style
*prefix-preserving* address anonymisation: a keyed bijection on IPv4
addresses such that two addresses share a k-bit prefix **iff** their
anonymised forms share a k-bit prefix.  That property keeps every analysis
in this package meaningful on anonymised logs: /24 server aggregation,
subnet attribution (Figure 12), per-client statistics — all survive,
while real addresses do not.

The implementation follows the Crypto-PAn construction with HMAC-SHA256 as
the keyed function: bit *i* of the output flips based on a pseudorandom
function of the *i*-bit input prefix.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Iterable, List

from repro.trace.records import FlowRecord


class PrefixPreservingAnonymizer:
    """A keyed, prefix-preserving bijection on IPv4 addresses.

    Args:
        key: Secret key (any bytes; keep it if you ever need to map
            follow-up traces consistently).

    The mapping is deterministic for a key, bijective on the full 32-bit
    space, and prefix-preserving: for any two addresses and any k,
    ``a >> (32-k) == b >> (32-k)`` iff the anonymised pair agree on their
    top k bits.
    """

    def __init__(self, key: bytes):
        if not key:
            raise ValueError("anonymisation key must not be empty")
        self._key = key
        self._cache: Dict[int, int] = {}

    def _flip_bit(self, prefix: int, length: int) -> int:
        """Pseudorandom bit decided by the ``length``-bit prefix."""
        message = length.to_bytes(1, "big") + prefix.to_bytes(4, "big")
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        return digest[0] & 1

    def anonymize_ip(self, ip: int) -> int:
        """Anonymise one address.

        Raises:
            ValueError: For out-of-range inputs.
        """
        if not 0 <= ip < (1 << 32):
            raise ValueError(f"IPv4 address out of range: {ip!r}")
        cached = self._cache.get(ip)
        if cached is not None:
            return cached
        out = 0
        for i in range(32):
            # The i-bit prefix of the input decides whether output bit i
            # (from the top) flips relative to the input bit.
            prefix = ip >> (32 - i) if i > 0 else 0
            input_bit = (ip >> (31 - i)) & 1
            out = (out << 1) | (input_bit ^ self._flip_bit(prefix, i))
        self._cache[ip] = out
        return out

    def anonymize_record(self, record: FlowRecord) -> FlowRecord:
        """Anonymise one flow record (addresses only; metrics unchanged)."""
        return FlowRecord(
            src_ip=self.anonymize_ip(record.src_ip),
            dst_ip=self.anonymize_ip(record.dst_ip),
            num_bytes=record.num_bytes,
            t_start=record.t_start,
            t_end=record.t_end,
            video_id=record.video_id,
            resolution=record.resolution,
        )

    def anonymize_records(self, records: Iterable[FlowRecord]) -> List[FlowRecord]:
        """Anonymise a batch of records."""
        return [self.anonymize_record(r) for r in records]


def shared_prefix_bits(a: int, b: int) -> int:
    """Length of the common prefix of two 32-bit addresses."""
    diff = a ^ b
    if diff == 0:
        return 32
    return 32 - diff.bit_length()


def verify_prefix_preservation(
    anonymizer: PrefixPreservingAnonymizer, addresses: Iterable[int]
) -> bool:
    """Check the prefix-preservation property over a sample (for tests and
    for auditors of a released trace)."""
    pairs = list(addresses)
    mapped = [anonymizer.anonymize_ip(ip) for ip in pairs]
    for i in range(len(pairs)):
        for j in range(i + 1, len(pairs)):
            if shared_prefix_bits(pairs[i], pairs[j]) != shared_prefix_bits(
                mapped[i], mapped[j]
            ):
                return False
    return True
