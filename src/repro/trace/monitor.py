"""The Tstat-like passive edge monitor.

Sits at the vantage point's edge, observes every flow the hosted clients
exchange with the outside, classifies YouTube video traffic and appends
flow records.  Classification fidelity is modelled too: a tiny fraction of
flows is missed (DPI on sampled/encrypted/teardown-truncated connections is
never perfect), so analysis code cannot assume it sees literally every flow
of a session.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional

from repro.cdn.cluster import FlowEvent
from repro.net.topology import VantagePoint
from repro.trace.records import Dataset, FlowRecord


class EdgeMonitor:
    """Collects a :class:`~repro.trace.records.Dataset` at one vantage point.

    Args:
        vantage: The monitored network.
        miss_probability: Chance an individual flow escapes classification.
        seed: RNG seed for the miss process.
        sink: Live-emit mode — classified records are handed to this
            callable instead of being retained, so a streaming consumer
            sees them with bounded memory.  The miss RNG is consumed
            identically either way, which is what keeps a streamed run
            byte-identical to a batch run of the same world.  A sinked
            monitor cannot :meth:`finish`.
    """

    def __init__(
        self,
        vantage: VantagePoint,
        miss_probability: float = 0.002,
        seed: int = 0,
        sink: Optional[Callable[[FlowRecord], None]] = None,
    ):
        if not 0.0 <= miss_probability < 1.0:
            raise ValueError("miss_probability must be in [0, 1)")
        self._vantage = vantage
        self._miss_probability = miss_probability
        self._rng = random.Random(seed)
        self._records: List[FlowRecord] = []
        self._sink = sink
        self._recorded = 0
        self.observed = 0
        self.missed = 0

    def observe(self, event: FlowEvent) -> Optional[FlowRecord]:
        """Observe one flow crossing the edge; record it unless missed."""
        self.observed += 1
        if self._miss_probability and self._rng.random() < self._miss_probability:
            self.missed += 1
            return None
        record = FlowRecord(
            src_ip=event.client_ip,
            dst_ip=event.server_ip,
            num_bytes=event.num_bytes,
            t_start=event.t_start,
            t_end=event.t_end,
            video_id=event.video_id,
            resolution=event.resolution,
        )
        self._recorded += 1
        if self._sink is not None:
            self._sink(record)
        else:
            self._records.append(record)
        return record

    def observe_all(self, events: Iterable[FlowEvent]) -> None:
        """Observe a batch of flows."""
        for event in events:
            self.observe(event)

    def finish(self, name: str, duration_s: float) -> Dataset:
        """Close collection and return the dataset (records time-sorted).

        Raises:
            RuntimeError: For a sinked (live-emit) monitor, which retains
                no records to assemble a dataset from.
        """
        if self._sink is not None:
            raise RuntimeError("a sinked monitor retains no records; consume its stream instead")
        self._records.sort(key=lambda r: (r.t_start, r.t_end))
        return Dataset(
            name=name,
            vantage=self._vantage,
            records=list(self._records),
            duration_s=duration_s,
        )

    @property
    def record_count(self) -> int:
        """Records collected (or emitted to the sink) so far."""
        return self._recorded
