"""Flow-log text I/O.

Tab-separated, one flow per line, with a commented header — close to the
Tstat log format the paper's datasets came in.  Round-trips exactly through
:func:`write_flow_log` / :func:`read_flow_log`.

Ingestion degrades gracefully: real Tstat logs arrive with the occasional
garbled or truncated line (partial writes, log rotation races), so the
readers accept ``on_error="skip"`` — malformed lines are dropped and
counted instead of aborting the study.  An active
:class:`~repro.faults.plan.FaultPlan` injects exactly that failure mode
(``line_garble``): deterministically chosen lines are truncated
mid-parse, then skipped and recorded as degradation regardless of
``on_error`` (the injection layer owns the faults it creates; genuinely
malformed input still raises under the default strict mode).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from repro.faults import report as degradation
from repro.faults.plan import FaultPlan, active_plan
from repro.net.ip import format_ip, parse_ip
from repro.trace.records import FlowRecord

_HEADER = "#src_ip\tdst_ip\tbytes\tt_start\tt_end\tvideo_id\tresolution"
_NUM_FIELDS = 7


def format_record(record: FlowRecord) -> str:
    """One log line for a flow record.

    Timestamps use Python's shortest-roundtrip float repr, so a written
    log parses back to bit-identical records.
    """
    return (
        f"{format_ip(record.src_ip)}\t{format_ip(record.dst_ip)}\t{record.num_bytes}\t"
        f"{record.t_start!r}\t{record.t_end!r}\t{record.video_id}\t{record.resolution}"
    )


def parse_record(line: str) -> FlowRecord:
    """Parse one log line.

    Raises:
        ValueError: On malformed lines.
    """
    fields = line.rstrip("\n").split("\t")
    if len(fields) != _NUM_FIELDS:
        raise ValueError(f"expected {_NUM_FIELDS} fields, got {len(fields)}: {line!r}")
    return FlowRecord(
        src_ip=parse_ip(fields[0]),
        dst_ip=parse_ip(fields[1]),
        num_bytes=int(fields[2]),
        t_start=float(fields[3]),
        t_end=float(fields[4]),
        video_id=fields[5],
        resolution=fields[6],
    )


def write_flow_log(records: Iterable[FlowRecord], path: Union[str, Path]) -> int:
    """Write records to a flow-log file.

    Returns:
        Number of records written.
    """
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write(_HEADER + "\n")
        for record in records:
            handle.write(format_record(record) + "\n")
            count += 1
    return count


def _ingest_iter(
    lines: Iterable[str], source: str, on_error: str
) -> Iterator[FlowRecord]:
    """Parse data lines one at a time, applying injection and error policy.

    The generator behind both the materialising readers and the streaming
    :func:`iter_flow_log`: records are yielded as parsed, so a consumer
    holding one at a time runs in constant memory.  Skipped-line
    degradation is recorded when the generator is exhausted (or closed).

    Args:
        lines: Raw log lines (comments/blanks included).
        source: Stable source label for injection decisions (file name or
            ``"<string>"``), so the same plan garbles the same lines of
            the same log on every run.
        on_error: ``"raise"`` (default strict mode) or ``"skip"``.

    Raises:
        ValueError: On malformed lines under ``on_error="raise"``, or for
            an unknown ``on_error``.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    plan: Optional[FaultPlan] = active_plan()
    skipped = 0
    try:
        for index, line in enumerate(lines):
            if not line.strip() or line.startswith("#"):
                continue
            injected = plan is not None and plan.decide(
                plan.line_garble, "logio/garble", source, str(index)
            )
            if injected:
                line = line.rstrip("\n")[: max(0, len(line) // 2)]
            try:
                record = parse_record(line)
            except ValueError:
                if injected or on_error == "skip":
                    skipped += 1
                    continue
                raise
            yield record
    finally:
        if skipped:
            degradation.record("trace/logio", degraded=1, skipped=skipped)


def _ingest(
    lines: Iterable[str], source: str, on_error: str
) -> List[FlowRecord]:
    """Materialised form of :func:`_ingest_iter` (see there)."""
    return list(_ingest_iter(lines, source, on_error))


def read_flow_log(
    path: Union[str, Path], on_error: str = "raise"
) -> List[FlowRecord]:
    """Read a flow-log file back into records (comments skipped).

    Args:
        path: The log file.
        on_error: ``"raise"`` aborts on the first malformed line;
            ``"skip"`` drops malformed lines and records them as
            degradation.
    """
    with open(path, "r", encoding="ascii") as handle:
        return _ingest(handle, Path(path).name, on_error)


def iter_flow_log(
    path: Union[str, Path], on_error: str = "raise"
) -> Iterator[FlowRecord]:
    """Stream a flow-log file record by record (constant memory).

    The streaming ingestion path's file source: parses the same lines,
    applies the same ``line_garble`` injection under the same labels, and
    records the same degradation as :func:`read_flow_log` — it just never
    holds more than one record.

    Args:
        path: The log file.
        on_error: ``"raise"`` or ``"skip"`` (see :func:`read_flow_log`).
    """
    with open(path, "r", encoding="ascii") as handle:
        yield from _ingest_iter(handle, Path(path).name, on_error)


def dumps(records: Iterable[FlowRecord]) -> str:
    """Render records to a string (used by tests and examples)."""
    buffer = io.StringIO()
    buffer.write(_HEADER + "\n")
    for record in records:
        buffer.write(format_record(record) + "\n")
    return buffer.getvalue()


def loads(text: str, on_error: str = "raise") -> List[FlowRecord]:
    """Parse records from a string (see :func:`read_flow_log`)."""
    return _ingest(text.splitlines(), "<string>", on_error)
