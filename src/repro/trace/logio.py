"""Flow-log text I/O.

Tab-separated, one flow per line, with a commented header — close to the
Tstat log format the paper's datasets came in.  Round-trips exactly through
:func:`write_flow_log` / :func:`read_flow_log`.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, Union

from repro.net.ip import format_ip, parse_ip
from repro.trace.records import FlowRecord

_HEADER = "#src_ip\tdst_ip\tbytes\tt_start\tt_end\tvideo_id\tresolution"
_NUM_FIELDS = 7


def format_record(record: FlowRecord) -> str:
    """One log line for a flow record.

    Timestamps use Python's shortest-roundtrip float repr, so a written
    log parses back to bit-identical records.
    """
    return (
        f"{format_ip(record.src_ip)}\t{format_ip(record.dst_ip)}\t{record.num_bytes}\t"
        f"{record.t_start!r}\t{record.t_end!r}\t{record.video_id}\t{record.resolution}"
    )


def parse_record(line: str) -> FlowRecord:
    """Parse one log line.

    Raises:
        ValueError: On malformed lines.
    """
    fields = line.rstrip("\n").split("\t")
    if len(fields) != _NUM_FIELDS:
        raise ValueError(f"expected {_NUM_FIELDS} fields, got {len(fields)}: {line!r}")
    return FlowRecord(
        src_ip=parse_ip(fields[0]),
        dst_ip=parse_ip(fields[1]),
        num_bytes=int(fields[2]),
        t_start=float(fields[3]),
        t_end=float(fields[4]),
        video_id=fields[5],
        resolution=fields[6],
    )


def write_flow_log(records: Iterable[FlowRecord], path: Union[str, Path]) -> int:
    """Write records to a flow-log file.

    Returns:
        Number of records written.
    """
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write(_HEADER + "\n")
        for record in records:
            handle.write(format_record(record) + "\n")
            count += 1
    return count


def read_flow_log(path: Union[str, Path]) -> List[FlowRecord]:
    """Read a flow-log file back into records (comments skipped)."""
    records: List[FlowRecord] = []
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            if not line.strip() or line.startswith("#"):
                continue
            records.append(parse_record(line))
    return records


def dumps(records: Iterable[FlowRecord]) -> str:
    """Render records to a string (used by tests and examples)."""
    buffer = io.StringIO()
    buffer.write(_HEADER + "\n")
    for record in records:
        buffer.write(format_record(record) + "\n")
    return buffer.getvalue()


def loads(text: str) -> List[FlowRecord]:
    """Parse records from a string."""
    records: List[FlowRecord] = []
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        records.append(parse_record(line))
    return records
