"""Columnar flow tables: the numpy kernel layer behind the analysis hot path.

The analysis modules (:mod:`repro.core.sessions`, :mod:`repro.core.flows`,
:mod:`repro.core.preferred`, :mod:`repro.core.hotspots`,
:mod:`repro.core.nonpreferred`, :mod:`repro.core.summary`) are written as
record-at-a-time Python over :class:`~repro.trace.records.FlowRecord`
dataclasses — an executable spec of the paper's Section VI methodology.  At
higher ``--scale`` that spec becomes the bottleneck: a cold ``repro study``
spends most of its time iterating flows in the interpreter.

This module adds the columnar alternative those modules switch to:

* :class:`FlowTable` — a lazy, cached materialization of a record sequence
  into numpy column arrays (``src_ip``, ``dst_ip``, ``num_bytes``,
  ``t_start``, ``t_end``, integer-coded ``video_id`` / ``resolution``, and
  the derived ``hour``);
* :class:`SessionIndex` — the gap-*independent* part of session building
  (one lexsort over (client, video, start, end) plus the group-wise
  running-max horizon), shared by every gap value of the Figure 5 sweep;
* small grouped-aggregation helpers (:func:`group_sum_int64`,
  :func:`histogram_from_sizes`) used by the per-hour / per-DC / per-video
  kernels.

The switch is ``REPRO_KERNELS=python|numpy`` (numpy is the default, with a
silent fallback to python when numpy is not importable).  Both backends
produce **identical** results — same session lists, same figure series,
byte-identical digests — so the backend never enters artifact-cache keys,
exactly like the execution backend (``REPRO_EXECUTOR``) before it.

Exactness notes, because parity is a hard requirement:

* Session horizons are computed by cumulative-max over *ranks* of ``t_end``
  (integers), not over offset-shifted floats, so the horizon handed to the
  ``t_start - horizon < gap`` comparison is the exact same double the
  Python loop sees.
* Byte totals are aggregated with int64 ``np.add.reduceat``, never float
  weights, so sums are exact at any scale.
* Kernel outputs are converted back to built-in ``int``/``float``/``str``
  at the boundary (``repr()`` of ``np.float64`` differs from ``float`` on
  numpy >= 2, which would corrupt digests).
"""

from __future__ import annotations

import os
import weakref
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.trace.records import FlowRecord

try:  # numpy is an optional dependency of the analysis layer
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Environment variable selecting the kernel backend.
KERNELS_ENV = "REPRO_KERNELS"

#: Valid backend names.
KERNEL_BACKENDS = ("python", "numpy")


def kernels_backend() -> str:
    """The active kernel backend (``"python"`` or ``"numpy"``).

    Reads :data:`KERNELS_ENV` on every call so tests and the CLI can switch
    backends mid-process.  ``numpy`` silently degrades to ``python`` when
    numpy cannot be imported.

    Raises:
        ValueError: For an unrecognised backend name.
    """
    value = os.environ.get(KERNELS_ENV, "numpy").strip().lower() or "numpy"
    if value not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown {KERNELS_ENV}={value!r}; expected one of {KERNEL_BACKENDS}"
        )
    if value == "numpy" and not HAVE_NUMPY:
        return "python"
    return value


def use_numpy() -> bool:
    """Whether the numpy kernels are active."""
    return kernels_backend() == "numpy"


class _Columns:
    """The materialised column arrays of a :class:`FlowTable`."""

    __slots__ = (
        "src_ip",
        "dst_ip",
        "num_bytes",
        "t_start",
        "t_end",
        "hour",
        "video_ids",
        "video_code",
        "resolutions",
        "resolution_code",
    )

    def __init__(self, records: Sequence[FlowRecord]):
        n = len(records)
        self.src_ip = np.fromiter((r.src_ip for r in records), np.int64, count=n)
        self.dst_ip = np.fromiter((r.dst_ip for r in records), np.int64, count=n)
        self.num_bytes = np.fromiter((r.num_bytes for r in records), np.int64, count=n)
        self.t_start = np.fromiter((r.t_start for r in records), np.float64, count=n)
        self.t_end = np.fromiter((r.t_end for r in records), np.float64, count=n)
        # int(t // 3600.0): the float is already floored, so astype's
        # truncation equals FlowRecord.hour exactly.
        self.hour = (self.t_start // 3600.0).astype(np.int64)
        if n:
            # np.unique sorts lexicographically, matching Python's string
            # order, so code order == sorted(video_id) order.
            self.video_ids, self.video_code = np.unique(
                np.asarray([r.video_id for r in records]), return_inverse=True
            )
            self.resolutions, self.resolution_code = np.unique(
                np.asarray([r.resolution for r in records]), return_inverse=True
            )
        else:
            self.video_ids = np.empty(0, dtype="U1")
            self.video_code = np.empty(0, dtype=np.int64)
            self.resolutions = np.empty(0, dtype="U1")
            self.resolution_code = np.empty(0, dtype=np.int64)
        self.video_code = self.video_code.astype(np.int64, copy=False)
        self.resolution_code = self.resolution_code.astype(np.int64, copy=False)


class SessionIndex:
    """The gap-independent skeleton of session building.

    Section VI-A groups flows by (client, video) and breaks a group into
    sessions wherever ``t_start - horizon >= T``, with ``horizon`` the
    group-wide running max of ``t_end``.  Everything except the final
    comparison is independent of T, so one index serves the whole Figure 5
    sweep ``T in {1, 5, 10, 60, 300}``.

    Attributes:
        order: Indices sorting the table by (client, video, t_start, t_end),
            stable — the exact order the Python spec visits flows in.
        new_group: Boolean per sorted row: first row of a (client, video)
            group.
        t_start: ``t_start`` in sorted order.
        t_end: ``t_end`` in sorted order.
        horizon_prev: Per sorted row, the running max of ``t_end`` over the
            *earlier* rows of the same group (undefined on group heads,
            which always start a session).
    """

    __slots__ = ("order", "new_group", "t_start", "t_end", "horizon_prev")

    def __init__(self, cols: _Columns):
        n = len(cols.t_start)
        if n == 0:
            self.order = np.empty(0, dtype=np.int64)
            self.new_group = np.empty(0, dtype=bool)
            self.t_start = np.empty(0, dtype=np.float64)
            self.t_end = np.empty(0, dtype=np.float64)
            self.horizon_prev = np.empty(0, dtype=np.float64)
            return
        order = np.lexsort((cols.t_end, cols.t_start, cols.video_code, cols.src_ip))
        src = cols.src_ip[order]
        vid = cols.video_code[order]
        ts = cols.t_start[order]
        te = cols.t_end[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = (src[1:] != src[:-1]) | (vid[1:] != vid[:-1])
        # Exact group-wise running max of t_end: rank the values (ints),
        # cumulative-max the ranks with a per-group int64 offset, then map
        # back.  No float arithmetic touches the horizon, so it is
        # bit-identical to the Python loop's max() chain.
        grp = np.cumsum(new_group) - 1
        uniq_te, te_rank = np.unique(te, return_inverse=True)
        base = grp.astype(np.int64) * np.int64(len(uniq_te))
        cummax_rank = np.maximum.accumulate(te_rank.astype(np.int64) + base) - base
        horizon_prev = np.empty(n, dtype=np.float64)
        horizon_prev[0] = -np.inf
        horizon_prev[1:] = uniq_te[cummax_rank[:-1]]
        self.order = order
        self.new_group = new_group
        self.t_start = ts
        self.t_end = te
        self.horizon_prev = horizon_prev

    def session_starts(self, gap_s: float) -> "np.ndarray":
        """Boolean per sorted row: the row opens a new session at gap T."""
        starts = self.new_group.copy()
        cont = ~self.new_group
        starts[cont] = (self.t_start[cont] - self.horizon_prev[cont]) >= gap_s
        return starts

    def session_sizes(self, gap_s: float) -> "np.ndarray":
        """Flows per session at gap T, in session order."""
        starts = self.session_starts(gap_s)
        if not len(starts):
            return np.empty(0, dtype=np.int64)
        return np.bincount(np.cumsum(starts) - 1)


class FlowTable:
    """A columnar view over a flow-record sequence.

    The table keeps the original record list (so the pure-Python spec can
    iterate it unchanged — a ``FlowTable`` is a ``Sequence[FlowRecord]``)
    and materialises the numpy columns lazily, the first time a kernel
    asks.  Build one per dataset / filtered record list and pass it to the
    analysis functions; they use the arrays when ``REPRO_KERNELS=numpy``
    and fall back to iterating the records otherwise.
    """

    __slots__ = (
        "records",
        "_cols",
        "_session_index",
        "_dst_unique",
        "_dst_code",
        "__weakref__",
    )

    def __init__(self, records: Union[Sequence[FlowRecord], Iterable[FlowRecord]]):
        self.records: List[FlowRecord] = (
            records if isinstance(records, list) else list(records)
        )
        self._cols: Optional[_Columns] = None
        self._session_index: Optional[SessionIndex] = None
        self._dst_unique = None
        self._dst_code = None
        _register_table(self)

    # ------------------------------------------------ sequence protocol

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    # ------------------------------------------------------- columns

    def columns(self) -> _Columns:
        """The materialised column arrays (built on first use).

        Raises:
            RuntimeError: If numpy is unavailable.
        """
        if not HAVE_NUMPY:  # pragma: no cover - CI image always has numpy
            raise RuntimeError("numpy is not available; use the python kernels")
        if self._cols is None:
            self._cols = _Columns(self.records)
        return self._cols

    def session_index(self) -> SessionIndex:
        """The cached gap-independent session skeleton."""
        if self._session_index is None:
            self._session_index = SessionIndex(self.columns())
        return self._session_index

    def dst_codes(self):
        """``(unique_dst_ips, per-flow code)`` — server-identity coding."""
        if self._dst_unique is None:
            self._dst_unique, code = np.unique(
                self.columns().dst_ip, return_inverse=True
            )
            self._dst_code = code.astype(np.int64, copy=False)
        return self._dst_unique, self._dst_code

    # ---------------------------------------------------- memory accounting

    def nbytes(self) -> int:
        """Bytes of columnar memory this table has materialised so far.

        Counts only what actually exists — an un-materialised table
        reports 0, and shared-memory attached tables report the mapped
        column sizes — so ``repro cache stats`` shows resident columnar
        memory, not a hypothetical.  The record objects themselves are
        not counted (they are interpreter objects, not column storage).
        """
        total = 0
        cols = self._cols
        if cols is not None:
            for name in _Columns.__slots__:
                arr = getattr(cols, name, None)
                if arr is not None:
                    total += int(arr.nbytes)
        if self._dst_unique is not None:
            total += int(self._dst_unique.nbytes) + int(self._dst_code.nbytes)
        idx = self._session_index
        if idx is not None:
            for name in SessionIndex.__slots__:
                arr = getattr(idx, name, None)
                if arr is not None:
                    total += int(arr.nbytes)
        return total


#: Every live FlowTable in this process, for resident-memory accounting.
_TABLES: "weakref.WeakSet[FlowTable]" = weakref.WeakSet()


def _register_table(table: FlowTable) -> None:
    _TABLES.add(table)


def resident_columnar() -> Dict[str, int]:
    """Resident columnar memory across all live tables in this process.

    Returns:
        ``{"tables": live table count, "resident_bytes": sum of nbytes()}``.
        Backs the ``columnar:`` line of ``repro cache stats``.
    """
    tables = list(_TABLES)
    return {
        "tables": len(tables),
        "resident_bytes": sum(t.nbytes() for t in tables),
    }


def active_table(records: Union[Sequence[FlowRecord], FlowTable]) -> Optional[FlowTable]:
    """The :class:`FlowTable` to run numpy kernels over, or ``None``.

    Returns ``None`` when the python backend is active — callers then take
    their record-at-a-time path.  When the numpy backend is active, an
    existing table passes through (reusing its cached columns); a plain
    record sequence gets a throwaway table.
    """
    if not use_numpy():
        return None
    if isinstance(records, FlowTable):
        return records
    return FlowTable(records)


def as_records(records: Union[Sequence[FlowRecord], FlowTable]) -> Sequence[FlowRecord]:
    """The underlying record sequence (identity for plain sequences)."""
    if isinstance(records, FlowTable):
        return records.records
    return records


# ---------------------------------------------------------------- helpers


def group_sum_int64(codes, values, num_groups: int):
    """Exact int64 per-group sums (``bincount`` with integer weights).

    ``np.bincount(..., weights=...)`` accumulates in float64 and loses
    exactness past 2**53; this helper sorts by group and uses
    ``np.add.reduceat`` on int64 so byte totals stay exact at any scale.
    """
    out = np.zeros(num_groups, dtype=np.int64)
    if len(values) == 0:
        return out
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    sorted_values = values[order].astype(np.int64, copy=False)
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_codes[1:] != sorted_codes[:-1]))
    )
    out[sorted_codes[boundaries]] = np.add.reduceat(sorted_values, boundaries)
    return out


def histogram_from_sizes(sizes) -> Dict[str, float]:
    """The Figure 5/6 bucket histogram from an array of session sizes.

    Returns the same ``{"1"..."9", ">9"} -> fraction`` mapping (same key
    order, same built-in floats) as the record-at-a-time path.

    Raises:
        ValueError: With no sessions.
    """
    total = int(len(sizes))
    if total == 0:
        raise ValueError("no sessions")
    counts = np.bincount(np.minimum(sizes, 10), minlength=11)
    out = {str(i): int(counts[i]) / total for i in range(1, 10)}
    out[">9"] = int(counts[10]) / total
    return out
