"""Adapters for external flow-log formats.

Real deployments do not produce our TSV schema; Tstat's
``log_tcp_complete`` is a wide whitespace-separated table whose column
layout varies by version, and other collectors (Bro/Zeek, custom probes)
differ again.  Rather than hard-code any one layout, the adapter takes a
:class:`ColumnMapping` from the caller — who knows their collector — and
turns each usable line into a :class:`~repro.trace.records.FlowRecord`.

Lines that cannot be parsed are counted, not fatal: a week-long log always
contains a few mangled lines, and an importer that dies on line 48 million
is useless.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.net.ip import parse_ip
from repro.trace.records import FlowRecord

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ColumnMapping:
    """Where each FlowRecord field lives in the external format.

    Attributes:
        src_ip: Column index (0-based) of the client address.
        dst_ip: Column of the server address.
        num_bytes: Column of the server-to-client byte count.
        t_start: Column of the flow start time.
        t_end: Column of the flow end time; ``None`` derives it from
            ``duration`` instead.
        duration: Column of the flow duration (used when ``t_end`` is
            ``None``).
        video_id: Column of the VideoID; ``None`` fills a placeholder
            (analyses needing sessions then degrade, and say so).
        resolution: Column of the resolution label; ``None`` fills "?".
        delimiter: Field separator; ``None`` = any whitespace.
        time_unit_s: Multiplier converting the log's time unit to seconds
            (Tstat logs milliseconds: 0.001).
        t_zero: Timestamp of the collection start in the log's own unit;
            subtracted so records use seconds-from-trace-start.  ``None``
            auto-detects the minimum start time on a first pass.
    """

    src_ip: int
    dst_ip: int
    num_bytes: int
    t_start: int
    t_end: Optional[int] = None
    duration: Optional[int] = None
    video_id: Optional[int] = None
    resolution: Optional[int] = None
    delimiter: Optional[str] = None
    time_unit_s: float = 1.0
    t_zero: Optional[float] = None

    def __post_init__(self) -> None:
        if self.t_end is None and self.duration is None:
            raise ValueError("mapping needs t_end or duration")
        if self.time_unit_s <= 0:
            raise ValueError("time_unit_s must be positive")


#: A reasonable mapping for Tstat 2.x ``log_tcp_complete`` core columns
#: (client side first):  c_ip=0, s_ip=14, s_bytes_uniq=21, first=28,
#: last=29 — times in ms since the epoch.  Verify against your build's
#: column reference before trusting it; layouts move between versions.
TSTAT_TCP_COMPLETE_EXAMPLE = ColumnMapping(
    src_ip=0,
    dst_ip=14,
    num_bytes=21,
    t_start=28,
    t_end=29,
    time_unit_s=0.001,
)


@dataclass
class ImportResult:
    """Outcome of importing an external log.

    Attributes:
        records: Successfully parsed flow records, time-sorted.
        parsed_lines: Lines converted.
        skipped_lines: Lines dropped (malformed, comments, too short).
    """

    records: List[FlowRecord]
    parsed_lines: int
    skipped_lines: int

    @property
    def skip_fraction(self) -> float:
        """Share of candidate lines dropped."""
        total = self.parsed_lines + self.skipped_lines
        return self.skipped_lines / total if total else 0.0


def _parse_line(
    fields: List[str], mapping: ColumnMapping, t_zero: float
) -> Optional[FlowRecord]:
    try:
        t_start = float(fields[mapping.t_start]) * mapping.time_unit_s - t_zero
        if mapping.t_end is not None:
            t_end = float(fields[mapping.t_end]) * mapping.time_unit_s - t_zero
        else:
            t_end = t_start + float(fields[mapping.duration]) * mapping.time_unit_s
        if t_end < t_start or t_start < 0:
            return None
        return FlowRecord(
            src_ip=parse_ip(fields[mapping.src_ip]),
            dst_ip=parse_ip(fields[mapping.dst_ip]),
            num_bytes=int(float(fields[mapping.num_bytes])),
            t_start=t_start,
            t_end=t_end,
            video_id=(
                fields[mapping.video_id] if mapping.video_id is not None else "-" * 11
            ),
            resolution=(
                fields[mapping.resolution] if mapping.resolution is not None else "?"
            ),
        )
    except (IndexError, ValueError):
        return None


def import_flow_log(path: PathLike, mapping: ColumnMapping) -> ImportResult:
    """Import an external flow log.

    Args:
        path: Log file path.
        mapping: Column layout of the external format.

    Returns:
        The :class:`ImportResult`; ``records`` are sorted by start time.
    """
    lines: List[List[str]] = []
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            lines.append(line.split(mapping.delimiter))

    t_zero = mapping.t_zero
    if t_zero is None:
        starts = []
        for fields in lines:
            try:
                starts.append(float(fields[mapping.t_start]) * mapping.time_unit_s)
            except (IndexError, ValueError):
                continue
        t_zero = min(starts) if starts else 0.0

    records: List[FlowRecord] = []
    skipped = 0
    for fields in lines:
        record = _parse_line(fields, mapping, t_zero)
        if record is None:
            skipped += 1
        else:
            records.append(record)
    records.sort(key=lambda r: (r.t_start, r.t_end))
    return ImportResult(records=records, parsed_lines=len(records), skipped_lines=skipped)
