"""Flow-log record schema and the dataset container.

A :class:`FlowRecord` carries exactly the observables the paper's Tstat logs
expose — nothing from the simulator's ground truth (which data center served,
why a redirect happened) leaks into it.  The analysis pipeline must re-infer
those the way the authors did.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.net.ip import IPv4Network, format_ip
from repro.net.topology import VantagePoint

#: One simulated trace week, in seconds.
WEEK_S = 7 * 86400.0


@dataclass(frozen=True)
class FlowRecord:
    """One line of the flow-level log.

    Attributes:
        src_ip: Client address (integer IPv4) — the PoP-internal endpoint.
        dst_ip: Server address (integer IPv4).
        num_bytes: Bytes transferred server-to-client.
        t_start: Flow start time, seconds from trace start.
        t_end: Flow end time, seconds from trace start.
        video_id: The 11-character VideoID Tstat extracts from the HTTP
            request.
        resolution: Requested resolution label (``"360p"``).
    """

    src_ip: int
    dst_ip: int
    num_bytes: int
    t_start: float
    t_end: float
    video_id: str
    resolution: str

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError("flow ends before it starts")
        if self.num_bytes < 0:
            raise ValueError("negative byte count")

    @property
    def duration_s(self) -> float:
        """Flow duration in seconds."""
        return self.t_end - self.t_start

    @property
    def hour(self) -> int:
        """Trace hour the flow started in (Figure 9/11/15 binning)."""
        return int(self.t_start // 3600.0)

    @property
    def src_str(self) -> str:
        """Dotted-quad client address."""
        return format_ip(self.src_ip)

    @property
    def dst_str(self) -> str:
        """Dotted-quad server address."""
        return format_ip(self.dst_ip)


@dataclass
class Dataset:
    """One vantage point's collected trace plus its public metadata.

    The metadata mirrors what the paper's authors knew about their own
    vantage points: where the probe PC sits (for active RTT measurements),
    the access technology, and the internal subnet plan (Figure 12 needs
    it).  It does *not* include anything about the CDN side.

    Attributes:
        name: Dataset name (``"US-Campus"``...).
        vantage: The monitored vantage point.
        records: Flow records sorted by start time.
        duration_s: Collection window length.
    """

    name: str
    vantage: VantagePoint
    records: List[FlowRecord]
    duration_s: float = WEEK_S

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self.records)

    @property
    def num_hours(self) -> int:
        """Number of whole hours in the collection window."""
        return int(self.duration_s // 3600.0)

    @property
    def total_bytes(self) -> int:
        """Total downloaded volume (Table I's ``Volume`` column)."""
        return sum(r.num_bytes for r in self.records)

    @property
    def server_ips(self) -> List[int]:
        """Distinct server addresses, sorted (Table I's ``#Servers``)."""
        return sorted({r.dst_ip for r in self.records})

    @property
    def client_ips(self) -> List[int]:
        """Distinct client addresses, sorted (Table I's ``#Clients``)."""
        return sorted({r.src_ip for r in self.records})

    def subnet_plan(self) -> Sequence[Tuple[str, IPv4Network]]:
        """The vantage point's internal subnets (name, network)."""
        return [(s.name, s.network) for s in self.vantage.subnets]

    def columnar(self):
        """The dataset's cached columnar view (``repro.trace.columnar``).

        Materialised lazily and cached on the instance; the cache is
        invalidated when ``records`` is rebound or its length changes.
        (In-place element mutation is not tracked — the records are frozen
        dataclasses, so only wholesale list surgery could go stale, and
        the analysis layer never does that.)

        Returns:
            The :class:`~repro.trace.columnar.FlowTable` over ``records``.
        """
        from repro.trace.columnar import FlowTable

        source, cached = self.__dict__.get("_columnar", (None, None))
        if (
            cached is None
            or source is not self.records
            or len(cached) != len(self.records)
        ):
            cached = FlowTable(self.records)
            self.__dict__["_columnar"] = (self.records, cached)
        return cached

    def content_digest(self) -> str:
        """SHA-256 over the canonical flow-log serialisation of the records.

        Two datasets digest equal iff their flow logs are byte-identical
        (the serialisation round-trips floats exactly); the cross-backend
        determinism tests compare parallel and serial runs with this.
        """
        from repro.trace.logio import format_record

        digest = hashlib.sha256()
        for record in self.records:
            digest.update(format_record(record).encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    def summary_digest(self, gap_s: float = 10.0) -> str:
        """SHA-256 over the *derived* view: header plus per-session summaries.

        Complements :meth:`content_digest`: where that one certifies the raw
        flow log byte for byte, this one certifies what the analysis layer
        computes from it — session grouping included — so a cached artifact
        can be checked against a fresh run at the level the paper's tables
        are built on.  Two datasets with equal content digests always have
        equal summary digests; the reverse can miss flow-level differences
        that sessionisation absorbs.

        Args:
            gap_s: Session idle-gap threshold handed to
                :func:`repro.core.sessions.build_sessions`.
        """
        from repro.core.sessions import build_sessions

        digest = hashlib.sha256()
        header = (
            f"{self.name}|flows={len(self.records)}|bytes={self.total_bytes}"
            f"|servers={len(self.server_ips)}|clients={len(self.client_ips)}"
            f"|duration={self.duration_s!r}|gap={gap_s!r}"
        )
        digest.update(header.encode("ascii"))
        digest.update(b"\n")
        # The columnar view is passed (not the raw list) so the numpy
        # kernels reuse the dataset's cached session index; the python
        # backend iterates the same records through it unchanged.
        for session in build_sessions(self.columnar(), gap_s=gap_s):
            flows = session.flows
            line = (
                f"{session.client_ip}|{session.video_id}|{len(flows)}"
                f"|{sum(r.num_bytes for r in flows)}"
                f"|{flows[0].t_start!r}|{flows[-1].t_end!r}"
            )
            digest.update(line.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    def filtered(self, keep_dst: Sequence[int]) -> "Dataset":
        """A copy keeping only flows to the given server addresses.

        Section IV: "In the rest of this paper, we only focus on accesses to
        video servers located in the Google AS" (plus the in-ISP data center
        for EU2).  The analysis applies that focus with this method.
        """
        keep = set(keep_dst)
        return Dataset(
            name=self.name,
            vantage=self.vantage,
            records=[r for r in self.records if r.dst_ip in keep],
            duration_s=self.duration_s,
        )
