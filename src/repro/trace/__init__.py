"""Trace collection: the Tstat-like edge monitor and its flow-log format.

The paper's datasets are "flow-level logs where each line reports a set of
statistics related to each YouTube video flow. Among other metrics, the
source and destination IP addresses, the total number of bytes, the starting
and ending time and both the VideoID and the resolution of the video
requested are available" (Section III-B).  This package reproduces that
schema and the passive monitor that fills it.
"""

from repro.trace.records import Dataset, FlowRecord
from repro.trace.monitor import EdgeMonitor
from repro.trace.logio import read_flow_log, write_flow_log
from repro.trace.anonymize import PrefixPreservingAnonymizer
from repro.trace.adapters import ColumnMapping, ImportResult, import_flow_log

__all__ = [
    "Dataset",
    "FlowRecord",
    "EdgeMonitor",
    "read_flow_log",
    "write_flow_log",
    "PrefixPreservingAnonymizer",
    "ColumnMapping",
    "ImportResult",
    "import_flow_log",
]
