"""The test-video experiment (Section VII-C, Figures 17 and 18).

Protocol, exactly as in the paper:

1. Upload a test video (it exists only at its origin data center).
2. From each of 45 PlanetLab nodes, download it every 30 minutes for 12
   hours; alongside each download, measure the RTT to the server that
   actually delivered it.
3. Figure 17: one node's RTT samples over time — the first fetch comes from
   far away, later ones from nearby.
4. Figure 18: the CDF over nodes of RTT1/RTT2 (first fetch vs. second).

The experiment runs against an existing scenario world's CDN, but with its
own DNS policy: each node's resolver gets its own RTT-derived data-center
ranking, reproducing "nodes were carefully selected so that most of them
had different preferred data centers".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.active.planetlab import PlanetLabNode, build_planetlab_nodes
from repro.cdn.catalog import Resolution, Video
from repro.cdn.cluster import CdnSystem
from repro.cdn.selection import PreferredDcPolicy
from repro.geoloc.probing import RttProber
from repro.net.dns import AuthoritativeServer, LocalResolver
from repro.reporting.series import Cdf
from repro.sim.scenarios import ScenarioWorld
from repro.sim.seeding import derive_seed

#: The paper's sampling plan: every 30 minutes for 12 hours.
SAMPLE_INTERVAL_S = 1800.0
NUM_SAMPLES = 25


@dataclass
class NodeRttSeries:
    """One node's Figure 17 series.

    Attributes:
        node: The measuring node.
        times_s: Sample times.
        rtts_ms: RTT to the serving server at each sample.
        serving_dcs: Ground-truth serving data center per sample (tests
            only; the measured quantity is the RTT).
    """

    node: PlanetLabNode
    times_s: List[float] = field(default_factory=list)
    rtts_ms: List[float] = field(default_factory=list)
    serving_dcs: List[str] = field(default_factory=list)

    @property
    def first_to_second_ratio(self) -> float:
        """RTT1 / RTT2 — Figure 18's per-node statistic.

        Raises:
            ValueError: With fewer than two samples.
        """
        if len(self.rtts_ms) < 2:
            raise ValueError("need at least two samples")
        return self.rtts_ms[0] / self.rtts_ms[1]

    @property
    def settled_rtt_ms(self) -> float:
        """Median RTT over the post-first samples."""
        tail = sorted(self.rtts_ms[1:])
        if not tail:
            raise ValueError("need at least two samples")
        return tail[len(tail) // 2]


@dataclass
class TestVideoReport:
    """The full experiment outcome.

    Attributes:
        video_id: The uploaded test video.
        origin_dcs: Where the upload landed.
        series: Per-node RTT series, in node order.
    """

    video_id: str
    origin_dcs: List[str]
    series: List[NodeRttSeries]

    def ratio_cdf(self) -> Cdf:
        """Figure 18: the CDF of RTT1/RTT2 over nodes."""
        return Cdf(s.first_to_second_ratio for s in self.series)

    def fraction_improved(self, threshold: float = 1.2) -> float:
        """Fraction of nodes whose second fetch was ≥ ``threshold`` closer."""
        ratios = [s.first_to_second_ratio for s in self.series]
        return sum(1 for r in ratios if r >= threshold) / len(ratios)

    def most_improved(self) -> NodeRttSeries:
        """The node with the largest RTT1/RTT2 — the Figure 17 exemplar."""
        return max(self.series, key=lambda s: s.first_to_second_ratio)


class TestVideoExperiment:
    """Runs the upload-and-probe experiment against a world's CDN.

    Args:
        world: Any built scenario world (supplies the CDN and the physical
            internet).
        num_nodes: PlanetLab nodes to use.
        seed: Experiment seed (measurement noise, node ordering).
    """

    # Not a pytest test class despite the name.
    __test__ = False

    def __init__(self, world: ScenarioWorld, num_nodes: int = 45, seed: int = 5):
        self._world = world
        self._seed = seed
        self._nodes = build_planetlab_nodes(num_nodes)
        self._prober = RttProber(
            world.latency, probes=6, seed=derive_seed(seed, "testvideo", "prober")
        )
        self._rng = random.Random(derive_seed(seed, "testvideo", "serve"))

        # Experiment-specific DNS: per-node RTT-derived rankings over the
        # same data centers the production policy ranks.
        base_system = world.system
        rankings: Dict[str, Sequence[str]] = {}
        for node in self._nodes:
            def rtt_to(dc_id: str, node=node) -> float:
                dc = base_system.directory.get(dc_id)
                return world.latency.min_rtt_ms(node.site, dc.server_site(dc.servers[0]))

            rankings[f"pl/{node.name}"] = sorted(world.google_dc_ids, key=rtt_to)
        policy = PreferredDcPolicy(
            directory=base_system.directory,
            rankings=rankings,
            spill_probability=0.0,
            seed=derive_seed(seed, "testvideo", "policy"),
        )
        self._system = CdnSystem(
            catalog=base_system.catalog,
            directory=base_system.directory,
            placement=base_system.placement,
            policy=policy,
            redirection=base_system.redirection,
            latency=world.latency,
            num_shards=base_system.num_shards,
        )
        authoritative = AuthoritativeServer(mapper=policy)
        self._resolvers = {
            node.name: LocalResolver(resolver_id=f"pl/{node.name}", authoritative=authoritative)
            for node in self._nodes
        }

    @property
    def nodes(self) -> List[PlanetLabNode]:
        """The experiment nodes."""
        return list(self._nodes)

    def preferred_dc_of(self, node: PlanetLabNode) -> str:
        """The node's preferred data center under the experiment policy."""
        policy: PreferredDcPolicy = self._system.policy  # type: ignore[assignment]
        return policy.preferred_dc(f"pl/{node.name}")

    def upload_test_video(self) -> Video:
        """Upload (register) a cold test video and return it.

        Raises:
            ValueError: If no suitable tail video exists in the catalog.
        """
        catalog = self._system.catalog
        featured = {v.video_id for v in catalog.featured_videos}
        for rank in range(len(catalog) - 1, 0, -1):
            video = catalog.by_rank(rank)
            if video.video_id not in featured:
                self._system.placement.register_cold(video)
                return video
        raise ValueError("no tail video available for the experiment")

    def run(
        self,
        num_samples: int = NUM_SAMPLES,
        interval_s: float = SAMPLE_INTERVAL_S,
        start_s: float = 0.0,
    ) -> TestVideoReport:
        """Run the full protocol.

        Nodes are probed in a shuffled order inside every round, as 45
        independent machines would interleave; a node whose first fetch
        comes *after* a neighbour already pulled the video through may see
        no improvement at all — part of why the paper's Figure 18 has a
        large mass at ratio ≈ 1.

        Returns:
            The :class:`TestVideoReport`.
        """
        if num_samples < 2:
            raise ValueError("need at least 2 samples for RTT1/RTT2")
        video = self.upload_test_video()
        origins = self._system.placement.origins(video)
        series = {
            node.name: NodeRttSeries(node=node) for node in self._nodes
        }
        order = list(self._nodes)
        for sample in range(num_samples):
            t = start_s + sample * interval_s
            self._rng.shuffle(order)
            for node in order:
                outcome = self._system.handle_request(
                    client_ip=node.ip,
                    client_site=node.site,
                    resolver=self._resolvers[node.name],
                    video=video,
                    resolution=Resolution.R360,
                    t_s=t,
                    rng=self._rng,
                    watch_fraction=1.0,
                )
                serving = outcome.decision.serving_server
                rtt = self._prober.measure_ms(node.site, self._system.server_site(serving))
                record = series[node.name]
                record.times_s.append(t)
                record.rtts_ms.append(rtt)
                record.serving_dcs.append(outcome.served_dc_id)
        return TestVideoReport(
            video_id=video.video_id,
            origin_dcs=origins,
            series=[series[node.name] for node in self._nodes],
        )
