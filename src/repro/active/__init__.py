"""Active PlanetLab-style experiments (Section VII-C).

The paper validates the cold-content hypothesis with controlled experiments:
upload a fresh test video, download it from 45 PlanetLab nodes around the
world every 30 minutes for 12 hours, and watch the serving data center move
from a far-away origin (first fetch) to the node's preferred data center
(every later fetch) — Figures 17 and 18.
"""

from repro.active.planetlab import PlanetLabNode, build_planetlab_nodes
from repro.active.testvideo import (
    NodeRttSeries,
    TestVideoExperiment,
    TestVideoReport,
)

__all__ = [
    "PlanetLabNode",
    "build_planetlab_nodes",
    "NodeRttSeries",
    "TestVideoExperiment",
    "TestVideoReport",
]
