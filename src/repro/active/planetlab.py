"""PlanetLab experiment nodes.

"The video was then downloaded from 45 PlanetLab nodes around the world.
Nodes were carefully selected so that most of them had different preferred
data centers."  We reproduce the selection pressure directly: nodes are
placed one per city, cycling through continents, so their RTT rankings
genuinely differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geo.cities import City, WorldAtlas, default_atlas
from repro.geo.coords import destination_point
from repro.geo.regions import Continent
from repro.net.ip import parse_network
from repro.net.latency import AccessTechnology, Site

#: Address block the experiment nodes live in (benchmarking range).
_NODE_BLOCK = parse_network("198.18.0.0/16")

#: Continent rotation used when picking node cities.
_CONTINENT_ORDER = (
    Continent.NORTH_AMERICA,
    Continent.EUROPE,
    Continent.ASIA,
    Continent.NORTH_AMERICA,
    Continent.EUROPE,
    Continent.SOUTH_AMERICA,
    Continent.OCEANIA,
)


@dataclass(frozen=True)
class PlanetLabNode:
    """One experiment node.

    Attributes:
        name: Node name, e.g. ``"pl-03-chicago"``.
        city: Host city.
        ip: The node's client address.
    """

    name: str
    city: City
    ip: int

    @property
    def site(self) -> Site:
        """The node's network position (universities → campus access)."""
        return Site(
            key=f"pl:{self.name}",
            point=destination_point(self.city.point, 45.0, 12.0),
            access=AccessTechnology.CAMPUS,
            group=f"pl:{self.name}",
        )


def build_planetlab_nodes(
    count: int = 45, atlas: Optional[WorldAtlas] = None
) -> List[PlanetLabNode]:
    """Pick ``count`` nodes, one per city, rotating through continents.

    Args:
        count: Number of nodes (the paper used 45).
        atlas: City atlas.

    Returns:
        The node list.

    Raises:
        ValueError: If the atlas cannot supply enough distinct cities.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if atlas is None:
        atlas = default_atlas()
    pools = {c: list(atlas.cities_in(c)) for c in set(_CONTINENT_ORDER)}
    nodes: List[PlanetLabNode] = []
    used = set()
    slot = 0
    while len(nodes) < count:
        continent = _CONTINENT_ORDER[slot % len(_CONTINENT_ORDER)]
        slot += 1
        pool = pools.get(continent, [])
        city = next((c for c in pool if c.name not in used), None)
        if city is None:
            # This continent is exhausted; steal from the biggest pool.
            leftovers = [c for p in pools.values() for c in p if c.name not in used]
            if not leftovers:
                raise ValueError(f"atlas too small for {count} distinct node cities")
            city = leftovers[0]
        used.add(city.name)
        index = len(nodes)
        slug = city.name.lower().replace(" ", "-").replace(".", "")
        nodes.append(
            PlanetLabNode(
                name=f"pl-{index:02d}-{slug}",
                city=city,
                ip=_NODE_BLOCK.first + 256 + index,
            )
        )
    return nodes
