"""Run variant sets and compare their metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.exec.executor import ParallelExecutor
from repro.reporting.tables import TextTable, format_fraction
from repro.sim.scenarios import PAPER_SCENARIOS
from repro.trace.records import WEEK_S
from repro.whatif.metrics import ScenarioMetrics, resolve_metric_rows
from repro.whatif.variants import Variant, baseline_variant


@dataclass
class ComparisonReport:
    """Metric rows for a baseline scenario and its variants.

    Attributes:
        scenario_name: The perturbed scenario.
        rows: One metrics row per variant, baseline first.
    """

    scenario_name: str
    rows: List[ScenarioMetrics] = field(default_factory=list)

    @property
    def baseline(self) -> ScenarioMetrics:
        """The baseline row.

        Raises:
            LookupError: If no baseline row is present.
        """
        for row in self.rows:
            if row.label == "baseline":
                return row
        raise LookupError("no baseline row in the comparison")

    def row(self, label: str) -> ScenarioMetrics:
        """Row by variant name.

        Raises:
            KeyError: For unknown labels.
        """
        for candidate in self.rows:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no row labelled {label!r}")

    def delta(self, label: str, metric: str) -> float:
        """Variant-minus-baseline difference of a metric attribute."""
        return getattr(self.row(label), metric) - getattr(self.baseline, metric)


def compare_variants(
    scenario_name: str,
    variants: Sequence[Variant],
    scale: float = 0.01,
    seed: int = 7,
    duration_s: float = WEEK_S,
    executor: Optional[ParallelExecutor] = None,
) -> ComparisonReport:
    """Simulate a scenario under each variant and collect metric rows.

    Variants share a master seed but build independent worlds, so they
    fan out over the executor with byte-identical rows on every backend.
    Rows are disk-memoized (``"whatif/metrics"``): re-comparing with an
    extra variant simulates only the new variant, and a variant equal to
    a previously swept grid point reuses that point's row outright.

    Args:
        scenario_name: One of the five paper scenarios.
        variants: Variants to run (a baseline row is prepended if missing).
        scale: Traffic scale for the comparison runs.
        seed: Master seed (shared by all variants, so the workloads differ
            only where the variant says they should).
        duration_s: Simulation window.
        executor: Fan-out strategy; ``None`` reads ``REPRO_EXECUTOR``.

    Returns:
        The :class:`ComparisonReport`.

    Raises:
        KeyError: For unknown scenario names.
    """
    spec = PAPER_SCENARIOS.get(scenario_name)
    if spec is None:
        raise KeyError(f"unknown scenario {scenario_name!r}")
    ordered = list(variants)
    if not any(v.name == "baseline" for v in ordered):
        ordered.insert(0, baseline_variant())

    tasks = [
        (variant.apply(spec), scale, seed, duration_s, variant.policy_kind, variant.name)
        for variant in ordered
    ]
    rows = resolve_metric_rows(
        tasks, [f"{scenario_name}/{variant.name}" for variant in ordered],
        executor,
    )
    report = ComparisonReport(scenario_name=scenario_name)
    report.rows.extend(rows)
    return report


def render_comparison(report: ComparisonReport) -> str:
    """A text table of the comparison."""
    table = TextTable(
        [
            "variant", "requests", "pref%", "topDC%", "#DCs",
            "redir/req", "miss/req", "ovl/req",
            "startup p50 [s]", "startup p90 [s]", "RTT p50 [ms]",
        ],
        title=f"WHAT-IF COMPARISON — {report.scenario_name}",
    )
    for row in report.rows:
        table.add_row(
            row.label,
            row.requests,
            format_fraction(row.preferred_share),
            format_fraction(row.top_dc_share),
            row.distinct_dcs,
            f"{row.redirect_rate:.3f}",
            f"{row.miss_rate:.3f}",
            f"{row.overload_rate:.3f}",
            f"{row.median_startup_s:.2f}",
            f"{row.p90_startup_s:.2f}",
            f"{row.median_serving_rtt_ms:.1f}",
        )
    return table.render()
