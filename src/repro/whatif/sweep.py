"""Parameter sweeps: dose-response curves over a scenario knob.

Where :mod:`repro.whatif.compare` contrasts discrete variants, a sweep
varies one :class:`~repro.sim.scenarios.ScenarioSpec` field over a value
grid and traces how a metric responds — e.g. how EU2's local-serve share
falls as the in-ISP data center's DNS budget shrinks, or how the miss rate
rises as regional replication thins out.

A sweep is the degenerate one-axis case of a scenario grid, and since the
spec layer it is implemented as exactly that: :func:`sweep_parameter`
builds a single-axis :class:`~repro.spec.grid.GridSpec` and runs it
through :func:`~repro.spec.runner.run_grid`.  Labels and artifact keys
are unchanged, so pre-grid sweep caches stay warm and a sweep point is a
warm hit for any grid containing it (and vice versa).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.exec.executor import ParallelExecutor
from repro.reporting.series import Series
from repro.sim.engine import SimulationResult
from repro.sim.scenarios import PAPER_SCENARIOS, ScenarioSpec
from repro.trace.records import WEEK_S
from repro.whatif.metrics import ScenarioMetrics

#: A metric extractor: simulation result → one number.
MetricFn = Callable[[SimulationResult], float]


@dataclass
class SweepResult:
    """One sweep's outcome.

    Attributes:
        scenario_name: The swept scenario.
        parameter: The swept spec field.
        values: Grid values, in input order.
        metrics: Full metric rows per grid point.
    """

    scenario_name: str
    parameter: str
    values: List[float] = field(default_factory=list)
    metrics: List[ScenarioMetrics] = field(default_factory=list)

    def series(self, metric: str) -> Series:
        """One metric as a (parameter value, metric value) series.

        Args:
            metric: A :class:`~repro.whatif.metrics.ScenarioMetrics`
                attribute name.

        Raises:
            AttributeError: For unknown metric names.
        """
        series = Series(label=f"{self.scenario_name}: {metric} vs {self.parameter}")
        for value, row in zip(self.values, self.metrics):
            series.append(float(value), float(getattr(row, metric)))
        return series

    def monotone_direction(self, metric: str) -> int:
        """+1 if the metric only rises along the grid, -1 if it only
        falls, 0 otherwise (useful for asserting dose-response shape)."""
        ys = self.series(metric).ys
        rising = all(b >= a for a, b in zip(ys, ys[1:]))
        falling = all(b <= a for a, b in zip(ys, ys[1:]))
        if rising and not falling:
            return 1
        if falling and not rising:
            return -1
        return 0


def sweep_parameter(
    scenario_name: str,
    parameter: str,
    values: Sequence[float],
    scale: float = 0.008,
    seed: int = 7,
    duration_s: float = WEEK_S,
    policy_kind: str = "preferred",
    executor: Optional[ParallelExecutor] = None,
) -> SweepResult:
    """Sweep one spec field over a value grid.

    Grid points differ only in the swept knob and never interact, so they
    fan out over the executor — one simulated week per task, identical
    metric rows on every backend.  Rows are disk-memoized
    (``"whatif/metrics"``): a re-sweep over an extended grid only
    simulates the new points.

    Args:
        scenario_name: One of the paper scenarios.
        parameter: The :class:`ScenarioSpec` field to vary (must exist).
        values: Grid values (assigned verbatim to the field).
        scale: Traffic scale per grid point.
        seed: Shared master seed (the workload is identical across points;
            only the swept knob differs).
        duration_s: Simulation window.
        policy_kind: Selection policy for every grid point.
        executor: Fan-out strategy; ``None`` reads ``REPRO_EXECUTOR``.

    Returns:
        The :class:`SweepResult`.

    Raises:
        KeyError: For unknown scenarios.
        ValueError: For unknown spec fields or an empty grid.
    """
    from repro.spec.grid import GridAxis, GridSpec
    from repro.spec.runner import run_grid

    if scenario_name not in PAPER_SCENARIOS:
        raise KeyError(f"unknown scenario {scenario_name!r}")
    if not values:
        raise ValueError("empty sweep grid")
    field_names = {f.name for f in dataclasses.fields(ScenarioSpec)}
    if parameter not in field_names:
        raise ValueError(f"ScenarioSpec has no field {parameter!r}")

    grid = GridSpec(
        base=scenario_name, axes=(GridAxis(parameter, tuple(values)),)
    )
    run = run_grid(
        grid, scale=scale, seed=seed, duration_s=duration_s,
        base_policy=policy_kind, executor=executor,
    )
    result = SweepResult(scenario_name=scenario_name, parameter=parameter)
    for value, row in zip(values, run.rows):
        result.values.append(float(value))
        result.metrics.append(row)
    return result
