"""Scenario variants: controlled perturbations of a baseline world.

A variant is a named :class:`~repro.spec.model.Spec` delta — the same
require/remove/add shape grids and the registry use — so one variant is
one diffable, serialisable document, and a variant equal to a grid point
shares that point's cached artifacts.  The standard library below covers
the design dimensions DESIGN.md calls out for ablation and the paper's
own what-if motivations: selection policy, data-center capacity,
popularity shape, content availability, and flash crowds.

The selection policy rides inside the delta as the ``"policy"`` par;
:attr:`Variant.policy_kind` reads it back, so callers (comparisons, the
CLI) see the exact pre-spec API and produce byte-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.sim.scenarios import ScenarioSpec
from repro.spec.model import EMPTY_SPEC, Spec, apply_to_scenario, par_delta


@dataclass(frozen=True)
class Variant:
    """One named what-if scenario.

    Attributes:
        name: Short identifier (``"old-policy"``).
        description: One-line human explanation.
        spec: The delta against the baseline scenario (empty for
            policy-only variants).
    """

    name: str
    description: str
    spec: Spec = field(default=EMPTY_SPEC)

    @property
    def policy_kind(self) -> str:
        """Selection policy for the variant's world (the ``"policy"``
        par of the delta; ``"preferred"`` when unset)."""
        return self.spec.add.pars_dict.get("policy", "preferred")

    def apply(self, spec: ScenarioSpec) -> ScenarioSpec:
        """The variant's scenario, derived from a baseline scenario.

        An empty delta returns the baseline object untouched, so the
        baseline variant is an exact identity.

        Raises:
            SpecError: If the delta cannot apply to this baseline.
        """
        scenario, _policy = apply_to_scenario(spec, self.spec)
        return scenario


def baseline_variant() -> Variant:
    """The unmodified scenario, for reference rows."""
    return Variant(name="baseline", description="unmodified scenario")


def standard_variants() -> List[Variant]:
    """The standard what-if library.

    Returns:
        Variants covering the ablation dimensions: selection policy,
        capacity, popularity shape, availability, and demand spikes.
    """
    return [
        baseline_variant(),
        Variant(
            name="old-policy",
            description="pre-Google selection: data centers by size, no locality",
            spec=par_delta(policy="proportional"),
        ),
        Variant(
            name="double-capacity",
            description="double per-server serve capacity (hot-spots absorbed locally)",
            spec=par_delta(server_capacity_multiple=12.0),
        ),
        Variant(
            name="half-capacity",
            description="halve per-server serve capacity (more overflow redirection)",
            spec=par_delta(server_capacity_multiple=3.0),
        ),
        Variant(
            name="flash-crowd",
            description="the daily featured video absorbs 25% of requests",
            spec=par_delta(featured_share=0.25),
        ),
        Variant(
            name="flat-popularity",
            description="flatter popularity (zipf alpha 0.6): a longer effective tail",
            spec=par_delta(zipf_alpha=0.6),
        ),
        Variant(
            name="sparse-replication",
            description="tail content rarely pre-positioned (regional presence 0.3)",
            spec=par_delta(regional_presence_prob=0.3),
        ),
        Variant(
            name="no-spill",
            description="DNS never load-balances away from the preferred data center",
            spec=par_delta(spill_probability=0.0),
        ),
        Variant(
            name="tiny-edge-cache",
            description="edge caches hold only 25 pulled-through tail videos (LRU)",
            spec=par_delta(cache_capacity=25, regional_presence_prob=0.3),
        ),
        Variant(
            name="geo-policy",
            description="idealised selection by geographic distance instead of RTT",
            spec=par_delta(policy="geographic"),
        ),
        Variant(
            name="sticky-dns",
            description="resolvers cache answers for 30 min: DNS-level control "
                        "coarsens and the app layer picks up the slack",
            spec=par_delta(dns_cache_enabled=True, dns_ttl_s=1800.0),
        ),
        Variant(
            name="preferred-outage",
            description="the preferred data center is drained at the DNS level "
                        "(maintenance): everything lands one rank down",
            spec=par_delta(drain_preferred=True),
        ),
    ]


def variant_by_name(name: str) -> Variant:
    """Look up a standard variant.

    Raises:
        KeyError: For unknown variant names.
    """
    for variant in standard_variants():
        if variant.name == name:
            return variant
    raise KeyError(
        f"unknown variant {name!r}; known: {[v.name for v in standard_variants()]}"
    )
