"""Scenario variants: controlled perturbations of a baseline world.

A variant is a named transformation of a :class:`ScenarioSpec` (plus an
optional policy switch).  The standard library below covers the design
dimensions DESIGN.md calls out for ablation and the paper's own what-if
motivations: selection policy, data-center capacity, popularity shape,
content availability, and flash crowds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List

from repro.sim.scenarios import ScenarioSpec

SpecTransform = Callable[[ScenarioSpec], ScenarioSpec]


@dataclass(frozen=True)
class Variant:
    """One named what-if scenario.

    Attributes:
        name: Short identifier (``"old-policy"``).
        description: One-line human explanation.
        transform: Spec transformation (identity for policy-only variants).
        policy_kind: Selection policy for the variant's world.
    """

    name: str
    description: str
    transform: SpecTransform
    policy_kind: str = "preferred"

    def apply(self, spec: ScenarioSpec) -> ScenarioSpec:
        """The variant's spec, derived from a baseline spec."""
        return self.transform(spec)


def _identity(spec: ScenarioSpec) -> ScenarioSpec:
    return spec


def _replace(**changes) -> SpecTransform:
    def transform(spec: ScenarioSpec) -> ScenarioSpec:
        return dataclasses.replace(spec, **changes)

    return transform


def baseline_variant() -> Variant:
    """The unmodified scenario, for reference rows."""
    return Variant(name="baseline", description="unmodified scenario", transform=_identity)


def standard_variants() -> List[Variant]:
    """The standard what-if library.

    Returns:
        Variants covering the ablation dimensions: selection policy,
        capacity, popularity shape, availability, and demand spikes.
    """
    return [
        baseline_variant(),
        Variant(
            name="old-policy",
            description="pre-Google selection: data centers by size, no locality",
            transform=_identity,
            policy_kind="proportional",
        ),
        Variant(
            name="double-capacity",
            description="double per-server serve capacity (hot-spots absorbed locally)",
            transform=_replace(server_capacity_multiple=12.0),
        ),
        Variant(
            name="half-capacity",
            description="halve per-server serve capacity (more overflow redirection)",
            transform=_replace(server_capacity_multiple=3.0),
        ),
        Variant(
            name="flash-crowd",
            description="the daily featured video absorbs 25% of requests",
            transform=_replace(featured_share=0.25),
        ),
        Variant(
            name="flat-popularity",
            description="flatter popularity (zipf alpha 0.6): a longer effective tail",
            transform=_replace(zipf_alpha=0.6),
        ),
        Variant(
            name="sparse-replication",
            description="tail content rarely pre-positioned (regional presence 0.3)",
            transform=_replace(regional_presence_prob=0.3),
        ),
        Variant(
            name="no-spill",
            description="DNS never load-balances away from the preferred data center",
            transform=_replace(spill_probability=0.0),
        ),
        Variant(
            name="tiny-edge-cache",
            description="edge caches hold only 25 pulled-through tail videos (LRU)",
            transform=_replace(cache_capacity=25, regional_presence_prob=0.3),
        ),
        Variant(
            name="geo-policy",
            description="idealised selection by geographic distance instead of RTT",
            transform=_identity,
            policy_kind="geographic",
        ),
        Variant(
            name="sticky-dns",
            description="resolvers cache answers for 30 min: DNS-level control "
                        "coarsens and the app layer picks up the slack",
            transform=_replace(dns_cache_enabled=True, dns_ttl_s=1800.0),
        ),
        Variant(
            name="preferred-outage",
            description="the preferred data center is drained at the DNS level "
                        "(maintenance): everything lands one rank down",
            transform=_replace(drain_preferred=True),
        ),
    ]


def variant_by_name(name: str) -> Variant:
    """Look up a standard variant.

    Raises:
        KeyError: For unknown variant names.
    """
    for variant in standard_variants():
        if variant.name == name:
            return variant
    raise KeyError(
        f"unknown variant {name!r}; known: {[v.name for v in standard_variants()]}"
    )
