"""What-if analysis over the CDN world model.

The paper's introduction motivates exactly this use: "A better
understanding could enable researchers to conduct what-if analysis, and
explore how changes in video popularity distributions, or changes to the
YouTube infrastructure design can impact ISP traffic patterns, as well as
user performance."  With the generative world model in hand, those
questions become runnable experiments: define a variant of a scenario,
simulate both, and compare ISP-facing and user-facing metrics.
"""

from repro.whatif.variants import Variant, standard_variants
from repro.whatif.metrics import ScenarioMetrics, extract_metrics
from repro.whatif.compare import ComparisonReport, compare_variants, render_comparison
from repro.whatif.sweep import SweepResult, sweep_parameter

__all__ = [
    "Variant",
    "standard_variants",
    "ScenarioMetrics",
    "extract_metrics",
    "ComparisonReport",
    "compare_variants",
    "render_comparison",
    "SweepResult",
    "sweep_parameter",
]
