"""Metric extraction for what-if comparisons.

Unlike the measurement pipeline (:mod:`repro.core`), what-if analysis is
done from the *operator's* seat: the simulator's ground truth is fair game,
because the question is "what would change", not "what can be inferred".
Metrics cover the two audiences the paper names: ISPs (traffic patterns —
where the bytes come from, how much crosses the peering edge) and users
(startup delay, serving RTT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.artifacts.memo import memoized_stage
from repro.artifacts.store import default_store
from repro.cdn.redirection import CAUSE_MISS, CAUSE_OVERLOAD_INTER, CAUSE_OVERLOAD_INTRA
from repro.exec.executor import ParallelExecutor, default_executor
from repro.reporting.series import Cdf
from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class ScenarioMetrics:
    """Headline metrics of one simulated scenario.

    Attributes:
        label: Row label (variant name).
        requests: User video requests served.
        flows: Flows observed at the edge.
        volume_gb: Downloaded volume.
        preferred_share: Fraction of requests served by the vantage point's
            ground-truth preferred data center.
        top_dc_share: Fraction served by whichever data center served most.
        distinct_dcs: Data centers that served at least one request.
        redirect_rate: Redirected requests per request.
        miss_rate: Content-miss redirects per request.
        overload_rate: Overload redirects (intra + inter) per request.
        median_startup_s: Median video startup delay, seconds.
        p90_startup_s: 90th-percentile startup delay, seconds.
        median_serving_rtt_ms: Median RTT to the serving server.
    """

    label: str
    requests: int
    flows: int
    volume_gb: float
    preferred_share: float
    top_dc_share: float
    distinct_dcs: int
    redirect_rate: float
    miss_rate: float
    overload_rate: float
    median_startup_s: float
    p90_startup_s: float
    median_serving_rtt_ms: float


def extract_metrics(result: SimulationResult, label: Optional[str] = None) -> ScenarioMetrics:
    """Compute the metric row for one simulation result.

    Args:
        result: A finished run.
        label: Row label; defaults to the scenario name.

    Returns:
        The :class:`ScenarioMetrics`.

    Raises:
        ValueError: For an empty run.
    """
    if result.requests == 0:
        raise ValueError("cannot extract metrics from an empty run")
    world = result.world
    resolver_id = f"{world.spec.name}/{world.spec.subnets[0].name}"
    try:
        preferred_dc = world.system.policy.ranking_for(resolver_id)[0]
    except KeyError:
        preferred_dc = max(result.served_dc_counts, key=result.served_dc_counts.get)

    served = result.served_dc_counts
    top_dc = max(served, key=served.get)
    redirects = sum(
        count for cause, count in result.cause_counts.items() if cause != "direct"
    )
    misses = result.cause_counts.get(CAUSE_MISS, 0)
    overloads = result.cause_counts.get(CAUSE_OVERLOAD_INTER, 0) + result.cause_counts.get(
        CAUSE_OVERLOAD_INTRA, 0
    )
    startup = Cdf(result.startup_delay_samples)
    rtts = Cdf(result.serving_rtt_samples)
    return ScenarioMetrics(
        label=label if label is not None else world.spec.name,
        requests=result.requests,
        flows=len(result.dataset),
        volume_gb=result.dataset.total_bytes / 1e9,
        preferred_share=served.get(preferred_dc, 0) / result.requests,
        top_dc_share=served[top_dc] / result.requests,
        distinct_dcs=len(served),
        redirect_rate=redirects / result.requests,
        miss_rate=misses / result.requests,
        overload_rate=overloads / result.requests,
        median_startup_s=startup.median,
        p90_startup_s=startup.quantile(0.9),
        median_serving_rtt_ms=rtts.median,
    )


@memoized_stage("whatif/metrics")
def scenario_metrics(
    spec,
    scale: float,
    seed: int,
    duration_s: float,
    policy_kind: str,
    label: str,
) -> ScenarioMetrics:
    """One scenario's week reduced to its metric row (disk-memoized).

    The row is a few hundred bytes, so a warm sweep or comparison loads
    only rows — the multi-megabyte week artifacts underneath
    (``"sim/run_week"``, written by the driver's memo layer on the cold
    pass) never leave the disk.
    """
    from repro.sim.driver import run_spec

    run = run_spec(spec, scale=scale, seed=seed, duration_s=duration_s, policy_kind=policy_kind)
    return extract_metrics(run, label=label)


def _metric_row_task(args: Tuple) -> ScenarioMetrics:
    """Process-safe unit of work: simulate one point, keep its metric row.

    Only the compact row crosses the process boundary — the full week's
    trace stays in the worker (and in the worker's artifact store).
    """
    return scenario_metrics(*args)


#: Distinct miss sentinel for store lookups.
_ROW_MISS = object()


def resolve_metric_rows(
    tasks: Sequence[Tuple],
    labels: Sequence[str],
    executor: Optional["ParallelExecutor"],
) -> List[ScenarioMetrics]:
    """Metric rows for the tasks: warm rows from the store, rest fanned out.

    Shared by sweeps and variant comparisons — both fan out
    ``(spec, scale, seed, duration_s, policy_kind, label)`` tuples — so a
    grid point and a variant with identical inputs share one artifact.

    Args:
        tasks: Argument tuples for :func:`scenario_metrics`.
        labels: Executor labels, parallel to ``tasks``.
        executor: Fan-out strategy for the cold tasks; ``None`` reads
            ``REPRO_EXECUTOR``.

    Returns:
        One row per task, in input order.
    """
    store = default_store()
    rows: List[Optional[ScenarioMetrics]] = [None] * len(tasks)
    pending: List[int] = []
    for i, task in enumerate(tasks):
        if store is not None:
            hit = store.get(scenario_metrics.cache_key(*task), _ROW_MISS,
                            stage="whatif/metrics")
            if hit is not _ROW_MISS:
                rows[i] = hit
                continue
        pending.append(i)
    if pending:
        executor = default_executor(executor)
        fresh = executor.map(
            _metric_row_task,
            [tasks[i] for i in pending],
            labels=[labels[i] for i in pending],
        )
        for i, row in zip(pending, fresh):
            rows[i] = row
    return rows
