"""Metric extraction for what-if comparisons.

Unlike the measurement pipeline (:mod:`repro.core`), what-if analysis is
done from the *operator's* seat: the simulator's ground truth is fair game,
because the question is "what would change", not "what can be inferred".
Metrics cover the two audiences the paper names: ISPs (traffic patterns —
where the bytes come from, how much crosses the peering edge) and users
(startup delay, serving RTT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cdn.redirection import CAUSE_MISS, CAUSE_OVERLOAD_INTER, CAUSE_OVERLOAD_INTRA
from repro.reporting.series import Cdf
from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class ScenarioMetrics:
    """Headline metrics of one simulated scenario.

    Attributes:
        label: Row label (variant name).
        requests: User video requests served.
        flows: Flows observed at the edge.
        volume_gb: Downloaded volume.
        preferred_share: Fraction of requests served by the vantage point's
            ground-truth preferred data center.
        top_dc_share: Fraction served by whichever data center served most.
        distinct_dcs: Data centers that served at least one request.
        redirect_rate: Redirected requests per request.
        miss_rate: Content-miss redirects per request.
        overload_rate: Overload redirects (intra + inter) per request.
        median_startup_s: Median video startup delay, seconds.
        p90_startup_s: 90th-percentile startup delay, seconds.
        median_serving_rtt_ms: Median RTT to the serving server.
    """

    label: str
    requests: int
    flows: int
    volume_gb: float
    preferred_share: float
    top_dc_share: float
    distinct_dcs: int
    redirect_rate: float
    miss_rate: float
    overload_rate: float
    median_startup_s: float
    p90_startup_s: float
    median_serving_rtt_ms: float


def extract_metrics(result: SimulationResult, label: Optional[str] = None) -> ScenarioMetrics:
    """Compute the metric row for one simulation result.

    Args:
        result: A finished run.
        label: Row label; defaults to the scenario name.

    Returns:
        The :class:`ScenarioMetrics`.

    Raises:
        ValueError: For an empty run.
    """
    if result.requests == 0:
        raise ValueError("cannot extract metrics from an empty run")
    world = result.world
    resolver_id = f"{world.spec.name}/{world.spec.subnets[0].name}"
    try:
        preferred_dc = world.system.policy.ranking_for(resolver_id)[0]
    except KeyError:
        preferred_dc = max(result.served_dc_counts, key=result.served_dc_counts.get)

    served = result.served_dc_counts
    top_dc = max(served, key=served.get)
    redirects = sum(
        count for cause, count in result.cause_counts.items() if cause != "direct"
    )
    misses = result.cause_counts.get(CAUSE_MISS, 0)
    overloads = result.cause_counts.get(CAUSE_OVERLOAD_INTER, 0) + result.cause_counts.get(
        CAUSE_OVERLOAD_INTRA, 0
    )
    startup = Cdf(result.startup_delay_samples)
    rtts = Cdf(result.serving_rtt_samples)
    return ScenarioMetrics(
        label=label if label is not None else world.spec.name,
        requests=result.requests,
        flows=len(result.dataset),
        volume_gb=result.dataset.total_bytes / 1e9,
        preferred_share=served.get(preferred_dc, 0) / result.requests,
        top_dc_share=served[top_dc] / result.requests,
        distinct_dcs=len(served),
        redirect_rate=redirects / result.requests,
        miss_rate=misses / result.requests,
        overload_rate=overloads / result.requests,
        median_startup_s=startup.median,
        p90_startup_s=startup.quantile(0.9),
        median_serving_rtt_ms=rtts.median,
    )
