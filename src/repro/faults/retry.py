"""Shared retry/backoff policy for transient faults.

One :class:`RetryPolicy` serves every layer that can see a transient
failure — executor task attempts, campaign RTT measurements — with the
same semantics everywhere: bounded attempts, exponential backoff with
*deterministic* jitter (a pure function of the policy seed, the site
label and the attempt number — chaos runs must replay exactly), an
optional total deadline, and a fixed classification of which failures are
worth retrying.

The exception taxonomy injected by :class:`~repro.faults.plan.FaultPlan`
lives here too, so worker processes can unpickle it without importing the
plan machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

_TWO_63 = float(1 << 63)


class TransientFault(RuntimeError):
    """A failure worth retrying: the next attempt may well succeed."""


class WorkerCrash(TransientFault):
    """An executor worker died mid-task (injected or real)."""


class ProbeTimeout(TransientFault):
    """One RTT measurement attempt timed out."""


#: Exception type *names* retried by default.  Names, not classes, because
#: the executor ships failures across process boundaries as
#: :class:`~repro.exec.executor.ExecutionError` records carrying only the
#: original type's name.
DEFAULT_RETRY_ON: Tuple[str, ...] = (
    "TransientFault",
    "WorkerCrash",
    "ProbeTimeout",
    "TimeoutError",
    "ConnectionError",
    "OSError",
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline.

    Attributes:
        max_attempts: Total attempts per unit of work (1 = no retries).
        base_delay_s: Backoff before the first retry.
        multiplier: Backoff growth factor per further retry.
        max_delay_s: Per-retry backoff ceiling.
        jitter: Fractional jitter half-width; the delay is scaled by a
            deterministic factor in ``[1 - jitter, 1 + jitter)``.
        max_deadline_s: Total budget across attempts; once spent, no
            further retries are scheduled (the last failure surfaces).
        seed: Jitter seed.
        retry_on: Exception type names considered transient.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    max_deadline_s: Optional[float] = None
    seed: int = 0
    retry_on: Tuple[str, ...] = DEFAULT_RETRY_ON

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_deadline_s is not None and self.max_deadline_s <= 0:
            raise ValueError("max_deadline_s must be positive")

    # --------------------------------------------------------------- schedule

    def retryable(self, failure) -> bool:
        """Whether a failure (exception or type name) is worth retrying."""
        name = failure if isinstance(failure, str) else type(failure).__name__
        if name in self.retry_on:
            return True
        if isinstance(failure, BaseException):
            # Subclasses of a listed type count (e.g. a bespoke
            # TransientFault subclass raised by an injection site).
            return any(
                base.__name__ in self.retry_on for base in type(failure).__mro__
            )
        return False

    def delay_s(self, attempt: int, label: str = "") -> float:
        """Backoff before retrying after failed ``attempt`` (1-based).

        Deterministic: the jitter factor is derived from
        ``(seed, label, attempt)``, so replaying a chaos run schedules
        byte-identical waits.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = self.base_delay_s * (self.multiplier ** (attempt - 1))
        raw = min(raw, self.max_delay_s)
        if self.jitter:
            # Lazy for the same reason as FaultPlan.unit: repro.sim sits
            # above the faults package in the import graph.
            from repro.sim.seeding import derive_seed

            u = derive_seed(self.seed, "retry", label, str(attempt)) / _TWO_63
            raw *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return raw

    # -------------------------------------------------------------------- run

    def run(
        self,
        fn: Callable[[int], object],
        label: str = "",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ):
        """Call ``fn(attempt)`` until it returns, retrying transient faults.

        Args:
            fn: The attempt function; receives the 1-based attempt number
                (injection sites key per-attempt decisions on it).
            label: Site label for deterministic jitter and diagnostics.
            sleep: Backoff sleeper (tests inject a recorder).
            on_retry: Called as ``on_retry(attempt, error)`` before each
                backoff — degradation accounting hooks in here.

        Returns:
            The first successful attempt's value.

        Raises:
            BaseException: The final attempt's failure (or the first
                non-retryable one) — re-raised unchanged.
        """
        started = time.monotonic()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(attempt)
            except Exception as error:
                out_of_time = (
                    self.max_deadline_s is not None
                    and time.monotonic() - started >= self.max_deadline_s
                )
                if (
                    attempt >= self.max_attempts
                    or out_of_time
                    or not self.retryable(error)
                ):
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                from repro import obs

                obs.inc("retries", 1, stage="faults/retry")
                delay = self.delay_s(attempt, label)
                if delay > 0:
                    sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


def default_retry_policy() -> RetryPolicy:
    """The policy applied when a fault plan is active and none is given.

    Tuned for chaos runs: enough attempts to outlast
    ``max_failures_per_task`` at its default, with short deterministic
    backoffs so a faulted study stays fast.
    """
    return RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.1)
