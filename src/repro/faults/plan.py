"""Seeded, fully deterministic fault plans.

The measurement pipeline the paper describes is inherently lossy: CBG
tolerates lost or late PlanetLab probes, Tstat drops flows at the edge,
DNS answers time out.  A :class:`FaultPlan` injects those failure modes
into the reproduction — probe loss and RTT timeouts into campaigns,
transient exceptions and worker crashes into the executor, corrupt
objects into the artifact store, garbled lines into flow-log ingestion —
in a way that is *exactly* reproducible: every injection decision is a
pure function of ``(plan.seed, site labels)`` via
:func:`repro.sim.seeding.derive_seed`, never of wall clock, call order or
scheduling.  Two runs of the same (seed, plan) inject the same faults at
the same sites, so chaos runs are debuggable and byte-comparable.

Plans travel as JSON — a file path or an inline object — through the
``--faults`` CLI flag or the ``REPRO_FAULTS`` environment variable (which
is how process-pool workers inherit the plan).  The grammar::

    {
      "seed": 42,                  // fault-decision seed
      "probe_loss": 0.05,          // P(one campaign/CBG measurement lost)
      "probe_timeout": 0.1,        // P(one measurement attempt times out)
      "task_transient": 0.1,       // P(one executor task attempt raises)
      "task_crash": 0.02,          // P(one executor task attempt "dies")
      "artifact_corrupt": 0.5,     // P(a stored object reads back corrupt)
      "line_garble": 0.01,         // P(a flow-log line arrives garbled)
      "record_disorder": 0.05,     // P(a streamed flow record is delayed
                                   // out of order, within the watermark)
      "max_failures_per_task": 2   // injections stop after this many
                                   // attempts at one site (bounds retries)
    }

All fields are optional; omitted rates default to 0.  A plan whose rates
are all zero is *inert*: it injects nothing and leaves artifact-cache
keys untouched, so its outputs are byte-identical to a run with no plan
at all.  An active plan, by contrast, is folded into every
:func:`~repro.artifacts.keys.stage_key`, which keeps faulted artifacts
out of the clean cache namespace (and vice versa).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

#: Environment variable carrying the active plan (a JSON object or a path
#: to one); how the CLI hands the plan to process-pool workers.
ENV_FAULTS = "REPRO_FAULTS"

#: The injection-rate fields of :class:`FaultPlan`, in grammar order.
RATE_FIELDS = (
    "probe_loss",
    "probe_timeout",
    "task_transient",
    "task_crash",
    "artifact_corrupt",
    "line_garble",
    "record_disorder",
)

_TWO_63 = float(1 << 63)


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic chaos configuration (see the module docstring).

    Attributes:
        seed: Master seed for every injection decision.
        probe_loss: Chance one campaign/CBG measurement is lost outright.
        probe_timeout: Chance one measurement *attempt* times out (a
            retryable fault; exhausted retries lose the measurement).
        task_transient: Chance one executor task attempt raises a
            :class:`~repro.faults.retry.TransientFault`.
        task_crash: Chance one executor task attempt dies as a
            :class:`~repro.faults.retry.WorkerCrash`.
        artifact_corrupt: Chance an artifact-store read surfaces a
            truncated object (which the store quarantines and recomputes).
        line_garble: Chance a flow-log line is garbled mid-ingestion.
        record_disorder: Chance a streamed flow record is held back and
            re-emitted a few arrivals later.  The injector lags the
            stream's watermark below every held record, so the disorder
            stays *within* the watermark — the windowing layer absorbs it
            and streamed outputs remain byte-identical.
        max_failures_per_task: Attempt ceiling per injection site; beyond
            it the site succeeds, so bounded retries always converge.
    """

    seed: int = 0
    probe_loss: float = 0.0
    probe_timeout: float = 0.0
    task_transient: float = 0.0
    task_crash: float = 0.0
    artifact_corrupt: float = 0.0
    line_garble: float = 0.0
    record_disorder: float = 0.0
    max_failures_per_task: int = 2

    def __post_init__(self):
        for name in RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.max_failures_per_task < 0:
            raise ValueError("max_failures_per_task must be >= 0")

    # ------------------------------------------------------------ decisions

    @property
    def active(self) -> bool:
        """Whether the plan injects anything (any non-zero rate)."""
        return any(getattr(self, name) > 0.0 for name in RATE_FIELDS)

    def unit(self, *labels: str) -> float:
        """A deterministic uniform draw in [0, 1) for one labelled site."""
        # Imported lazily: the faults package sits below every other layer
        # (trace, exec, artifacts all import it), so a top-level import of
        # repro.sim here would close an import cycle through repro.trace.
        from repro.sim.seeding import derive_seed

        return derive_seed(self.seed, "faults", *labels) / _TWO_63

    def decide(self, rate: float, *labels: str) -> bool:
        """Whether to inject a fault with ``rate`` at one labelled site.

        The decision depends only on ``(seed, labels)`` — not on call
        order, thread, or process — so any component (or a post-hoc
        debugger) can re-derive exactly which sites were faulted.
        """
        if rate <= 0.0:
            return False
        return self.unit(*labels) < rate

    def attempt_fails(self, rate: float, attempt: int, *labels: str) -> bool:
        """Per-attempt decision, bounded by ``max_failures_per_task``.

        Attempts beyond the ceiling never fail, so a retry policy with
        ``max_attempts > max_failures_per_task`` is guaranteed to converge.
        """
        if attempt > self.max_failures_per_task:
            return False
        return self.decide(rate, *labels, f"attempt={attempt}")

    # ---------------------------------------------------------- (de)serialise

    def to_json(self) -> str:
        """The plan as a compact JSON object (the grammar above)."""
        return json.dumps(dataclasses.asdict(self), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON object string.

        Raises:
            ValueError: For malformed JSON, unknown fields, or rates
                outside [0, 1].
        """
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ValueError(f"malformed fault plan JSON: {error}") from error
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown fault plan fields: {', '.join(unknown)}")
        return cls(**data)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a plan from an inline JSON object or a file path.

        This is the form ``--faults`` and ``REPRO_FAULTS`` accept: a
        string starting with ``{`` is inline JSON, anything else names a
        JSON file.

        Raises:
            ValueError: For empty specs or malformed plans.
            OSError: For unreadable plan files.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty fault plan spec")
        if spec.startswith("{"):
            return cls.from_json(spec)
        return cls.from_json(Path(spec).read_text(encoding="utf-8"))


# The process-wide plan.  An explicit set_current_plan() wins; otherwise
# the environment is re-parsed whenever REPRO_FAULTS changes, so process-
# pool workers (which inherit the env) and monkeypatching tests both see
# the right plan without further plumbing.
_UNSET = object()
_override = _UNSET
_env_cache: tuple = ("", None)


def set_current_plan(plan: Optional[FaultPlan]) -> None:
    """Install a plan for this process (``None`` = explicitly no plan)."""
    global _override
    _override = plan


def clear_current_plan() -> None:
    """Drop any explicit plan; fall back to ``REPRO_FAULTS``."""
    global _override
    _override = _UNSET


def current_plan() -> Optional[FaultPlan]:
    """The plan in force: the explicit one, else ``REPRO_FAULTS``, else none.

    Raises:
        ValueError: If ``REPRO_FAULTS`` holds a malformed plan — a typo'd
            chaos run must fail loudly, not silently run clean.
    """
    global _env_cache
    if _override is not _UNSET:
        return _override
    spec = os.environ.get(ENV_FAULTS, "").strip()
    if not spec:
        return None
    if spec != _env_cache[0]:
        _env_cache = (spec, FaultPlan.from_spec(spec))
    return _env_cache[1]


def active_plan() -> Optional[FaultPlan]:
    """The current plan if it actually injects faults, else ``None``.

    Injection sites call this: an inert (all-zero) plan behaves exactly
    like no plan, which is what keeps zero-fault runs byte-identical to
    clean runs — cache keys included.
    """
    plan = current_plan()
    return plan if plan is not None and plan.active else None
