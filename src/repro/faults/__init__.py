"""Deterministic fault injection, retries, and degradation reporting.

The paper's pipeline tolerates partial failure everywhere — lost
PlanetLab probes, dropped Tstat flows, timed-out DNS answers — so the
reproduction must too.  This package makes that testable:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded chaos
  configuration whose every injection decision is a pure function of
  ``(seed, site labels)``; carried by ``--faults`` / ``REPRO_FAULTS``.
* :mod:`repro.faults.retry` — :class:`RetryPolicy`, shared
  exponential-backoff-with-deterministic-jitter semantics, plus the
  transient-fault exception taxonomy.
* :mod:`repro.faults.report` — the per-stage degradation collector and
  :class:`DegradationReport` (stages completed / retried / degraded /
  skipped).

Injection is wired into the executor (task transients and worker
crashes), RTT campaigns and CBG probing (probe loss and timeouts), the
artifact store (corrupt objects, quarantined and recomputed), and
flow-log ingestion (garbled lines, skipped and counted).  An active plan
is folded into every artifact-cache key, so faulted runs never share
artifacts with clean ones; an all-zero plan is inert and byte-identical
to no plan at all.
"""

from repro.faults.plan import (
    ENV_FAULTS,
    FaultPlan,
    RATE_FIELDS,
    active_plan,
    clear_current_plan,
    current_plan,
    set_current_plan,
)
from repro.faults.report import DegradationReport, collect, record, stage_completed
from repro.faults.retry import (
    DEFAULT_RETRY_ON,
    ProbeTimeout,
    RetryPolicy,
    TransientFault,
    WorkerCrash,
    default_retry_policy,
)

__all__ = [
    "DEFAULT_RETRY_ON",
    "DegradationReport",
    "ENV_FAULTS",
    "FaultPlan",
    "ProbeTimeout",
    "RATE_FIELDS",
    "RetryPolicy",
    "TransientFault",
    "WorkerCrash",
    "active_plan",
    "clear_current_plan",
    "collect",
    "current_plan",
    "default_retry_policy",
    "record",
    "set_current_plan",
    "stage_completed",
]
