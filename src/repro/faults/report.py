"""Per-stage degradation accounting for faulted runs.

When a :class:`~repro.faults.plan.FaultPlan` is in force, every layer
that absorbs a fault records what it absorbed here — campaigns count lost
probes, the executor counts retried tasks, the artifact store counts
quarantined objects, log ingestion counts skipped lines — and the run
ends with one :class:`DegradationReport`: per stage, how much completed,
how much was retried, how much degraded, how much was skipped.

The collector's storage lives on the current
:class:`~repro.obs.runctx.RunContext` (not a module global), so
sequential studies in one process each get a fresh tally and
``obs.new_run()`` resets everything per-run at once.  It records only
while a plan is installed, so clean runs pay nothing.  Process-pool
caveat: counters live in the recording process; in-worker events surface
either through values returned to the parent (campaign outcomes),
through retried failures the parent observes, or through the artifact
store's cross-process ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.faults.plan import current_plan
from repro.obs.runctx import current_run

#: Counter keys with dedicated meaning, in reporting order.  Stages may
#: record additional ad-hoc counters; they sort after these.
CORE_COUNTERS = ("completed", "retried", "degraded", "skipped")


def _events() -> Dict[str, Dict[str, int]]:
    """The current run's degradation tally (run-scoped, not module-global)."""
    return current_run().degradation


def record(stage: str, **counts: int) -> None:
    """Fold counters into one stage's tally (no-op without a plan).

    Args:
        stage: Stage name, namespaced like ``"geoloc/campaign"``.
        counts: Counter increments, e.g. ``completed=1, probes_lost=3``.
    """
    if current_plan() is None:
        return
    tally = _events().setdefault(stage, {})
    for name, delta in counts.items():
        if delta:
            tally[name] = tally.get(name, 0) + int(delta)


def stage_completed(stage: str, degraded: bool = False) -> None:
    """Record one completed unit of a stage (optionally degraded)."""
    record(stage, completed=1, degraded=1 if degraded else 0)


def reset() -> None:
    """Drop every recorded counter (fresh runs and tests)."""
    _events().clear()


@dataclass
class DegradationReport:
    """A snapshot of the run's per-stage degradation counters.

    Attributes:
        stages: Stage name → counter name → count.
    """

    stages: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def totals(self) -> Dict[str, int]:
        """Counters summed over every stage."""
        out: Dict[str, int] = {}
        for tally in self.stages.values():
            for name, count in tally.items():
                out[name] = out.get(name, 0) + count
        return out

    def total(self, counter: str) -> int:
        """One counter's total over every stage (0 when never recorded)."""
        return self.totals.get(counter, 0)

    @property
    def degraded(self) -> bool:
        """Whether anything beyond plain completion was recorded."""
        return any(
            count for tally in self.stages.values()
            for name, count in tally.items() if name != "completed"
        )

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """A JSON-ready view: sorted stages plus a ``TOTAL`` pseudo-stage."""
        doc = {
            stage: {k: self.stages[stage][k] for k in sorted(self.stages[stage])}
            for stage in sorted(self.stages)
        }
        doc["TOTAL"] = {k: self.totals[k] for k in sorted(self.totals)}
        return doc


def collect(reset_after: bool = False) -> DegradationReport:
    """The report over everything recorded so far.

    Args:
        reset_after: Also clear the collector (end-of-run emission).
    """
    report = DegradationReport(
        stages={stage: dict(tally) for stage, tally in _events().items()}
    )
    if reset_after:
        reset()
    return report
