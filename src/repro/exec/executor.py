"""Deterministic parallel execution over independent units of work.

The study is full of embarrassingly-parallel loops — five vantage points'
weeks, what-if variants, sweep grid points, per-vantage RTT campaigns —
that the seed-derivation discipline (:func:`repro.sim.seeding.derive_seed`)
already makes order-independent: every unit owns its RNG, so running units
concurrently cannot perturb their draws.  This module supplies the missing
mechanical piece: a :class:`ParallelExecutor` that fans such units out over
a backend (in-process serial, threads, or processes) while keeping results
in input order, containing worker faults, and timing every task.

Determinism contract: for a task function that depends only on its item
(no ambient global state), all three backends return identical values in
identical order.  ``tests/test_exec_determinism.py`` holds the simulator to
that contract byte-for-byte.

Backend selection::

    executor = ParallelExecutor("process", max_workers=4)   # explicit
    executor = ParallelExecutor.from_env()                  # REPRO_EXECUTOR

Process-backend caveat: the task function must be a module-level callable
and its items/results picklable — the standard :mod:`concurrent.futures`
restriction.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import obs

#: Recognised backend names, in documentation order.
BACKENDS = ("serial", "thread", "process")

#: Environment variable naming the backend (``serial``/``thread``/``process``).
ENV_BACKEND = "REPRO_EXECUTOR"

#: Environment variable bounding the worker count (positive integer).
ENV_WORKERS = "REPRO_EXECUTOR_WORKERS"


class ExecutionError(RuntimeError):
    """A unit of work failed inside a worker.

    The pool is never killed by one bad task: the failure is captured where
    it happened and re-surfaced here with the *original* traceback text, so
    a crash inside a process worker reads exactly like a local one.

    With nested pools (a process task that fans out its own executor) the
    inner failure is already an ``ExecutionError``; re-wrapping keeps the
    *root* ``cause_type`` and worker traceback and prefixes the label path,
    so the diagnosis survives any number of pool hops and pickle
    round-trips.

    Attributes:
        label: The failed task's label (``outer -> inner`` when nested).
        cause_type: Root exception class name raised by the task.
        cause_message: Stringified root exception.
        worker_traceback: Full traceback text from the innermost worker.
        attempts: How many attempts were made before giving up.
    """

    def __init__(
        self,
        label: str,
        cause_type: str,
        cause_message: str,
        worker_traceback: str,
        attempts: int = 1,
    ):
        self.label = label
        self.cause_type = cause_type
        self.cause_message = cause_message
        self.worker_traceback = worker_traceback
        self.attempts = attempts
        super().__init__(
            f"task {label!r} failed with {cause_type}: {cause_message}\n"
            f"--- worker traceback ---\n{worker_traceback}"
        )

    def __reduce__(self):
        # All five fields must travel: reconstructing from the base
        # RuntimeError args (or from the first four fields only) silently
        # drops the attempt count on re-pickle round-trips across nested
        # pools.
        return (
            ExecutionError,
            (
                self.label,
                self.cause_type,
                self.cause_message,
                self.worker_traceback,
                self.attempts,
            ),
        )

    @classmethod
    def wrap(cls, label: str, exc: BaseException, tb_text: str) -> "ExecutionError":
        """Contain a task failure, preserving nested errors' root cause."""
        if isinstance(exc, ExecutionError):
            return cls(
                f"{label} -> {exc.label}",
                exc.cause_type,
                exc.cause_message,
                exc.worker_traceback,
                attempts=exc.attempts,
            )
        return cls(label, type(exc).__name__, str(exc), tb_text)


@dataclass(frozen=True)
class TaskTiming:
    """Wall-clock timing of one executed task.

    Attributes:
        label: Task label (for straggler reports).
        seconds: Wall time spent inside the task function.
        ok: Whether the task returned (``False`` = raised).
        dispatch_bytes: Pickled size of the task sent to the worker
            (process backend only; 0 when nothing was serialized).
        result_bytes: Pickled size of the outcome that came back
            (process backend only; 0 when nothing was serialized).
    """

    label: str
    seconds: float
    ok: bool
    dispatch_bytes: int = 0
    result_bytes: int = 0


@dataclass(frozen=True)
class MapStats:
    """Timing summary of one :meth:`ParallelExecutor.map` call.

    Attributes:
        backend: Backend that ran the batch.
        wall_s: Wall time of the whole batch, submit to last result.
        timings: Per-task timings, in input order (final attempt each).
        retries: Total extra attempts scheduled by the retry policy.
    """

    backend: str
    wall_s: float
    timings: List[TaskTiming] = field(default_factory=list)
    retries: int = 0

    @property
    def task_seconds(self) -> float:
        """Total compute time across tasks (serial-equivalent cost)."""
        return sum(t.seconds for t in self.timings)

    @property
    def dispatch_bytes(self) -> int:
        """Total pickled bytes sent to workers (the dispatch half)."""
        return sum(t.dispatch_bytes for t in self.timings)

    @property
    def result_bytes(self) -> int:
        """Total pickled bytes returned by workers (the result half)."""
        return sum(t.result_bytes for t in self.timings)

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over wall time (1.0 for serial runs)."""
        return self.task_seconds / self.wall_s if self.wall_s > 0 else 1.0

    def straggler(self) -> Optional[TaskTiming]:
        """The slowest task, or ``None`` for an empty batch."""
        return max(self.timings, key=lambda t: t.seconds, default=None)


def _inject_task_fault(label: str, attempt: int) -> None:
    """Raise an injected fault for this task attempt, if the plan says so.

    Resolved from the ambient fault plan (``REPRO_FAULTS`` travels to
    process workers through the environment), with decisions keyed on
    ``(label, attempt)`` — deterministic regardless of backend or
    scheduling.
    """
    from repro.faults.plan import active_plan
    from repro.faults.retry import TransientFault, WorkerCrash

    plan = active_plan()
    if plan is None:
        return
    if plan.attempt_fails(plan.task_crash, attempt, "exec/crash", label):
        raise WorkerCrash(f"injected worker crash in {label!r} (attempt {attempt})")
    if plan.attempt_fails(plan.task_transient, attempt, "exec/transient", label):
        raise TransientFault(
            f"injected transient fault in {label!r} (attempt {attempt})"
        )


@dataclass
class TaskOutcome:
    """One task attempt's result as it travels back from a worker.

    Attributes:
        seconds: Wall time spent inside the task function.
        payload: The task's value, or a contained :class:`ExecutionError`.
        capture: The task's span/metrics capture
            (:class:`~repro.obs.TaskCapture`), when tracing is on and a
            span context was propagated; ``None`` otherwise.
        collected_abs: ``time.perf_counter()`` in the *dispatching*
            process at the moment the outcome was collected — the anchor
            for rebasing the capture's relative span times onto the
            dispatcher's clock.  Filled in by the dispatcher, never the
            worker (their monotonic clocks are unrelated).
        dispatch_bytes: Pickled task size (filled by the dispatcher on
            the process backend; 0 for in-process backends).
        result_bytes: Pickled outcome size (likewise).
    """

    seconds: float
    payload: Any
    capture: Optional[obs.TaskCapture] = None
    collected_abs: float = 0.0
    dispatch_bytes: int = 0
    result_bytes: int = 0


def _timed_call(
    fn: Callable[[Any], Any],
    item: Any,
    label: str,
    attempt: int = 1,
    span_ctx: Optional[obs.SpanContext] = None,
):
    """Run one task attempt, capturing wall time and any failure.

    Module-level so the process backend can pickle it.  Returns a
    :class:`TaskOutcome` whose payload is either the task's value or an
    :class:`ExecutionError` built from the in-worker traceback.  When a
    span context rides along, the attempt runs inside a ``task:<label>``
    capture span, so everything the task records (nested spans, cache
    counters) travels back for merging under the dispatching map span.
    """
    capture = obs.task_capture(span_ctx, label, attempt)
    start = time.perf_counter()
    try:
        with capture:
            _inject_task_fault(label, attempt)
            value = fn(item)
    except Exception as exc:  # contain, never kill the pool
        return TaskOutcome(
            time.perf_counter() - start,
            ExecutionError.wrap(label, exc, traceback.format_exc()),
            capture.result,
        )
    return TaskOutcome(time.perf_counter() - start, value, capture.result)


def _timed_call_packed(blob: bytes) -> bytes:
    """Process-backend transport shim: bytes in, bytes out.

    The dispatcher pickles ``(fn, item, label, attempt, span_ctx)`` once
    and measures it; this shim runs the attempt and pickles the outcome
    back, so both halves of the pickle tax are observable as exact byte
    counts (:class:`TaskTiming`).  An unpicklable *result* is contained
    here — replaced by an :class:`ExecutionError` outcome — instead of
    poisoning the pool's result pipe.
    """
    fn, item, label, attempt, span_ctx = pickle.loads(blob)
    outcome = _timed_call(fn, item, label, attempt, span_ctx)
    try:
        return pickle.dumps(outcome)
    except Exception as exc:
        contained = TaskOutcome(
            outcome.seconds,
            ExecutionError(label, type(exc).__name__, str(exc), traceback.format_exc()),
        )
        return pickle.dumps(contained)


class ParallelExecutor:
    """Ordered, fault-contained fan-out over a pluggable backend.

    Args:
        backend: ``"serial"`` (default: run in the calling thread),
            ``"thread"`` or ``"process"``.
        max_workers: Worker bound for the pool backends; defaults to
            ``os.cpu_count()`` capped at the batch size.

    Raises:
        ValueError: For unknown backends or a non-positive worker count.
    """

    def __init__(self, backend: str = "serial", max_workers: Optional[int] = None):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.backend = backend
        self.max_workers = max_workers
        self.stats: List[MapStats] = []

    @classmethod
    def from_env(cls, default: str = "serial") -> "ParallelExecutor":
        """Build from ``REPRO_EXECUTOR`` / ``REPRO_EXECUTOR_WORKERS``.

        Unset variables fall back to ``default`` workers/backend; invalid
        values raise exactly like the constructor.
        """
        backend = os.environ.get(ENV_BACKEND, default).strip().lower() or default
        workers_text = os.environ.get(ENV_WORKERS, "").strip()
        max_workers = int(workers_text) if workers_text else None
        return cls(backend, max_workers=max_workers)

    # ------------------------------------------------------------- mapping

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
        on_error: str = "raise",
        retry: Optional["object"] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        All tasks run to completion regardless of individual failures
        (fault containment): a failed task never cancels its siblings.
        Failures a retry policy classes as transient are re-attempted in
        follow-up rounds (deterministic backoff between rounds) before
        they count as failures at all.

        Args:
            fn: Task function (module-level for the process backend).
            items: Units of work.
            labels: Per-task labels for timings and errors; defaults to
                ``task[i]``.
            on_error: ``"raise"`` re-raises the first failure as an
                :class:`ExecutionError` after the whole batch finishes;
                ``"return"`` leaves each failure's :class:`ExecutionError`
                in its result slot instead.
            retry: A :class:`~repro.faults.retry.RetryPolicy` for
                transient failures; ``None`` applies the default policy
                when a fault plan is active, else no retries.

        Returns:
            Task results (or contained errors), in input order.

        Raises:
            ExecutionError: A task failed and ``on_error="raise"``.
            ValueError: For a bad ``on_error`` or mismatched label count.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(f"on_error must be 'raise' or 'return', got {on_error!r}")
        items = list(items)
        if labels is None:
            labels = [f"task[{i}]" for i in range(len(items))]
        else:
            labels = [str(label) for label in labels]
            if len(labels) != len(items):
                raise ValueError(f"{len(labels)} labels for {len(items)} items")
        if retry is None:
            from repro.faults.plan import active_plan
            from repro.faults.retry import default_retry_policy

            retry = default_retry_policy() if active_plan() is not None else None

        start = time.perf_counter()
        outcomes: List[Optional[TaskOutcome]] = [None] * len(items)
        with obs.span("exec/map", backend=self.backend, tasks=len(items)) as map_span:
            contexts: List[Optional[obs.SpanContext]] = [None] * len(items)
            if map_span is not None:
                contexts = [
                    obs.SpanContext(
                        parent_id=map_span.span_id,
                        prefix=f"{map_span.span_id}.t{i}",
                    )
                    for i in range(len(items))
                ]
            pending_idx = list(range(len(items)))
            attempt = 1
            retries = 0
            while pending_idx:
                round_outcomes = self._dispatch(
                    fn, [items[i] for i in pending_idx],
                    [labels[i] for i in pending_idx], attempt,
                    [contexts[i] for i in pending_idx],
                )
                for i, outcome in zip(pending_idx, round_outcomes):
                    payload = outcome.payload
                    if isinstance(payload, ExecutionError):
                        payload.attempts = max(payload.attempts, attempt)
                    outcomes[i] = outcome
                    obs.merge_capture(outcome.capture, outcome.collected_abs)
                if retry is None or attempt >= retry.max_attempts:
                    break
                if (
                    retry.max_deadline_s is not None
                    and time.perf_counter() - start >= retry.max_deadline_s
                ):
                    break
                retryable = [
                    i for i in pending_idx
                    if isinstance(outcomes[i].payload, ExecutionError)
                    and retry.retryable(outcomes[i].payload.cause_type)
                ]
                if not retryable:
                    break
                retries += len(retryable)
                from repro.faults import report as degradation

                degradation.record("exec/map", retried=len(retryable))
                obs.inc("retries", len(retryable), stage="exec/map")
                delay = retry.delay_s(attempt, labels[retryable[0]])
                if delay > 0:
                    time.sleep(delay)
                pending_idx = retryable
                attempt += 1
            if map_span is not None and retries:
                map_span.attrs["retries"] = retries
        wall_s = time.perf_counter() - start

        timings: List[TaskTiming] = []
        results: List[Any] = []
        first_error: Optional[ExecutionError] = None
        for label, outcome in zip(labels, outcomes):
            payload = outcome.payload
            failed = isinstance(payload, ExecutionError)
            timings.append(
                TaskTiming(
                    label=label,
                    seconds=outcome.seconds,
                    ok=not failed,
                    dispatch_bytes=outcome.dispatch_bytes,
                    result_bytes=outcome.result_bytes,
                )
            )
            results.append(payload)
            if failed and first_error is None:
                first_error = payload
        self.stats.append(
            MapStats(backend=self.backend, wall_s=wall_s, timings=timings, retries=retries)
        )
        if first_error is not None and on_error == "raise":
            raise first_error
        return results

    def _dispatch(
        self,
        fn: Callable[[Any], Any],
        items: List[Any],
        labels: List[str],
        attempt: int,
        contexts: List[Optional[obs.SpanContext]],
    ) -> List[TaskOutcome]:
        """Run one attempt round over the backend, results in input order."""
        if self.backend == "serial" or len(items) <= 1:
            outcomes = []
            for item, label, ctx in zip(items, labels, contexts):
                outcome = _timed_call(fn, item, label, attempt, ctx)
                outcome.collected_abs = time.perf_counter()
                outcomes.append(outcome)
            return outcomes
        return self._pooled(fn, items, labels, attempt, contexts)

    def _pooled(
        self, fn: Callable[[Any], Any], items: List[Any], labels: List[str],
        attempt: int, contexts: List[Optional[obs.SpanContext]],
    ) -> List[TaskOutcome]:
        """Fan a batch out over a worker pool, preserving input order."""
        workers = self.max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(items)))
        pool_cls = ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        packed = self.backend == "process"
        outcomes: List[Optional[TaskOutcome]] = [None] * len(items)
        dispatch_bytes: Dict[int, int] = {}
        with pool_cls(max_workers=workers) as pool:
            futures: Dict[Future, int] = {}
            for i, (item, label, ctx) in enumerate(zip(items, labels, contexts)):
                if packed:
                    # Pickle the task here, not inside the pool's feeder
                    # thread, so the dispatch size is an exact number and
                    # an unpicklable item is contained per-task.
                    try:
                        blob = pickle.dumps((fn, item, label, attempt, ctx))
                    except Exception as exc:
                        outcomes[i] = TaskOutcome(
                            0.0,
                            ExecutionError(
                                label, type(exc).__name__, str(exc),
                                traceback.format_exc(),
                            ),
                            collected_abs=time.perf_counter(),
                        )
                        continue
                    dispatch_bytes[i] = len(blob)
                    futures[pool.submit(_timed_call_packed, blob)] = i
                else:
                    futures[pool.submit(_timed_call, fn, item, label, attempt, ctx)] = i
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    i = futures[future]
                    try:
                        raw = future.result()
                        if packed:
                            outcome = pickle.loads(raw)
                            outcome.dispatch_bytes = dispatch_bytes.get(i, 0)
                            outcome.result_bytes = len(raw)
                            outcomes[i] = outcome
                        else:
                            outcomes[i] = raw
                    except Exception as exc:
                        # Transport-level failure (e.g. a crashed worker
                        # breaking the pool): contain it like an in-task
                        # error.
                        outcomes[i] = TaskOutcome(
                            0.0,
                            ExecutionError(
                                labels[i],
                                type(exc).__name__,
                                str(exc),
                                traceback.format_exc(),
                            ),
                            dispatch_bytes=dispatch_bytes.get(i, 0),
                        )
                    outcomes[i].collected_abs = time.perf_counter()
        return outcomes

    # ------------------------------------------------------------- timings

    @property
    def timings(self) -> List[TaskTiming]:
        """Every task timing recorded so far, across all ``map`` calls."""
        return [t for stats in self.stats for t in stats.timings]

    def clear_stats(self) -> None:
        """Drop accumulated timing records."""
        self.stats.clear()


def default_executor(executor: Optional[ParallelExecutor]) -> ParallelExecutor:
    """The executor to use: the given one, else ``from_env()``.

    Library entry points take ``executor=None`` and resolve it here, so a
    plain call obeys ``REPRO_EXECUTOR`` while tests can inject explicitly.
    """
    return executor if executor is not None else ParallelExecutor.from_env()
