"""Parallel execution layer: deterministic fan-out over independent work.

See :mod:`repro.exec.executor` for the design notes and the determinism
contract.
"""

from repro.exec.executor import (
    BACKENDS,
    ENV_BACKEND,
    ENV_WORKERS,
    ExecutionError,
    MapStats,
    ParallelExecutor,
    TaskTiming,
    default_executor,
)

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "ENV_WORKERS",
    "ExecutionError",
    "MapStats",
    "ParallelExecutor",
    "TaskTiming",
    "default_executor",
]
