"""repro — a reproduction of *Dissecting Video Server Selection Strategies
in the YouTube CDN* (Torres et al., IEEE ICDCS 2011).

The package has three layers:

* **World model** (:mod:`repro.geo`, :mod:`repro.net`, :mod:`repro.cdn`,
  :mod:`repro.workload`, :mod:`repro.sim`) — a generative simulator of the
  2010 YouTube CDN and of the five monitored edge networks, standing in for
  the paper's proprietary traces.
* **Measurement tools** (:mod:`repro.trace`, :mod:`repro.geoloc`,
  :mod:`repro.active`) — the Tstat-like flow collector, CBG delay-based
  geolocation, whois/AS mapping, ping campaigns and the PlanetLab-style
  active experiments.
* **Analysis pipeline** (:mod:`repro.core`, :mod:`repro.reporting`) — the
  paper's methodology: flow classification, video sessions, preferred data
  centers, and the cause analysis behind every table and figure.

Quick start::

    from repro.sim import run_scenario
    from repro.core import classify_flows, build_sessions

    result = run_scenario("EU1-ADSL", scale=0.01)
    flows = classify_flows(result.dataset.records)
    sessions = build_sessions(result.dataset.records, gap_s=1.0)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
