"""Client populations behind a vantage point.

Each monitored network hosts a set of client hosts (Table I's ``#Clients``
column) spread over its internal subnets (Figure 12's unit of analysis).
Per-client activity is heavy-tailed: a handful of hosts generate a large
share of the requests, as in any real edge trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.net.topology import Subnet, VantagePoint


@dataclass(frozen=True)
class Client:
    """One client host.

    Attributes:
        ip: The host's address (integer IPv4).
        subnet_name: Name of the internal subnet homing it.
        activity: Unnormalised request-rate weight.
    """

    ip: int
    subnet_name: str
    activity: float


class ClientPopulation:
    """The sampled client body of one vantage point."""

    def __init__(self, vantage: VantagePoint, clients: List[Client]):
        if not clients:
            raise ValueError("population must not be empty")
        self.vantage = vantage
        self._clients = clients
        weights = np.array([c.activity for c in clients], dtype=np.float64)
        self._cumulative = np.cumsum(weights)
        self._total = float(self._cumulative[-1])

    def __len__(self) -> int:
        return len(self._clients)

    def __iter__(self):
        return iter(self._clients)

    def sample(self, u: float) -> Client:
        """Sample a client proportionally to activity.

        Args:
            u: Uniform ``[0, 1)`` variate from the caller's RNG.
        """
        if not 0.0 <= u < 1.0:
            raise ValueError(f"u out of [0,1): {u}")
        index = int(np.searchsorted(self._cumulative, u * self._total, side="right"))
        return self._clients[min(index, len(self._clients) - 1)]

    def by_subnet(self) -> Dict[str, List[Client]]:
        """Clients grouped by subnet name."""
        groups: Dict[str, List[Client]] = {}
        for client in self._clients:
            groups.setdefault(client.subnet_name, []).append(client)
        return groups


def build_population(vantage: VantagePoint, num_clients: int, seed: int = 0) -> ClientPopulation:
    """Sample a client population for a vantage point.

    Clients are split across subnets by each subnet's ``client_share`` and
    given log-normal activity weights (sigma ≈ 1.2 yields the usual
    few-heavy-users skew).

    Args:
        vantage: The vantage point (its subnets define the address space).
        num_clients: Total clients to create.
        seed: RNG seed.

    Returns:
        The :class:`ClientPopulation`.

    Raises:
        ValueError: If a subnet is too small for its client share.
    """
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    if not vantage.subnets:
        raise ValueError(f"vantage point {vantage.name} has no subnets")
    rng = np.random.default_rng(seed)
    clients: List[Client] = []
    remaining = num_clients
    for i, subnet in enumerate(vantage.subnets):
        if i == len(vantage.subnets) - 1:
            count = remaining
        else:
            count = min(remaining, round(num_clients * subnet.client_share))
        remaining -= count
        count = max(count, 1) if remaining >= 0 else count
        clients.extend(_clients_in_subnet(subnet, count, rng))
    return ClientPopulation(vantage, clients)


def _clients_in_subnet(subnet: Subnet, count: int, rng: np.random.Generator) -> List[Client]:
    capacity = subnet.network.num_addresses - 2
    if count > capacity:
        raise ValueError(
            f"subnet {subnet.name} ({subnet.network}) holds at most {capacity} clients, "
            f"requested {count}"
        )
    # Sample distinct host offsets (skip network/broadcast addresses).
    offsets = rng.choice(np.arange(1, capacity + 1), size=count, replace=False)
    activities = rng.lognormal(mean=0.0, sigma=1.2, size=count)
    return [
        Client(
            ip=subnet.network.first + int(offset),
            subnet_name=subnet.name,
            activity=float(max(activity, 1e-3)),
        )
        for offset, activity in zip(offsets, activities)
    ]
