"""Request-stream generation for one vantage point's simulated week.

Combines the diurnal profile, the client population and the video catalog
into a time-ordered stream of :class:`Request` events.  Interactions
(resolution switches, seeks) append loosely-spaced follow-up requests for
the same client/video pair.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.cdn.catalog import Resolution, Video, VideoCatalog
from repro.workload.clients import Client, ClientPopulation
from repro.workload.diurnal import DiurnalProfile
from repro.workload.interactions import InteractionModel

#: Resolution popularity in the 2010-era mix (360p dominates).
_RESOLUTION_WEIGHTS = (
    (Resolution.R240, 0.20),
    (Resolution.R360, 0.55),
    (Resolution.R480, 0.20),
    (Resolution.R720, 0.05),
)


@dataclass(frozen=True)
class Request:
    """One user video request.

    Attributes:
        t_s: Request time, seconds from trace start.
        client: Requesting client.
        video: Requested video.
        resolution: Requested resolution.
        is_interaction: Whether this is a follow-up player interaction
            rather than a fresh playback.
    """

    t_s: float
    client: Client
    video: Video
    resolution: Resolution
    is_interaction: bool = False


def sample_resolution(rng: random.Random) -> Resolution:
    """Sample a playback resolution from the 2010-era mix."""
    u = rng.random()
    acc = 0.0
    for resolution, weight in _RESOLUTION_WEIGHTS:
        acc += weight
        if u < acc:
            return resolution
    return _RESOLUTION_WEIGHTS[-1][0]


class RequestGenerator:
    """Generates a vantage point's request stream for a simulated window.

    Args:
        population: Client population.
        catalog: Video catalog.
        profile: Diurnal/weekly rate profile.
        requests_per_day: Mean primary (non-interaction) requests per day.
        interactions: Interaction model (defaults to the standard one).
        seed: RNG seed.
    """

    def __init__(
        self,
        population: ClientPopulation,
        catalog: VideoCatalog,
        profile: DiurnalProfile,
        requests_per_day: float,
        interactions: Optional[InteractionModel] = None,
        seed: int = 0,
    ):
        if requests_per_day <= 0:
            raise ValueError("requests_per_day must be positive")
        self._population = population
        self._catalog = catalog
        self._profile = profile
        self._requests_per_day = requests_per_day
        self._interactions = interactions if interactions is not None else InteractionModel()
        self._seed = seed

    def generate(self, duration_s: float = 7 * 86400.0) -> List[Request]:
        """Generate the time-ordered request stream.

        Hourly counts are Poisson with rate ``requests_per_day / 24`` scaled
        by the profile; timestamps are uniform inside each hour.

        Args:
            duration_s: Window length in seconds (default one week).

        Returns:
            Requests sorted by time.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        rng = random.Random(self._seed)
        base_per_hour = self._requests_per_day / 24.0
        requests: List[Request] = []
        num_hours = int(duration_s // 3600.0)
        remainder_s = duration_s - num_hours * 3600.0
        for hour in range(num_hours + (1 if remainder_s > 0 else 0)):
            hour_start = hour * 3600.0
            span = min(3600.0, duration_s - hour_start)
            rate = base_per_hour * self._profile.multiplier(hour_start) * (span / 3600.0)
            count = _poisson(rate, rng)
            for _ in range(count):
                t = hour_start + rng.uniform(0.0, span)
                requests.extend(self._one_playback(t, rng, duration_s))
        requests.sort(key=lambda r: r.t_s)
        return requests

    def _one_playback(
        self, t_s: float, rng: random.Random, duration_s: float
    ) -> Iterator[Request]:
        client = self._population.sample(rng.random())
        video = self._catalog.sample(rng.random(), t_s)
        resolution = sample_resolution(rng)
        yield Request(t_s=t_s, client=client, video=video, resolution=resolution)
        cursor = t_s
        current_resolution = resolution
        for gap in self._interactions.draw_gaps(rng):
            cursor += gap
            if cursor >= duration_s:
                break
            current_resolution = self._interactions.next_resolution(current_resolution, rng)
            yield Request(
                t_s=cursor,
                client=client,
                video=video,
                resolution=current_resolution,
                is_interaction=True,
            )


def _poisson(rate: float, rng: random.Random) -> int:
    """Poisson sample via inversion (small rates) or normal approximation."""
    if rate <= 0.0:
        return 0
    if rate > 50.0:
        # Normal approximation is plenty for hourly arrival counts.
        return max(0, round(rng.gauss(rate, rate**0.5)))
    threshold = math.exp(-rate)
    k = 0
    product = rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k
