"""Client-side workload: who asks for what, when.

Produces the request streams that drive the simulated week at each vantage
point: diurnal day/night arrival patterns (visible in Figure 11's bottom
panel), heavy-tailed per-client activity, Zipf video popularity with
"video of the day" spikes, and the user interactions (resolution switches,
seeks) that create the loosely-spaced extra flows behind Figure 5's
session-gap sensitivity.
"""

from repro.workload.diurnal import DiurnalProfile, CAMPUS_SHAPE, RESIDENTIAL_SHAPE
from repro.workload.clients import Client, ClientPopulation, build_population
from repro.workload.interactions import InteractionModel
from repro.workload.requests import Request, RequestGenerator

__all__ = [
    "DiurnalProfile",
    "CAMPUS_SHAPE",
    "RESIDENTIAL_SHAPE",
    "Client",
    "ClientPopulation",
    "build_population",
    "InteractionModel",
    "Request",
    "RequestGenerator",
]
