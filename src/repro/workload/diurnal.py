"""Diurnal and weekly arrival-rate profiles.

"All datasets exhibit a clear day/night pattern in the number of requests"
(Section VII-A).  A profile maps absolute simulation time to a rate
multiplier around the daily mean; the request generator scales its hourly
Poisson rates by it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

#: Hour-of-day shape for a campus network: builds through the working day,
#: peaks late afternoon/evening, quiet overnight.  Values average to ~1.
CAMPUS_SHAPE: Tuple[float, ...] = (
    0.35, 0.22, 0.15, 0.12, 0.10, 0.12,  # 00-05
    0.25, 0.45, 0.80, 1.10, 1.30, 1.40,  # 06-11
    1.50, 1.55, 1.55, 1.60, 1.65, 1.70,  # 12-17
    1.75, 1.80, 1.75, 1.55, 1.15, 0.65,  # 18-23
)

#: Hour-of-day shape for residential (ADSL/FTTH) customers: morning bump,
#: strong evening prime-time peak.
RESIDENTIAL_SHAPE: Tuple[float, ...] = (
    0.40, 0.25, 0.15, 0.10, 0.08, 0.10,  # 00-05
    0.20, 0.40, 0.65, 0.85, 1.00, 1.10,  # 06-11
    1.20, 1.25, 1.20, 1.25, 1.35, 1.50,  # 12-17
    1.70, 1.95, 2.10, 2.00, 1.55, 0.85,  # 18-23
)

#: Day-of-week multipliers starting Saturday (the paper's traces start
#: Saturday, September 4th 2010 at 12:00 am local time).
_CAMPUS_WEEK: Tuple[float, ...] = (0.75, 0.70, 1.05, 1.10, 1.10, 1.10, 1.05)
_RESIDENTIAL_WEEK: Tuple[float, ...] = (1.15, 1.20, 0.95, 0.95, 0.95, 0.95, 1.05)


@dataclass(frozen=True)
class DiurnalProfile:
    """Arrival-rate multiplier as a function of simulation time.

    Attributes:
        hourly_shape: 24 multipliers indexed by local hour of day.
        weekly_shape: 7 multipliers indexed by day since trace start.
    """

    hourly_shape: Tuple[float, ...]
    weekly_shape: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.hourly_shape) != 24:
            raise ValueError("hourly_shape must have 24 entries")
        if len(self.weekly_shape) != 7:
            raise ValueError("weekly_shape must have 7 entries")
        if min(self.hourly_shape) < 0 or min(self.weekly_shape) < 0:
            raise ValueError("shape multipliers must be non-negative")

    def multiplier(self, t_s: float) -> float:
        """Rate multiplier at an absolute simulation time (seconds)."""
        if t_s < 0:
            raise ValueError("time must be non-negative")
        hour_of_day = int(t_s // 3600.0) % 24
        day = int(t_s // 86400.0) % 7
        return self.hourly_shape[hour_of_day] * self.weekly_shape[day]

    def hourly_multipliers(self, hours: int) -> Sequence[float]:
        """Multipliers for each of the first ``hours`` trace hours."""
        return [self.multiplier(h * 3600.0) for h in range(hours)]

    @classmethod
    def campus(cls) -> "DiurnalProfile":
        """Profile for a university campus vantage point."""
        return cls(hourly_shape=CAMPUS_SHAPE, weekly_shape=_CAMPUS_WEEK)

    @classmethod
    def residential(cls) -> "DiurnalProfile":
        """Profile for a residential ISP vantage point."""
        return cls(hourly_shape=RESIDENTIAL_SHAPE, weekly_shape=_RESIDENTIAL_WEEK)

    @classmethod
    def flat(cls) -> "DiurnalProfile":
        """Constant-rate profile (useful in unit tests)."""
        return cls(hourly_shape=(1.0,) * 24, weekly_shape=(1.0,) * 7)
