"""Content-addressed, process-safe artifact store.

Values are pickled stage outputs (simulation results, RTT matrices, metric
rows, rendered reports) addressed by the sha256 keys of
:func:`repro.artifacts.keys.stage_key`.  Writes go through a temp file in
the destination directory followed by an atomic :func:`os.replace`, so any
number of concurrent processes — e.g. the workers of a ``process``-backend
:class:`~repro.exec.ParallelExecutor` — can share one cache directory
without locks: a reader sees either the complete artifact or nothing.

Layout, under ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``)::

    objects/<k[:2]>/<k[2:]>.pkl   one pickled artifact per key
    events.jsonl                  append-only hit/miss/put ledger

The ledger makes counters durable across processes: every store instance
appends one JSON line per cache event (POSIX ``O_APPEND`` keeps concurrent
small appends intact), and ``repro cache stats`` aggregates them next to
the on-disk object census.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import obs

#: Environment variable naming the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable switching the default store off (``0``/``off``/
#: ``false``/``no``); anything else — including unset — leaves it on.
ENV_CACHE = "REPRO_CACHE"

#: Default cache location when ``REPRO_CACHE_DIR`` is unset.
DEFAULT_CACHE_DIR = "~/.cache/repro"

_OFF_VALUES = ("0", "off", "false", "no")

_MISS = object()


@dataclass
class CacheStats:
    """In-process cache counters for one store instance.

    Attributes:
        hits: Artifacts served from disk.
        misses: Lookups that found nothing (or a corrupt object).
        puts: Artifacts written.
        quarantined: Corrupt objects moved aside for recomputation.
        bytes_read: Total pickled bytes served from disk.
        bytes_written: Total pickled bytes written.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a JSON-ready dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "quarantined": self.quarantined,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


@dataclass
class StageCounters:
    """Lifetime per-stage event tally (aggregated from the ledger)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    _BY_EVENT = {
        "hit": "hits",
        "miss": "misses",
        "put": "puts",
        "quarantine": "quarantined",
    }

    def record(self, event: str, num_bytes: int) -> None:
        """Fold one ledger event into the tally."""
        attr = self._BY_EVENT.get(event)
        if attr is None:
            return
        setattr(self, attr, getattr(self, attr) + 1)
        if event == "hit":
            self.bytes_read += num_bytes
        elif event == "put":
            self.bytes_written += num_bytes

    def as_dict(self) -> Dict[str, int]:
        """The counters as a JSON-ready dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "quarantined": self.quarantined,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


def cache_enabled() -> bool:
    """Whether the default store is enabled (``REPRO_CACHE``)."""
    return os.environ.get(ENV_CACHE, "").strip().lower() not in _OFF_VALUES


def cache_root() -> Path:
    """The configured cache directory (not necessarily existing yet)."""
    return Path(
        os.environ.get(ENV_CACHE_DIR, "").strip() or DEFAULT_CACHE_DIR
    ).expanduser()


class ArtifactStore:
    """A content-addressed pickle store rooted at one directory.

    Args:
        root: Cache directory; defaults to :func:`cache_root` (which reads
            ``REPRO_CACHE_DIR``).  Created lazily on first write.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else cache_root()
        self.stats = CacheStats()

    # ------------------------------------------------------------ addressing

    @property
    def objects_dir(self) -> Path:
        """Directory holding the pickled artifacts."""
        return self.root / "objects"

    @property
    def ledger_path(self) -> Path:
        """The append-only event ledger."""
        return self.root / "events.jsonl"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt objects are moved aside for post-mortems."""
        return self.root / "quarantine"

    def object_path(self, key: str) -> Path:
        """Where the artifact for ``key`` lives (existing or not)."""
        if len(key) < 3:
            raise ValueError(f"implausible cache key {key!r}")
        return self.objects_dir / key[:2] / f"{key[2:]}.pkl"

    # --------------------------------------------------------------- get/put

    def has(self, key: str) -> bool:
        """Whether an artifact exists for ``key`` (no counters touched)."""
        return self.object_path(key).is_file()

    def get(self, key: str, default: Any = None, stage: str = "") -> Any:
        """Load the artifact for ``key``, or ``default`` on a miss.

        A corrupt or truncated object (e.g. a machine died mid-write of a
        pre-atomic-rename temp file that was then moved manually) counts
        as a miss: the object is *quarantined* — moved under
        ``quarantine/`` for post-mortems — so the caller recomputes and
        the next put heals the slot.  An active fault plan can inject
        exactly this failure mode (``artifact_corrupt``): the read
        surfaces a truncated blob, keyed deterministically on the cache
        key, and flows through the same quarantine path.

        Args:
            key: The stage key.
            default: Returned on a miss.
            stage: Stage name for the event ledger.
        """
        start = time.perf_counter()
        try:
            return self._get(key, default, stage)
        finally:
            obs.observe(
                "cache.get_seconds", time.perf_counter() - start, stage=stage
            )

    def _get(self, key: str, default: Any, stage: str) -> Any:
        path = self.object_path(key)
        try:
            blob = path.read_bytes()
            blob = self._maybe_corrupt(key, blob)
            value = pickle.loads(blob)
        except FileNotFoundError:
            self._record("miss", stage, 0)
            return default
        except Exception:
            # Unreadable artifact: quarantine it so the next put heals
            # the slot and the bad bytes stay inspectable.
            self._quarantine(path, stage)
            self._record("miss", stage, 0)
            return default
        self.stats.bytes_read += len(blob)
        self._record("hit", stage, len(blob))
        try:
            os.utime(path)  # LRU signal for gc()
        except OSError:
            pass
        return value

    @staticmethod
    def _maybe_corrupt(key: str, blob: bytes) -> bytes:
        """Truncate the blob when the ambient fault plan says so.

        Truncation removes the pickle STOP opcode, so the injected blob
        always fails to load and exercises the genuine quarantine path.
        """
        from repro.faults.plan import active_plan

        plan = active_plan()
        if plan is not None and plan.decide(
            plan.artifact_corrupt, "artifacts/corrupt", key
        ):
            return blob[: len(blob) // 2]
        return blob

    def _quarantine(self, path: Path, stage: str) -> None:
        """Move a corrupt object out of ``objects/`` (best-effort)."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / f"{path.parent.name}{path.name}"
            os.replace(path, target)
        except OSError:
            # A concurrent reader may have quarantined (or a writer
            # healed) it first; either way the slot is no longer ours.
            return
        self.stats.quarantined += 1
        self._record("quarantine", stage, 0)
        from repro.faults import report as degradation

        degradation.record("artifacts/store", quarantined=1, degraded=1)

    def put(self, key: str, value: Any, stage: str = "") -> int:
        """Atomically write the artifact for ``key``.

        Returns:
            The pickled size in bytes.

        Raises:
            pickle.PicklingError: For unpicklable values (nothing is
                written).
        """
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        path = self.object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.bytes_written += len(blob)
        self._record("put", stage, len(blob))
        return len(blob)

    def get_or_compute(self, key: str, compute, stage: str = "") -> Any:
        """The artifact for ``key``, computing and storing it on a miss."""
        value = self.get(key, _MISS, stage=stage)
        if value is not _MISS:
            return value
        value = compute()
        self.put(key, value, stage=stage)
        return value

    # -------------------------------------------------------------- counters

    #: Ledger event → observability counter (see ``repro.obs``).
    _OBS_COUNTERS = {
        "hit": "cache.hit",
        "miss": "cache.miss",
        "put": "cache.put",
        "quarantine": "cache.quarantined",
    }

    def _record(self, event: str, stage: str, num_bytes: int) -> None:
        """Append one event to the ledger (best-effort) and count it."""
        if event == "hit":
            self.stats.hits += 1
        elif event == "miss":
            self.stats.misses += 1
        elif event == "put":
            self.stats.puts += 1
        counter = self._OBS_COUNTERS.get(event)
        if counter is not None:
            obs.inc(counter, stage=stage or "(unlabelled)")
        line = json.dumps(
            {"event": event, "stage": stage, "bytes": num_bytes},
            separators=(",", ":"),
        )
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.ledger_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            pass  # stats are advisory; never fail the stage over them

    def lifetime_counters(self) -> Dict[str, Any]:
        """Aggregate the event ledger: totals plus a per-stage breakdown."""
        total = StageCounters()
        stages: Dict[str, StageCounters] = {}
        try:
            with open(self.ledger_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    event = entry.get("event", "")
                    stage = entry.get("stage", "") or "(unlabelled)"
                    num_bytes = int(entry.get("bytes", 0))
                    total.record(event, num_bytes)
                    stages.setdefault(stage, StageCounters()).record(event, num_bytes)
        except OSError:
            pass
        return {
            "total": total.as_dict(),
            "stages": {name: c.as_dict() for name, c in sorted(stages.items())},
        }

    # ------------------------------------------------------------ management

    def iter_objects(self) -> Iterator[Tuple[Path, int, float]]:
        """Yield ``(path, size_bytes, mtime)`` for every stored artifact."""
        if not self.objects_dir.is_dir():
            return
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.pkl")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                yield path, stat.st_size, stat.st_mtime

    def disk_stats(self) -> Dict[str, int]:
        """Object count and total pickled bytes on disk."""
        objects = 0
        total_bytes = 0
        for _, size, _ in self.iter_objects():
            objects += 1
            total_bytes += size
        return {"objects": objects, "total_bytes": total_bytes}

    def stats_summary(self) -> Dict[str, Any]:
        """Everything ``repro cache stats`` reports, as one JSON-ready dict."""
        return {
            "root": str(self.root),
            "disk": self.disk_stats(),
            "session": self.stats.as_dict(),
            "lifetime": self.lifetime_counters(),
        }

    def clear(self) -> int:
        """Delete every artifact, the quarantine and the ledger.

        Returns:
            Objects removed (quarantined ones not counted).
        """
        removed = sum(1 for _ in self.iter_objects())
        shutil.rmtree(self.objects_dir, ignore_errors=True)
        shutil.rmtree(self.quarantine_dir, ignore_errors=True)
        try:
            self.ledger_path.unlink()
        except OSError:
            pass
        return removed

    def gc(self, max_bytes: int) -> Tuple[int, int]:
        """Evict least-recently-used artifacts down to a size budget.

        Hits refresh an artifact's mtime, so eviction order approximates
        LRU across every process that shared the cache.

        Args:
            max_bytes: Target ceiling for the objects' total size.

        Returns:
            ``(objects_removed, bytes_freed)``.

        Raises:
            ValueError: For a negative budget.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries: List[Tuple[Path, int, float]] = list(self.iter_objects())
        total = sum(size for _, size, _ in entries)
        if total <= max_bytes:
            return (0, 0)
        entries.sort(key=lambda entry: entry[2])  # oldest mtime first
        removed = 0
        freed = 0
        for path, size, _ in entries:
            if total - freed <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        return (removed, freed)


_default: Optional[ArtifactStore] = None
_default_config: Optional[Tuple[bool, str]] = None


def default_store() -> Optional[ArtifactStore]:
    """The process-wide store, or ``None`` when caching is disabled.

    Re-resolved against the environment on every call so tests (and
    subprocesses) can redirect or disable the cache by setting
    ``REPRO_CACHE_DIR`` / ``REPRO_CACHE``; the instance — and its session
    counters — survives as long as the configuration is unchanged.
    """
    global _default, _default_config
    config = (cache_enabled(), str(cache_root()))
    if config != _default_config:
        _default = ArtifactStore(config[1]) if config[0] else None
        _default_config = config
    return _default


def reset_default_store() -> None:
    """Forget the cached default-store instance (tests)."""
    global _default, _default_config
    _default = None
    _default_config = None
