"""Cache-key derivation: canonical serialisation and stage digests.

A cache key must change exactly when a stage's output could change.  The
ingredients are therefore (1) the *stage name*, (2) a *canonical* form of
every input that reaches the stage — scenario/config dicts, master seeds,
scales, windows — and (3) a *code-version tag* that is bumped whenever the
simulator's or analysis code's output-affecting behaviour changes.

Canonicalisation is strict by design: only values whose equality implies
output equality are accepted (plain scalars, sequences, mappings, enums,
dataclasses, and objects exposing ``cache_fingerprint()``).  Anything else
raises :class:`CanonicalizationError` — an unhashable input must never be
silently folded into a key, because two different worlds would then share
one artifact.

**The fingerprint rule for worlds.**  A
:class:`~repro.sim.scenarios.ScenarioWorld` participates in caching iff
``policy_kind`` is set: ``build_config()`` then returns the canonical
build inputs ``(spec, scale, seed, duration_s, policy_kind)`` that key
its stages.  ``policy_kind=None`` is the opt-out for worlds that are
*not* a pure function of those inputs — shared-world facades (their
results depend on every co-resident vantage point) and hand-assembled
test worlds.  The opt-out is reserved for exactly those construction
paths: worlds built by the spec layer
(:func:`repro.spec.model.apply_spec`, grid points, registry scenarios)
always come out of :func:`~repro.sim.scenarios.build_world` with a
policy kind and therefore always carry a full fingerprint — a
declaratively-described world can never silently fall out of the cache.
Declarative values (:class:`~repro.spec.info.ScenarioInfo`,
:class:`~repro.spec.model.Spec`, grid specs/points) plug into keys via
their ``cache_fingerprint()`` hooks, so equal descriptions — however
assembled, whatever order their deltas were written in — produce equal
keys.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from typing import Any, Optional

#: Bump whenever a change to simulator or analysis code alters any stage's
#: output for unchanged inputs; every existing artifact then misses.
CODE_VERSION = "2"

#: Environment override for the code-version tag (tests use it to force
#: invalidation without editing source).
ENV_CODE_VERSION = "REPRO_CODE_VERSION"


class CanonicalizationError(TypeError):
    """A value cannot be canonicalised into a cache key."""


def code_version() -> str:
    """The active code-version tag (``REPRO_CODE_VERSION`` wins)."""
    return os.environ.get(ENV_CODE_VERSION, "").strip() or CODE_VERSION


def canonicalize(value: Any) -> Any:
    """Reduce a value to a JSON-serialisable canonical form.

    The form is stable across processes and Python versions: mappings are
    rendered as key-sorted pair lists, sets are sorted, dataclasses carry
    their type name, floats keep their shortest round-trip repr (via
    ``json``), and enums serialise by class and member name.

    Args:
        value: The value to canonicalise.

    Returns:
        A composition of dicts, lists, strings, numbers, bools and None.

    Raises:
        CanonicalizationError: For values with no canonical form.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "member": value.name}
    # An explicit fingerprint beats the structural dataclass form: a type
    # defines one exactly when its identity differs from its fields (e.g.
    # order-sensitive parts, derived internal state).
    fingerprint = getattr(value, "cache_fingerprint", None)
    if callable(fingerprint):
        return {"__fingerprint__": type(value).__name__,
                "value": canonicalize(fingerprint())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, "fields": fields}
    if isinstance(value, dict):
        pairs = [[canonicalize(k), canonicalize(v)] for k, v in value.items()]
        pairs.sort(key=lambda pair: _dumps(pair[0]))
        return {"__map__": pairs}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [canonicalize(item) for item in value]
        items.sort(key=_dumps)
        return {"__set__": items}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    raise CanonicalizationError(
        f"cannot canonicalise {type(value).__name__!r} into a cache key; "
        "give it a cache_fingerprint() method or pass primitive inputs"
    )


def _dumps(canonical: Any) -> str:
    """Deterministic JSON text of an already-canonical value."""
    return json.dumps(canonical, sort_keys=True, separators=(",", ":"))


def stage_key(stage: str, config: Any, version: Optional[str] = None) -> str:
    """The sha256 cache key of one stage invocation.

    Args:
        stage: Stage name (``"sim/run_week"``).
        config: Everything the stage's output depends on.  Canonicalised
            here — pass raw values (dataclasses, dicts, seeds), never
            pre-canonicalised forms, or keys will not line up.
        version: Code-version tag; default :func:`code_version`.

    Returns:
        A 64-character hex digest.

    Raises:
        CanonicalizationError: If the config cannot be canonicalised.
    """
    document = {
        "stage": stage,
        "code_version": version if version is not None else code_version(),
        "config": canonicalize(config),
    }
    # An *active* fault plan changes what stages produce, so it must
    # change their keys: faulted artifacts live in their own (seed, plan)
    # namespace and can never shadow — or be shadowed by — clean ones.
    # Inert plans (all rates zero) leave keys untouched, which is what
    # makes a zero-fault run byte-identical to a plain run.
    from repro.faults.plan import active_plan

    plan = active_plan()
    if plan is not None:
        document["faults"] = canonicalize(plan)
    return hashlib.sha256(_dumps(document).encode("utf-8")).hexdigest()
