"""Stage-level memoization: the ``@memoized_stage`` decorator.

Wrapping a *deterministic* stage function memoizes it through the default
:class:`~repro.artifacts.store.ArtifactStore`: the call's bound arguments
are canonicalised into a :func:`~repro.artifacts.keys.stage_key` and the
return value is pickled under it.  A later call with equal inputs — in
this process, another process, or next week — loads the artifact instead
of recomputing.

The contract mirrors the executor's determinism contract: the wrapped
function's output must depend only on its (canonicalisable) arguments.
Arguments that merely steer *how* the work is done, not *what* it produces
— an ``executor``, a progress callback — are excluded with ``ignore=``.

The wrapper exposes ``cache_key(*args, **kwargs)`` so orchestration layers
can pre-check the store and fan out only the missing work::

    @memoized_stage("sim/shared_study", ignore=("executor",))
    def run_shared_study(scale=0.02, seed=7, executor=None): ...

    key = run_shared_study.cache_key(scale=0.05)   # no work done
"""

from __future__ import annotations

import functools
import inspect
from typing import Callable, Sequence

from repro import obs
from repro.artifacts.keys import stage_key
from repro.artifacts.store import default_store

_MISS = object()


def memoized_stage(
    stage: str,
    ignore: Sequence[str] = (),
) -> Callable[[Callable], Callable]:
    """Decorator: disk-memoize a deterministic stage function.

    Args:
        stage: Stage name, namespaced like ``"sim/run_week"`` — part of
            the cache key, so renaming it invalidates existing artifacts.
        ignore: Parameter names excluded from the key (mechanical knobs
            that cannot change the output).

    Returns:
        The decorating function.  The wrapper bypasses the cache entirely
        when the default store is disabled, and exposes ``cache_key()``,
        ``stage`` and ``__wrapped__``.
    """
    ignored = frozenset(ignore)

    def decorate(fn: Callable) -> Callable:
        signature = inspect.signature(fn)
        unknown = ignored - set(signature.parameters)
        if unknown:
            raise ValueError(
                f"memoized_stage({stage!r}): ignored parameters "
                f"{sorted(unknown)} not in {fn.__name__}'s signature"
            )

        def cache_key(*args, **kwargs) -> str:
            """The stage key this call would hit (no work performed)."""
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            config = {
                name: value
                for name, value in bound.arguments.items()
                if name not in ignored
            }
            return stage_key(stage, config)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            # The span shows whether this stage call was served from
            # cache (``cached`` attribute) and how long it took either
            # way; a ``None`` active span means tracing is off.
            with obs.span(f"stage/{stage}") as active:
                store = default_store()
                if store is None:
                    return fn(*args, **kwargs)
                key = cache_key(*args, **kwargs)
                value = store.get(key, _MISS, stage=stage)
                if active is not None:
                    active.attrs["cached"] = value is not _MISS
                if value is not _MISS:
                    return value
                value = fn(*args, **kwargs)
                store.put(key, value, stage=stage)
                return value

        wrapper.cache_key = cache_key
        wrapper.stage = stage
        return wrapper

    return decorate
