"""Content-addressed artifact store and stage-level memoization.

The study's stages are deterministic functions of (config, master seed,
code version) — PR 1's cross-backend byte-identity made that a tested
contract — so their outputs are cacheable by content address.  This
package supplies the three layers:

* :mod:`repro.artifacts.keys` — canonical serialisation and sha256 stage
  keys over (stage name, canonical config, code-version tag).
* :mod:`repro.artifacts.store` — the process-safe on-disk store
  (``REPRO_CACHE_DIR``, default ``~/.cache/repro``), with atomic writes,
  durable hit/miss/bytes counters, ``clear()`` and LRU ``gc()``.
* :mod:`repro.artifacts.memo` — the ``@memoized_stage`` decorator wiring
  the two into any deterministic stage function.

Warm re-runs and sweeps then pay only for changed stages: an N-variant
sweep simulates the shared base world once, and a re-run of an unchanged
study is pure artifact loads.
"""

from repro.artifacts.keys import (
    CODE_VERSION,
    CanonicalizationError,
    ENV_CODE_VERSION,
    canonicalize,
    code_version,
    stage_key,
)
from repro.artifacts.memo import memoized_stage
from repro.artifacts.store import (
    ArtifactStore,
    CacheStats,
    DEFAULT_CACHE_DIR,
    ENV_CACHE,
    ENV_CACHE_DIR,
    cache_enabled,
    cache_root,
    default_store,
    reset_default_store,
)

__all__ = [
    "ArtifactStore",
    "CacheStats",
    "CanonicalizationError",
    "CODE_VERSION",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE",
    "ENV_CACHE_DIR",
    "ENV_CODE_VERSION",
    "cache_enabled",
    "cache_root",
    "canonicalize",
    "code_version",
    "default_store",
    "memoized_stage",
    "reset_default_store",
    "stage_key",
]
