"""Plain-text table rendering for the regenerated paper tables."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte volume (GB with two decimals, like Table I)."""
    return f"{num_bytes / 1e9:.2f}"


def format_fraction(fraction: float, decimals: int = 1) -> str:
    """A fraction as a percentage string (``0.123`` → ``"12.3"``)."""
    return f"{fraction * 100:.{decimals}f}"


class TextTable:
    """A simple fixed-width text table.

    Args:
        headers: Column headers.
        title: Optional table title rendered above the header row.
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        if not headers:
            raise ValueError("a table needs at least one column")
        self._headers = [str(h) for h in headers]
        self._rows: List[List[str]] = []
        self._title = title

    def add_row(self, *cells: object) -> None:
        """Append a row (cells are str()-converted).

        Raises:
            ValueError: If the cell count does not match the header count.
        """
        if len(cells) != len(self._headers):
            raise ValueError(
                f"expected {len(self._headers)} cells, got {len(cells)}"
            )
        self._rows.append([str(c) for c in cells])

    @property
    def num_rows(self) -> int:
        """Number of data rows."""
        return len(self._rows)

    def render(self) -> str:
        """The formatted table."""
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

        lines: List[str] = []
        if self._title:
            lines.append(self._title)
        lines.append(fmt(self._headers))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
