"""Gnuplot-ready data export.

The paper's figures are classic gnuplot CDFs and time series; this module
writes the regenerated data in the same spirit: whitespace-separated
``.dat`` files with a commented header, one per curve or one multi-column
file per figure, plus a minimal ``.gp`` driver script so

    gnuplot fig09.gp

renders a figure immediately.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.reporting.series import Cdf, Series

PathLike = Union[str, Path]


def write_cdf_dat(cdf: Cdf, path: PathLike, label: str = "value", max_points: int = 400) -> Path:
    """Write one CDF as ``value  cumulative_fraction`` rows."""
    path = Path(path)
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# CDF of {label} (n={len(cdf)})\n")
        handle.write(f"# {label}  cumulative_fraction\n")
        for value, fraction in cdf.points(max_points=max_points):
            handle.write(f"{value:.6g} {fraction:.6f}\n")
    return path


def write_series_dat(series: Sequence[Series], path: PathLike, x_label: str = "x") -> Path:
    """Write aligned series as one multi-column file.

    All series must share the same x values (true for the hourly series the
    figures use).

    Raises:
        ValueError: On empty input or misaligned x values.
    """
    if not series:
        raise ValueError("no series to write")
    xs = series[0].xs
    for s in series[1:]:
        if s.xs != xs:
            raise ValueError(f"series {s.label!r} has different x values")
    path = Path(path)
    with open(path, "w", encoding="ascii") as handle:
        labels = "  ".join(s.label.replace(" ", "_") for s in series)
        handle.write(f"# {x_label}  {labels}\n")
        for i, x in enumerate(xs):
            row = " ".join(f"{s.ys[i]:.6g}" for s in series)
            handle.write(f"{x:.6g} {row}\n")
    return path


def write_gnuplot_script(
    dat_files: Mapping[str, PathLike],
    path: PathLike,
    title: str,
    x_label: str,
    y_label: str,
    logscale_x: bool = False,
) -> Path:
    """Write a minimal gnuplot driver plotting column 2 of each file.

    Args:
        dat_files: Mapping curve title → ``.dat`` path.
        path: Output ``.gp`` path.
        title: Plot title.
        x_label: X axis label.
        y_label: Y axis label.
        logscale_x: Use a logarithmic x axis (Figures 4 and 13).

    Raises:
        ValueError: With no curves.
    """
    if not dat_files:
        raise ValueError("no curves to plot")
    path = Path(path)
    lines: List[str] = [
        f'set title "{title}"',
        f'set xlabel "{x_label}"',
        f'set ylabel "{y_label}"',
        "set key bottom right",
        "set grid",
    ]
    if logscale_x:
        lines.append("set logscale x")
    plot_parts = [
        f'"{Path(dat).name}" using 1:2 with lines title "{curve}"'
        for curve, dat in dat_files.items()
    ]
    lines.append("plot " + ", \\\n     ".join(plot_parts))
    lines.append("pause -1")
    path.write_text("\n".join(lines) + "\n", encoding="ascii")
    return path


def export_figure_cdfs(
    cdfs: Mapping[str, Cdf],
    out_dir: PathLike,
    figure_slug: str,
    x_label: str,
    logscale_x: bool = False,
) -> Path:
    """Export one CDF figure: a ``.dat`` per curve plus the ``.gp`` driver.

    Returns:
        Path of the driver script.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    dat_files: Dict[str, Path] = {}
    for curve, cdf in cdfs.items():
        slug = curve.lower().replace(" ", "-").replace("/", "-")
        dat_files[curve] = write_cdf_dat(
            cdf, out_dir / f"{figure_slug}_{slug}.dat", label=x_label
        )
    return write_gnuplot_script(
        dat_files,
        out_dir / f"{figure_slug}.gp",
        title=figure_slug,
        x_label=x_label,
        y_label="CDF",
        logscale_x=logscale_x,
    )
