"""Execution-timing reports: speedup, stragglers, and JSON artifacts.

The :class:`~repro.exec.ParallelExecutor` records a wall-clock
:class:`~repro.exec.TaskTiming` per unit of work; this module turns those
records into the benchmark-facing views — a straggler table and a JSON
document the CI benchmark-smoke job uploads as an artifact.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Sequence

from repro import obs
from repro.exec.executor import MapStats, TaskTiming
from repro.reporting.tables import TextTable


def _is_phase(record: obs.SpanRecord) -> bool:
    return record.attrs.get("kind") == "phase"


@contextmanager
def phase_timer(name: str) -> Iterator[None]:
    """Accumulate the wall time of a named phase of the run.

    The pipeline wraps its analysis stages (session building, the gap
    sweep, the hot-spot scans) with this, so ``timing_*.json`` breaks out
    where a study's analysis time goes — the view that makes the
    ``REPRO_KERNELS`` speedup visible.  Nested/repeated uses of one name
    accumulate.

    This is now a thin shim over :func:`repro.obs.span`: a phase is a
    span with ``kind="phase"``, recorded on the current run's tracer.
    Phase accounting is therefore scoped to the run — sequential studies
    in one process no longer bleed phase times into each other — and the
    same region shows up in ``repro trace`` output.  Disabled (zero
    cost, empty summaries) when ``REPRO_TRACE=off``.
    """
    with obs.span(name, kind="phase"):
        yield


def phases_summary(reset: bool = False) -> Dict[str, float]:
    """A copy of the accumulated per-phase wall times, name → seconds."""
    tracer = obs.current_run().tracer
    snapshot = obs.phase_times(tracer.records)
    if reset:
        tracer.drop(_is_phase)
    return snapshot


def reset_phases() -> None:
    """Drop all accumulated phase timings (tests and fresh runs)."""
    obs.current_run().tracer.drop(_is_phase)


def render_timing_table(timings: Sequence[TaskTiming], title: str = "TASK TIMINGS") -> str:
    """A per-task timing table, slowest first (stragglers on top).

    The payload column shows each task's serialized traffic
    (dispatch + result pickled bytes) — the direct view of what the
    shared-memory transport removes.  In-process backends serialize
    nothing, so the column reads 0.0 there.
    """
    table = TextTable(["task", "seconds", "payload KB", "status"], title=title)
    for timing in sorted(timings, key=lambda t: t.seconds, reverse=True):
        payload = timing.dispatch_bytes + timing.result_bytes
        table.add_row(
            timing.label,
            f"{timing.seconds:.3f}",
            f"{payload / 1e3:.1f}",
            "ok" if timing.ok else "FAILED",
        )
    return table.render()


def timing_summary(
    stats: Sequence[MapStats],
    cache: Optional[Dict[str, Any]] = None,
    phases: Optional[Dict[str, float]] = None,
    degradation: Optional[Any] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Aggregate a run's map batches into one JSON-ready summary.

    Args:
        stats: Map-batch statistics from the executor.
        cache: Optional artifact-cache summary (the shape returned by
            :meth:`repro.artifacts.store.ArtifactStore.stats_summary`);
            included verbatim under ``"cache"`` when given, so the timing
            artifact records how much of the run was served from cache.
        phases: Optional per-phase wall times (the shape returned by
            :func:`phases_summary`); included under ``"phases"`` when
            non-empty, alongside the active kernel backend, so the
            analysis-phase breakdown lands in ``timing_*.json``.
        degradation: Optional
            :class:`~repro.faults.report.DegradationReport`; its
            per-stage counters land under ``"degradation"`` so chaos
            runs' timing artifacts record what was absorbed.
        metrics: Optional observability snapshot (the shape returned by
            :meth:`repro.obs.MetricsRegistry.snapshot`); included under
            ``"metrics"`` when non-empty, so the timing artifact carries
            the run's cache/retry/probe counters and latency histograms.

    Returns:
        A dict with the backend, wall/task seconds, the observed speedup
        (serial-equivalent over wall), the straggler, and per-task rows.
    """
    backend = stats[0].backend if stats else "serial"
    wall_s = sum(s.wall_s for s in stats)
    task_s = sum(s.task_seconds for s in stats)
    retries = sum(getattr(s, "retries", 0) for s in stats)
    rows = [
        {
            "label": t.label,
            "seconds": round(t.seconds, 6),
            "ok": t.ok,
            "dispatch_bytes": t.dispatch_bytes,
            "result_bytes": t.result_bytes,
        }
        for s in stats
        for t in s.timings
    ]
    straggler = max(rows, key=lambda r: r["seconds"], default=None)
    summary: Dict[str, Any] = {
        "backend": backend,
        "batches": len(stats),
        "tasks": len(rows),
        "retries": retries,
        "wall_seconds": round(wall_s, 6),
        "task_seconds": round(task_s, 6),
        "speedup": round(task_s / wall_s, 3) if wall_s > 0 else 1.0,
        "dispatch_bytes": sum(r["dispatch_bytes"] for r in rows),
        "result_bytes": sum(r["result_bytes"] for r in rows),
        "straggler": straggler,
        "timings": rows,
    }
    if cache is not None:
        summary["cache"] = cache
    if phases:
        from repro.trace.columnar import kernels_backend

        summary["phases"] = dict(phases)
        summary["kernels"] = kernels_backend()
    if degradation is not None and degradation.stages:
        summary["degradation"] = degradation.as_dict()
    if metrics and any(metrics.get(k) for k in ("counters", "gauges", "histograms")):
        summary["metrics"] = metrics
    return summary


def write_timing_json(
    stats: Sequence[MapStats],
    path,
    cache: Optional[Dict[str, Any]] = None,
    phases: Optional[Dict[str, float]] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write :func:`timing_summary` to ``path``; returns the summary."""
    summary = timing_summary(stats, cache=cache, phases=phases, metrics=metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return summary


def render_degradation_table(report: Any) -> str:
    """A text view of a :class:`~repro.faults.report.DegradationReport`.

    One row per stage plus the ``TOTAL`` pseudo-stage; the four core
    counters come first, any ad-hoc counters a stage recorded (lost
    probes, timeouts, quarantined objects) follow alphabetically.
    """
    from repro.faults.report import CORE_COUNTERS

    doc = report.as_dict()
    extras = sorted(
        {name for tally in doc.values() for name in tally} - set(CORE_COUNTERS)
    )
    columns = ["stage", *CORE_COUNTERS, *extras]
    table = TextTable(columns, title="DEGRADATION REPORT")
    for stage, tally in doc.items():
        table.add_row(stage, *(tally.get(name, 0) for name in columns[1:]))
    return table.render()


def render_cache_table(summary: Dict[str, Any]) -> str:
    """A text view of an artifact-cache ``stats_summary()`` document.

    One row per stage plus a totals row, drawn from the store's lifetime
    ledger; the session counters and disk footprint follow underneath.
    """
    columns = ["stage", "hits", "misses", "puts", "MB read", "MB written"]
    table = TextTable(columns, title="ARTIFACT CACHE")
    lifetime = summary.get("lifetime", {})
    stages = lifetime.get("stages", {})
    for stage in sorted(stages):
        row = stages[stage]
        table.add_row(
            stage,
            row.get("hits", 0),
            row.get("misses", 0),
            row.get("puts", 0),
            f"{row.get('bytes_read', 0) / 1e6:.1f}",
            f"{row.get('bytes_written', 0) / 1e6:.1f}",
        )
    totals = lifetime.get("total", {})
    table.add_row(
        "TOTAL",
        totals.get("hits", 0),
        totals.get("misses", 0),
        totals.get("puts", 0),
        f"{totals.get('bytes_read', 0) / 1e6:.1f}",
        f"{totals.get('bytes_written', 0) / 1e6:.1f}",
    )
    disk = summary.get("disk", {})
    objects_line = (
        f"objects: {disk.get('objects', 0)} ({disk.get('total_bytes', 0) / 1e6:.1f} MB on disk)"
    )
    lines = [table.render(), "", f"root:    {summary.get('root', '?')}", objects_line]
    columnar = summary.get("columnar")
    if columnar is not None:
        lines.append(
            f"columnar: {columnar.get('tables', 0)} live tables "
            f"({columnar.get('resident_bytes', 0) / 1e6:.1f} MB resident)"
        )
    return "\n".join(lines)
