"""Reporting utilities: CDFs, time series, and plain-text tables.

Everything the benchmarks print goes through this package, so the
regenerated tables and figure series share one look.
"""

from repro.reporting.series import Cdf, Series, hourly_counts, hourly_fraction
from repro.reporting.tables import TextTable, format_bytes, format_fraction

__all__ = [
    "Cdf",
    "Series",
    "hourly_counts",
    "hourly_fraction",
    "TextTable",
    "format_bytes",
    "format_fraction",
]
