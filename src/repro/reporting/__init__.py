"""Reporting utilities: CDFs, time series, and plain-text tables.

Everything the benchmarks print goes through this package, so the
regenerated tables and figure series share one look.
"""

from repro.reporting.series import Cdf, Series, hourly_counts, hourly_fraction
from repro.reporting.tables import TextTable, format_bytes, format_fraction
from repro.reporting.timing import render_timing_table, timing_summary, write_timing_json

__all__ = [
    "Cdf",
    "Series",
    "hourly_counts",
    "hourly_fraction",
    "TextTable",
    "format_bytes",
    "format_fraction",
    "render_timing_table",
    "timing_summary",
    "write_timing_json",
]
