"""Empirical CDFs and labelled series.

The paper's figures are almost all CDFs or hourly time series; these two
containers carry the regenerated data and render it as text.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

try:  # optional: array fast paths for the columnar kernels
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None


class Cdf:
    """An empirical cumulative distribution function.

    Args:
        values: Sample values (any iterable of floats, or a numpy array —
            arrays are sorted in C and converted back to built-in floats,
            so the resulting CDF is identical either way).

    Raises:
        ValueError: On an empty sample.
    """

    def __init__(self, values: Iterable[float]):
        if _np is not None and isinstance(values, _np.ndarray):
            self._values = _np.sort(values.astype(float, copy=False)).tolist()
        else:
            self._values: List[float] = sorted(float(v) for v in values)
        if not self._values:
            raise ValueError("cannot build a CDF from no samples")

    def __len__(self) -> int:
        return len(self._values)

    @property
    def min(self) -> float:
        """Smallest sample."""
        return self._values[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        return self._values[-1]

    def fraction_below(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        return bisect.bisect_right(self._values, x) / len(self._values)

    def quantile(self, p: float) -> float:
        """The p-quantile (nearest-rank).

        Raises:
            ValueError: If p is outside [0, 1].
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p out of [0, 1]: {p}")
        if p == 0.0:
            return self._values[0]
        rank = max(0, math.ceil(p * len(self._values)) - 1)
        return self._values[rank]

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def mean(self) -> float:
        """Sample mean."""
        return sum(self._values) / len(self._values)

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs, decimated for display."""
        n = len(self._values)
        step = max(1, n // max_points)
        pts = [(self._values[i], (i + 1) / n) for i in range(0, n, step)]
        if pts[-1][0] != self._values[-1]:
            pts.append((self._values[-1], 1.0))
        return pts

    def render(
        self, label: str = "value", probes: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
    ) -> str:
        """A compact text rendering of key quantiles."""
        parts = [f"p{int(p * 100):02d}={self.quantile(p):.4g}" for p in probes]
        return f"CDF[{label}] n={len(self)} " + " ".join(parts)


@dataclass
class Series:
    """A labelled x/y series (one curve of a figure).

    Attributes:
        label: Curve label (usually the dataset name).
        xs: X values.
        ys: Y values (same length).
    """

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must align")

    def append(self, x: float, y: float) -> None:
        """Append one point."""
        self.xs.append(x)
        self.ys.append(y)

    def __len__(self) -> int:
        return len(self.xs)

    def y_at(self, x: float, default: float = 0.0) -> float:
        """Y value at an exact x, or ``default``."""
        try:
            return self.ys[self.xs.index(x)]
        except ValueError:
            return default

    def max_y(self) -> float:
        """Largest y value."""
        if not self.ys:
            raise ValueError("empty series")
        return max(self.ys)

    def render(self, max_points: int = 24) -> str:
        """Compact text rendering (decimated)."""
        n = len(self.xs)
        step = max(1, n // max_points)
        pts = ", ".join(
            f"({self.xs[i]:.4g},{self.ys[i]:.4g})" for i in range(0, n, step)
        )
        return f"Series[{self.label}] n={n}: {pts}"


def hourly_counts(hours: Iterable[int], num_hours: int) -> List[int]:
    """Count items per trace hour.

    Args:
        hours: Hour index of each item (an iterable, or a numpy integer
            array — counted with ``bincount`` and converted back to a
            plain list of ints, so the result is identical either way).
        num_hours: Total hours in the window.

    Returns:
        A list of length ``num_hours`` of counts.
    """
    if _np is not None and isinstance(hours, _np.ndarray):
        h = hours.astype(_np.int64, copy=False)
        h = h[(h >= 0) & (h < num_hours)]
        return _np.bincount(h, minlength=num_hours).tolist()
    counts = [0] * num_hours
    for hour in hours:
        if 0 <= hour < num_hours:
            counts[hour] += 1
    return counts


def hourly_fraction(
    numerator_hours: Iterable[int], denominator_hours: Iterable[int], num_hours: int,
    min_denominator: int = 1,
) -> Dict[int, float]:
    """Per-hour ratio of two hourly counts.

    Hours whose denominator is below ``min_denominator`` are omitted (the
    paper's hourly-fraction plots are undefined on empty hours).

    Returns:
        Mapping hour → fraction.
    """
    num = hourly_counts(numerator_hours, num_hours)
    den = hourly_counts(denominator_hours, num_hours)
    return {
        h: num[h] / den[h]
        for h in range(num_hours)
        if den[h] >= min_denominator
    }
