"""Shared-memory column transport for :class:`~repro.trace.columnar.FlowTable`.

A table's numpy columns are *published* once into a named segment; a
picklable :class:`TableHandle` (segment name + a column table-of-contents)
is all that crosses the pool boundary, and workers *attach* to the columns
by name and offset instead of unpickling tens of megabytes of records.

Three backends, selected by ``REPRO_SHM``:

* ``shm`` — ``multiprocessing.shared_memory`` segments.  Attaching and
  creating both suppress the per-process ``resource_tracker``
  registration (ownership belongs to the publishing run's
  :class:`SegmentScope`, never to whichever worker process happens to
  exit first — the tracker would otherwise unlink a live segment under
  the parent).
* ``file`` — memory-mapped files under ``/dev/shm`` when available
  (tmpfs: same zero-copy behaviour), else the system temp dir.
* ``off`` — no segment at all: the handle carries the records inline and
  "attach" rebuilds a plain table.  The uniform API with none of the
  machinery, for platforms where neither backend works.

``auto`` (the default) picks ``shm`` when importable, else ``file``.

Lifetime rules (the cleanup contract ``docs/architecture.md`` documents):

* Whoever *publishes* registers the segment in the process-local live
  registry; an attach from the same process is a **no-op view** — it
  returns the original table object, which is what makes the serial and
  thread backends zero-cost.
* Cross-process attaches map the segment read-only; each attached table
  holds one reference and a ``weakref.finalize`` drops it, closing the
  mapping when the last table dies.  Unlinking a segment never
  invalidates live mappings (POSIX semantics), so a scope may unlink
  eagerly while attached tables stay valid.
* A :class:`SegmentScope` owns every name it hands out and unlinks them
  all on exit — including the exception path, so a worker crash or
  :class:`~repro.exec.executor.ExecutionError` mid-fan-out never leaks a
  segment (``tests/test_shard.py`` holds it to that under an injected
  ``task_crash`` plan).
"""

from __future__ import annotations

import contextlib
import mmap
import os
import secrets
import shutil
import tempfile
import threading
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.trace.columnar import FlowTable, _Columns
from repro.trace.records import FlowRecord

try:  # numpy is optional repo-wide; the shm transport needs it
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - CI image always has numpy
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Environment variable selecting the transport backend.
ENV_SHM = "REPRO_SHM"

#: Recognised ``REPRO_SHM`` values.
SHM_MODES = ("auto", "shm", "file", "off")

#: Column arrays that travel through a segment, in layout order.  ``hour``
#: is derived from ``t_start`` on attach, exactly as ``_Columns`` builds it.
_FIELDS = (
    "src_ip",
    "dst_ip",
    "num_bytes",
    "t_start",
    "t_end",
    "video_code",
    "resolution_code",
    "video_ids",
    "resolutions",
)

_ALIGN = 16


def _have_shared_memory() -> bool:
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - stdlib since 3.8
        return False
    return True


def shm_mode() -> str:
    """The active transport backend (``"shm"``, ``"file"`` or ``"off"``).

    Reads :data:`ENV_SHM` on every call so tests can switch modes.
    ``auto`` resolves to ``shm`` when ``multiprocessing.shared_memory``
    imports (and numpy is present), else ``file``; without numpy every
    mode degrades to ``off``.

    Raises:
        ValueError: For an unrecognised mode name.
    """
    value = os.environ.get(ENV_SHM, "auto").strip().lower() or "auto"
    if value not in SHM_MODES:
        raise ValueError(f"unknown {ENV_SHM}={value!r}; expected one of {SHM_MODES}")
    if not HAVE_NUMPY:
        return "off"
    if value == "auto":
        return "shm" if _have_shared_memory() else "file"
    return value


# ------------------------------------------------------------------ handles


@dataclass(frozen=True)
class TableHandle:
    """A picklable reference to one published table's columns.

    Attributes:
        mode: ``"shm"`` or ``"file"``.
        name: Segment name (shm) or file path (file).
        size: Total segment size in bytes.
        toc: Per-column ``(field, dtype_str, length, offset)`` rows, in
            :data:`_FIELDS` order.
        rows: Number of flow records the columns describe.
    """

    mode: str
    name: str
    size: int
    toc: Tuple[Tuple[str, str, int, int], ...]
    rows: int


@dataclass(frozen=True)
class InlineHandle:
    """The ``REPRO_SHM=off`` degradation: records travel by pickle."""

    records: Tuple[FlowRecord, ...]

    @property
    def rows(self) -> int:
        return len(self.records)


# ----------------------------------------------------------- live registry


@dataclass
class _Segment:
    """One segment this process publishes or has mapped."""

    mode: str
    name: str
    owner: bool
    buf: Optional[memoryview] = None
    closer: Optional[object] = None  # SharedMemory or (mmap, file) pair
    table: Optional[FlowTable] = None  # publisher-side original (no-op views)
    refs: int = 0
    unlinked: bool = False


#: Process-local registry of segments published or mapped here.
_LIVE: Dict[str, _Segment] = {}


def live_segments() -> List[str]:
    """Names of segments this process currently holds open or owns.

    The leak regression tests assert this is empty after a study run —
    crashed workers and ``ExecutionError`` paths included.
    """
    return sorted(_LIVE)


_TRACKER_LOCK = threading.Lock()


@contextlib.contextmanager
def _suppressed_tracking():
    """Construct SharedMemory objects without resource-tracker REGISTERs.

    On Python < 3.13 both creating and attaching register the segment
    with the per-process tracker, which unlinks everything it knows at
    process exit — so a pool worker exiting would destroy segments the
    parent still reads.  Ownership lives in :class:`SegmentScope`
    instead.

    Suppressing the REGISTER beats registering and immediately
    unregistering: forked workers share one tracker process whose cache
    is a *set*, so two workers attaching the same segment concurrently
    collapse their REGISTERs into one entry and the second UNREGISTER
    tracebacks inside the tracker (``KeyError: '/repro-...'`` on
    stderr).  With no REGISTER sent, the only tracker traffic left is
    the adjacent re-register/unlink pair at the single owning unlink.
    """
    try:  # pragma: no cover - exercised indirectly via process workers
        from multiprocessing import resource_tracker
    except ImportError:
        yield
        return
    with _TRACKER_LOCK:
        saved = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            yield
        finally:
            resource_tracker.register = saved


def _retrack_shared_memory(shm) -> None:
    """Register just before unlink so the unlink's UNREGISTER balances.

    Goes through the tracker instance, not the module-level ``register``,
    so it still lands while :func:`_suppressed_tracking` is active.
    """
    try:  # pragma: no cover - exercised indirectly via process workers
        from multiprocessing import resource_tracker

        impl = getattr(resource_tracker, "_resource_tracker", None)
        register = impl.register if impl is not None else resource_tracker.register
        register(shm._name, "shared_memory")
    except Exception:
        pass


def _quiet_shared_memory_cls():
    """A SharedMemory whose ``__del__`` tolerates live array views.

    At interpreter shutdown the attached numpy arrays can outlive the
    SharedMemory object; the stock ``__del__`` then prints an "Exception
    ignored" BufferError.  The OS reclaims the mapping either way.
    """
    from multiprocessing import shared_memory

    class _QuietSharedMemory(shared_memory.SharedMemory):
        def __del__(self):
            try:
                super().__del__()
            except BufferError:  # pragma: no cover - shutdown ordering
                pass

    return _QuietSharedMemory


def _create_segment(mode: str, name: str, size: int) -> _Segment:
    if mode == "shm":
        from multiprocessing import shared_memory

        cls = _quiet_shared_memory_cls()
        with _suppressed_tracking():
            try:
                shm = cls(name=name, create=True, size=size)
            except FileExistsError:
                # A retried task republishes under its deterministic
                # name: drop the half-written leftover and start clean.
                stale = shared_memory.SharedMemory(name=name)
                stale.close()
                _retrack_shared_memory(stale)
                try:
                    stale.unlink()
                except FileNotFoundError:  # pragma: no cover - unlink race
                    pass
                shm = cls(name=name, create=True, size=size)
        return _Segment(mode, name, owner=True, buf=shm.buf, closer=shm)
    handle = open(name, "w+b")
    handle.truncate(size)
    mapped = mmap.mmap(handle.fileno(), size)
    return _Segment(mode, name, owner=True, buf=memoryview(mapped), closer=(mapped, handle))


def _map_segment(handle: TableHandle) -> _Segment:
    if handle.mode == "shm":
        with _suppressed_tracking():
            shm = _quiet_shared_memory_cls()(name=handle.name)
        return _Segment("shm", handle.name, owner=False, buf=shm.buf, closer=shm)
    fh = open(handle.name, "rb")
    mapped = mmap.mmap(fh.fileno(), handle.size, access=mmap.ACCESS_READ)
    return _Segment("file", handle.name, owner=False, buf=memoryview(mapped), closer=(mapped, fh))


def _close_segment(segment: _Segment) -> None:
    if segment.buf is not None:
        try:
            segment.buf.release()
        except BufferError:  # pragma: no cover - arrays still alive
            pass
        segment.buf = None
    closer = segment.closer
    segment.closer = None
    if closer is None:
        return
    try:
        if segment.mode == "shm":
            closer.close()
        else:
            mapped, fh = closer
            mapped.close()
            fh.close()
    except BufferError:
        # Attached numpy arrays still reference the mapping (finalizer
        # ordering at interpreter shutdown); the OS reclaims it at
        # process exit, and the *segment* is unlinked regardless.
        pass


def _unlink_segment(segment: _Segment) -> None:
    if segment.unlinked:
        return
    segment.unlinked = True
    try:
        if segment.mode == "shm":
            from multiprocessing import shared_memory

            if segment.owner and segment.closer is not None:
                # Creation was tracker-suppressed: register just before
                # unlink so its UNREGISTER doesn't hit a tracker
                # KeyError for a name it never knew about.
                _retrack_shared_memory(segment.closer)
                segment.closer.unlink()
            else:
                with _suppressed_tracking():
                    probe = shared_memory.SharedMemory(name=segment.name)
                probe.close()
                _retrack_shared_memory(probe)
                probe.unlink()
        else:
            os.unlink(segment.name)
    except FileNotFoundError:
        pass


def _release(name: str) -> None:
    """Drop one attached-table reference; close and forget at zero."""
    segment = _LIVE.get(name)
    if segment is None:
        return
    segment.refs -= 1
    if segment.refs <= 0 and not segment.owner:
        _close_segment(segment)
        del _LIVE[name]


def _forget_owned(name: str) -> None:
    """Unlink and close a published segment (scope cleanup)."""
    segment = _LIVE.get(name)
    if segment is None:
        return
    _unlink_segment(segment)
    segment.table = None
    if segment.refs <= 0:
        _close_segment(segment)
        del _LIVE[name]
    else:
        # Attached tables still hold references; their finalizers close
        # the mapping.  The name is gone either way.
        segment.owner = False


# ------------------------------------------------------------ publish/attach


def _pack_columns(cols: _Columns) -> Tuple[List[Tuple[str, str, int, int]], int]:
    toc: List[Tuple[str, str, int, int]] = []
    offset = 0
    for name in _FIELDS:
        arr = getattr(cols, name)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        toc.append((name, arr.dtype.str, len(arr), offset))
        offset += arr.nbytes
    return toc, max(offset, 1)


def publish_table(table: FlowTable, name: Optional[str] = None) -> object:
    """Publish a table's columns into a named segment.

    Args:
        table: The table to publish (columns are materialised now).
        name: Segment name / file path, normally minted by a
            :class:`SegmentScope` so cleanup responsibility is explicit.
            ``None`` mints an unscoped name (caller must unlink).

    Returns:
        A picklable handle for :func:`attach_table`.  Under
        ``REPRO_SHM=off`` this is an :class:`InlineHandle` that simply
        carries the records.
    """
    mode = shm_mode()
    if mode == "off":
        return InlineHandle(records=tuple(table.records))
    cols = table.columns()
    toc, size = _pack_columns(cols)
    if name is None:
        name = _mint_name(mode, "adhoc")
    segment = _create_segment(mode, name, size)
    for field_name, _dtype, _length, offset in toc:
        arr = getattr(cols, field_name)
        segment.buf[offset:offset + arr.nbytes] = arr.tobytes()
    segment.table = table
    _LIVE[name] = segment
    return TableHandle(mode=mode, name=name, size=size, toc=tuple(toc), rows=len(table))


def _columns_from_buffer(handle: TableHandle, buf: memoryview) -> _Columns:
    cols = _Columns.__new__(_Columns)
    for field_name, dtype, length, offset in handle.toc:
        itemsize = np.dtype(dtype).itemsize
        arr = np.frombuffer(buf, dtype=dtype, count=length, offset=offset)
        assert arr.nbytes == itemsize * length
        setattr(cols, field_name, arr)
    cols.hour = (cols.t_start // 3600.0).astype(np.int64)
    return cols


def records_from_columns(cols: _Columns, lo: int = 0, hi: Optional[int] = None) -> List[FlowRecord]:
    """Rebuild exact :class:`FlowRecord` objects from column arrays.

    Every column round-trips exactly — int64/float64 preserve the
    original Python values bit for bit and the unique string arrays
    return built-in ``str`` — so the rebuilt records compare equal to
    (and digest identically to) the originals.
    """
    video_ids = cols.video_ids.tolist()
    resolutions = cols.resolutions.tolist()
    return [
        FlowRecord(
            src_ip=src, dst_ip=dst, num_bytes=size, t_start=ts, t_end=te,
            video_id=video_ids[vc], resolution=resolutions[rc],
        )
        for src, dst, size, ts, te, vc, rc in zip(
            cols.src_ip[lo:hi].tolist(),
            cols.dst_ip[lo:hi].tolist(),
            cols.num_bytes[lo:hi].tolist(),
            cols.t_start[lo:hi].tolist(),
            cols.t_end[lo:hi].tolist(),
            cols.video_code[lo:hi].tolist(),
            cols.resolution_code[lo:hi].tolist(),
        )
    ]


#: Captured before :class:`ColumnTable` shadows it with a property.
_RECORDS_SLOT = FlowTable.records


class ColumnTable(FlowTable):
    """A :class:`FlowTable` backed by column arrays, records on demand.

    Kernels that consume columns (the accumulators, grouped sums, the
    session index) run zero-copy over the attached arrays; only paths
    that genuinely need record objects (session flow lists, the python
    kernels) pay to materialise them, once, from the columns.
    """

    __slots__ = ()

    def __init__(self, cols: _Columns):
        self._cols = cols
        self._session_index = None
        self._dst_unique = None
        self._dst_code = None
        from repro.trace.columnar import _register_table

        _register_table(self)

    @property
    def records(self) -> List[FlowRecord]:
        try:
            return _RECORDS_SLOT.__get__(self)
        except AttributeError:
            materialised = records_from_columns(self._cols)
            _RECORDS_SLOT.__set__(self, materialised)
            return materialised

    def __len__(self) -> int:
        return len(self._cols.t_start)

    def columns(self) -> _Columns:
        return self._cols


def attach_table(handle) -> FlowTable:
    """The table behind a handle, sharing memory whenever possible.

    * Same process as the publisher (serial/thread backends, or a forked
      worker that inherited the registry): returns the **original** table
      object — a no-op view.
    * Another process: maps the segment read-only and wraps the column
      views in a :class:`ColumnTable`; repeated attaches of one segment
      share a single mapping via the live registry's refcount.
    * :class:`InlineHandle`: rebuilds a plain table from the records.
    """
    if isinstance(handle, InlineHandle):
        return FlowTable(list(handle.records))
    segment = _LIVE.get(handle.name)
    if segment is not None and segment.table is not None:
        return segment.table
    if segment is None:
        segment = _map_segment(handle)
        _LIVE[handle.name] = segment
    segment.refs += 1
    table = ColumnTable(_columns_from_buffer(handle, segment.buf))
    weakref.finalize(table, _release, handle.name)
    return table


def view_table(table: FlowTable, lo: int, hi: int) -> FlowTable:
    """A zero-copy table over rows ``[lo, hi)`` of ``table``.

    Column arrays are numpy views; the unique string arrays stay whole
    (codes index into them unchanged).  Records materialise lazily from
    the sliced columns if a consumer asks.
    """
    cols = table.columns()
    sliced = _Columns.__new__(_Columns)
    for name in ("src_ip", "dst_ip", "num_bytes", "t_start", "t_end", "hour",
                 "video_code", "resolution_code"):
        setattr(sliced, name, getattr(cols, name)[lo:hi])
    sliced.video_ids = cols.video_ids
    sliced.resolutions = cols.resolutions
    return ColumnTable(sliced)


# ------------------------------------------------------------------- scopes


def _mint_name(mode: str, tag: str, directory: Optional[str] = None) -> str:
    token = secrets.token_hex(4)
    if mode == "shm":
        return f"repro-{tag}-{token}"
    directory = directory or tempfile.gettempdir()
    return os.path.join(directory, f"repro-{tag}-{token}.col")


def _file_dir() -> str:
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir) and os.access(shm_dir, os.W_OK):
        return shm_dir
    return tempfile.gettempdir()


@dataclass
class SegmentScope:
    """Owns every segment name a fan-out hands to its workers.

    The parent mints one name per task *before* dispatch, so it can
    unlink every segment on exit regardless of what the workers did —
    returned normally, crashed after publishing, or never ran.  Exit is
    exception-safe by construction (``with`` / ``try: ... finally:``),
    which is the fix for shared-memory leaks on worker-crash and
    ``ExecutionError`` paths.
    """

    names: List[str] = field(default_factory=list)
    _dir: Optional[str] = None

    def __enter__(self) -> "SegmentScope":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def name_for(self, tag: str) -> str:
        """Mint and record one segment name for task ``tag``."""
        mode = shm_mode()
        if mode == "off":
            name = f"inline-{tag}"
        elif mode == "file":
            if self._dir is None:
                self._dir = tempfile.mkdtemp(prefix="repro-shard-", dir=_file_dir())
            name = _mint_name(mode, _slug(tag), directory=self._dir)
        else:
            name = _mint_name(mode, _slug(tag))
        self.names.append(name)
        return name

    def close(self) -> None:
        """Unlink every owned segment; attached tables stay valid."""
        for name in self.names:
            segment = _LIVE.get(name)
            if segment is not None:
                _forget_owned(name)
            else:
                _unlink_orphan(name)
        self.names.clear()
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None


def _slug(tag: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in tag)[:40]


def _unlink_orphan(name: str) -> None:
    """Unlink a segment published by a worker that never reported back."""
    mode = shm_mode()
    if mode == "off" or name.startswith("inline-"):
        return
    if os.path.isabs(name):
        try:
            os.unlink(name)
        except FileNotFoundError:
            pass
        return
    try:
        from multiprocessing import shared_memory

        with _suppressed_tracking():
            probe = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, ImportError):
        return
    probe.close()
    _retrack_shared_memory(probe)
    try:
        probe.unlink()
    except FileNotFoundError:  # pragma: no cover - unlink race
        pass
