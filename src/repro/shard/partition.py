"""Deterministic (vantage, time-window) partitioning of flow tables.

Simulated (and parsed) datasets list flows globally sorted by ``t_start``,
so a tumbling-window partition — the same ``[k*w, (k+1)*w)`` windows the
PR-6 streaming layer uses — cuts the table into **contiguous row ranges**.
That contiguity is the whole trick: a shard is a zero-copy column slice,
and concatenating shards in key order reproduces the batch record order
exactly, which is what lets the merge operators promise byte-identical
results.

Shard keys are pure values (dataset name, window index, bounds) with a
``cache_fingerprint()``, so per-shard analysis artifacts slot into the
artifact cache under stable keys — reshard at the same grain tomorrow and
every shard is a warm hit.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import List

from repro.trace.columnar import FlowTable, HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as np


@dataclass(frozen=True)
class ShardKey:
    """Identity of one (vantage, time-window) shard.

    Attributes:
        dataset: Vantage-point dataset name (e.g. ``"US-Campus"``).
        index: Tumbling-window index ``k`` (window ``[k*w, (k+1)*w)``).
        t_lo: Window lower bound, inclusive.
        t_hi: Window upper bound, exclusive.
    """

    dataset: str
    index: int
    t_lo: float
    t_hi: float

    @property
    def label(self) -> str:
        return f"{self.dataset}/w{self.index}"

    def cache_fingerprint(self):
        """Stable identity for :func:`repro.artifacts.keys.canonicalize`."""
        return {
            "dataset": self.dataset,
            "index": self.index,
            "t_lo": self.t_lo,
            "t_hi": self.t_hi,
        }


@dataclass(frozen=True)
class Shard:
    """One shard: a key plus its contiguous row range ``[lo, hi)``."""

    key: ShardKey
    lo: int
    hi: int

    def __len__(self) -> int:
        return self.hi - self.lo


def partition_table(table: FlowTable, window_s: float, dataset: str) -> List[Shard]:
    """Cut a time-sorted table into tumbling-window shards.

    Args:
        table: Flow table whose records are sorted by ``t_start`` (both
            the simulator and the log parser emit this order).
        window_s: Shard window width in seconds (e.g. ``86400.0`` for
            one shard per day).
        dataset: Dataset name baked into every :class:`ShardKey`.

    Returns:
        Non-empty shards in time order.  Empty windows are skipped —
        they contribute nothing to any merge — so shard indices may be
        sparse.

    Raises:
        ValueError: For a non-positive window, or if ``t_start`` is not
            non-decreasing (the contiguity precondition).
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    n = len(table)
    if n == 0:
        return []
    if HAVE_NUMPY:
        t_start = table.columns().t_start
        if len(t_start) > 1 and bool(np.any(t_start[1:] < t_start[:-1])):
            raise ValueError("records are not sorted by t_start")
        first = math.floor(float(t_start[0]) / window_s)
        last = math.floor(float(t_start[-1]) / window_s)
        # One searchsorted over all window boundaries: cut[i] is the first
        # row at or past boundary (first + i) * window_s.
        bounds = (np.arange(first, last + 2, dtype=np.float64)) * window_s
        cuts = np.searchsorted(t_start, bounds, side="left")
        shards = []
        for i in range(len(bounds) - 1):
            lo, hi = int(cuts[i]), int(cuts[i + 1])
            if lo == hi:
                continue
            index = first + i
            key = ShardKey(dataset=dataset, index=index,
                           t_lo=index * window_s, t_hi=(index + 1) * window_s)
            shards.append(Shard(key=key, lo=lo, hi=hi))
        return shards
    starts = [r.t_start for r in table.records]
    if any(b < a for a, b in zip(starts, starts[1:])):
        raise ValueError("records are not sorted by t_start")
    first = math.floor(starts[0] / window_s)
    last = math.floor(starts[-1] / window_s)
    shards = []
    lo = 0
    for index in range(first, last + 1):
        hi = bisect_left(starts, (index + 1) * window_s, lo=lo)
        if hi > lo:
            key = ShardKey(dataset=dataset, index=index,
                           t_lo=index * window_s, t_hi=(index + 1) * window_s)
            shards.append(Shard(key=key, lo=lo, hi=hi))
        lo = hi
    return shards
