"""The sharded study: simulate and analyze shards, merge byte-identically.

``repro study --sharded`` runs the same five-dataset study as the batch
and streamed paths, but scales out differently:

1. **Simulate** — one task per vantage point runs the disk-memoized
   ``sim/run_week`` stage (shared with every other entry point) and
   *publishes* the dataset's columns into a shared-memory segment
   (:mod:`repro.shard.shm`).  Only a slim summary — the world, the
   content digest, a table handle — travels back; the flow records, the
   dominant pickle term, never cross the pool boundary again.
2. **Partition** — the parent attaches each table (zero-copy) and cuts
   it into deterministic (vantage, time-window) shards
   (:mod:`repro.shard.partition`).
3. **Analyze** — one task per shard attaches the columns by name,
   slices its row range as numpy views, folds the window into the PR-6
   accumulators and computes a slim session partial.  Per-shard results
   are cached under the shard key, so a re-run at the same grain is all
   warm hits.
4. **Merge** — the parent combines per-shard outputs with the merge
   operators (:mod:`repro.shard.merge`) into the exact accumulator
   states the streamed path would have built, then hands them to the
   ordinary :class:`~repro.stream.study.StreamStudy` — so the report and
   digests are byte-identical to ``repro study`` by construction.

Every shared-memory segment is owned by one :class:`SegmentScope` whose
``finally`` unlinks it, so worker crashes and ``ExecutionError`` paths
cannot leak segments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.sessions import DEFAULT_GAP_S
from repro.core.streaming import HotSpotDetector, LoadBalanceDetector
from repro.exec.executor import ParallelExecutor, default_executor
from repro.sim.driver import DEFAULT_SCALE, simulate_week
from repro.sim.scenarios import DATASET_NAMES, ScenarioWorld, _paper_scenarios
from repro.shard.merge import (
    merge_hourly,
    merge_session_sizes,
    merge_traffic,
    session_partial,
)
from repro.shard.partition import Shard, ShardKey, partition_table
from repro.shard.shm import SegmentScope, attach_table, publish_table, view_table
from repro.stream.accumulators import (
    HourlyShareAccumulator,
    SessionStatsAccumulator,
    TrafficAccumulator,
)
from repro.stream.events import StreamWindow
from repro.stream.study import StreamedDataset, StreamStudy, peak_rss_kb
from repro.trace.records import WEEK_S

#: Default shard grain: one shard per trace day.
DEFAULT_SHARD_WINDOW_S = 86400.0


class _FixedDigest:
    """A precomputed content digest wearing the streaming-digest API."""

    def __init__(self, hexdigest: str, records: int = 0):
        self._hex = hexdigest
        self.records = records

    def hexdigest(self) -> str:
        return self._hex


def _sim_shard_task(arg: Tuple) -> Dict[str, object]:
    """Simulate one vantage point's week and publish its columns.

    Returns a slim summary: the world (needed for the active
    measurements), the batch content digest, the flow count and the
    table handle — never the records themselves.
    """
    key, segment_name = arg
    spec, scale, seed, duration_s, policy_kind = key
    result = simulate_week(spec, scale, seed, duration_s, policy_kind)
    dataset = result.dataset
    handle = publish_table(dataset.columnar(), name=segment_name)
    return {
        "name": dataset.name,
        "world": result.world,
        "digest": dataset.content_digest(),
        "flows": len(dataset.records),
        "handle": handle,
    }


def _analyze_shard_task(arg: Tuple) -> Tuple:
    """Analyze one shard: attach, slice, fold, return slim states.

    Cached in the artifact store under the shard key plus everything the
    shard's rows depend on, so resharding at the same grain is warm.
    """
    handle, shard, run_key, gap_s = arg
    from repro.artifacts.keys import stage_key
    from repro.artifacts.store import default_store

    store = default_store()
    cache_key = None
    if store is not None:
        cache_key = stage_key(
            "shard/analyze", {"run": run_key, "shard": shard.key, "gap_s": gap_s}
        )
        hit = store.get(cache_key, None, stage="shard/analyze")
        if hit is not None:
            return hit
    table = attach_table(handle)
    view = view_table(table, shard.lo, shard.hi)
    window = StreamWindow(
        index=shard.key.index, t_lo=shard.key.t_lo, t_hi=shard.key.t_hi, table=view
    )
    traffic = TrafficAccumulator()
    traffic.observe_window(window)
    hourly = HourlyShareAccumulator()
    hourly.observe_window(window)
    partial = session_partial(view, gap_s)
    result = (traffic, hourly, partial)
    if store is not None:
        store.put(cache_key, result, stage="shard/analyze")
    return result


def _merged_dataset(
    name: str,
    world: ScenarioWorld,
    digest_hex: str,
    shards: List[Shard],
    shard_results: List[Tuple],
    gap_s: float,
) -> StreamedDataset:
    """Combine one dataset's per-shard states into a StreamedDataset."""
    traffic = merge_traffic([r[0] for r in shard_results])
    hourly = merge_hourly([r[1] for r in shard_results])
    sizes = merge_session_sizes([r[2] for r in shard_results], gap_s)
    session_stats = SessionStatsAccumulator()
    for n in sizes:
        session_stats._counts[str(n) if n <= 9 else ">9"] += 1
        session_stats.sessions += 1
    return StreamedDataset(
        name=name,
        world=world,
        traffic=traffic,
        hourly=hourly,
        session_stats=session_stats,
        # The online spike/spread detectors are window-order constructs
        # of the streaming path; the sharded report does not use them.
        hot_spots=HotSpotDetector(),
        load_balance=LoadBalanceDetector(),
        digest=_FixedDigest(digest_hex, records=traffic.flows),
        windows=len(shards),
        late_records=0,
        sessions_closed=session_stats.sessions,
        peak_open_sessions=0,
        peak_window_records=max((len(s) for s in shards), default=0),
        rss_after_kb=peak_rss_kb(),
    )


def run_sharded_study(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    duration_s: float = WEEK_S,
    shard_window_s: float = DEFAULT_SHARD_WINDOW_S,
    landmark_count: Optional[int] = None,
    gap_s: float = DEFAULT_GAP_S,
    executor: Optional[ParallelExecutor] = None,
) -> StreamStudy:
    """Run the five-dataset study sharded, returning a StreamStudy.

    The returned study renders (via
    :func:`repro.stream.study.render_stream_report`) and digests
    byte-identically to ``repro study`` at the same scale/seed, for any
    positive ``shard_window_s`` and any executor backend.

    Args:
        scale: Traffic volume scale (1.0 = paper scale).
        seed: Master seed.
        duration_s: Collection window.
        shard_window_s: Shard grain — seconds of trace per shard.
        landmark_count: CBG landmark budget (``None`` = full set).
        gap_s: Session gap T.
        executor: Fan-out strategy; ``None`` reads ``REPRO_EXECUTOR``.

    Raises:
        ValueError: For a non-positive shard window or gap.
    """
    if shard_window_s <= 0:
        raise ValueError(f"shard_window_s must be positive, got {shard_window_s}")
    executor = default_executor(executor)
    scenarios = _paper_scenarios()
    policy_kind = "preferred"
    run_key = {
        "scale": scale,
        "seed": seed,
        "duration_s": duration_s,
        "policy": policy_kind,
    }
    with SegmentScope() as scope:
        with obs.span("shard/simulate", datasets=len(DATASET_NAMES), scale=scale):
            sims = executor.map(
                _sim_shard_task,
                [
                    (
                        (scenarios[name], scale, seed, duration_s, policy_kind),
                        scope.name_for(f"sim-{name}"),
                    )
                    for name in DATASET_NAMES
                ],
                labels=[f"shard/sim/{name}" for name in DATASET_NAMES],
            )
        by_name = {sim["name"]: sim for sim in sims}
        shards_of: Dict[str, List[Shard]] = {}
        tasks: List[Tuple] = []
        labels: List[str] = []
        for name in DATASET_NAMES:
            sim = by_name[name]
            table = attach_table(sim["handle"])
            shards = partition_table(table, shard_window_s, name)
            shards_of[name] = shards
            for shard in shards:
                tasks.append((sim["handle"], shard, dict(run_key, dataset=name), gap_s))
                labels.append(f"shard/{shard.key.label}")
        with obs.span("shard/analyze", shards=len(tasks), window_s=shard_window_s):
            results = executor.map(_analyze_shard_task, tasks, labels=labels)
        streamed: Dict[str, StreamedDataset] = {}
        cursor = 0
        for name in DATASET_NAMES:
            shards = shards_of[name]
            shard_results = results[cursor:cursor + len(shards)]
            cursor += len(shards)
            sim = by_name[name]
            streamed[name] = _merged_dataset(
                name, sim["world"], sim["digest"], shards, shard_results, gap_s
            )
    return StreamStudy(streamed, landmark_count=landmark_count, executor=executor)
