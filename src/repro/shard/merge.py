"""Merge operators: per-shard kernel outputs → byte-identical study results.

Sessions are the only aggregate where shard seams need real care, because
the Section VI-A rule is stateful: a flow joins the open session of its
(client, video) group when ``t_start - horizon < T``, with ``horizon`` the
group's running max ``t_end``.  The PR-6 streaming layer solved the same
seam with its sealed-boundary rule (a session may only close once no
future flow can join it); sharding inverts that — each shard builds its
local sessions eagerly, and the merge repairs the seams.

The stitching argument (``docs/architecture.md`` carries the long form):

* A shard build uses a horizon that is never *larger* than the batch
  build's at the same flow (it is missing earlier shards' flows), so
  local builds can only **over-split** a group — never join flows the
  batch build separates.
* Let ``h`` be the group's max ``t_end`` over all *earlier* shards.  For
  a local session starting at ``t``, the batch build joins it to the
  previous session iff ``t - max(h, local_horizon) < T``; the local
  build already established ``t - local_horizon >= T`` for every
  non-first local session (and the first has no local horizon), so the
  seam test collapses to ``t - h < T``.
* Shards are contiguous, strictly increasing ``t_start`` ranges, so
  ``h`` is constant while one shard's sessions are stitched and updates
  once per (shard, group): ``h = max(h, shard-group max t_end)``.

The rest of the operators are plain exact reductions: int64 grouped sums,
histogram-count addition, sorted-sample (CDF) k-way merge, and
accumulator merges that replay shard order so the first-occurrence
``_servers`` order — which batch tie-breaking depends on — is preserved.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Sequence, Tuple, TypeVar

from repro.core.sessions import DEFAULT_GAP_S, Session, _sorted_groups
from repro.stream.accumulators import (
    HourlyShareAccumulator,
    TrafficAccumulator,
)
from repro.trace.columnar import FlowTable, active_table
from repro.trace.records import FlowRecord

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - CI image always has numpy
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: One (client, video) group's local sessions inside one shard:
#: ``(items, max_t_end)`` with ``items`` a time-ordered list of
#: ``(first_t_start, payload)`` pairs and ``max_t_end`` the max flow end
#: over the whole shard-group (the horizon contribution).
GroupPartial = Tuple[List[Tuple[float, object]], float]

#: A shard's session partial: (client, video) key → :data:`GroupPartial`.
SessionPartial = Dict[Tuple[int, str], GroupPartial]

_P = TypeVar("_P")


def _stitch(
    shard_groups: Sequence[SessionPartial], gap_s: float, combine
) -> Dict[Tuple[int, str], List]:
    """Stitch per-shard local sessions across seams (the rule above).

    ``combine(open_payload, next_payload)`` joins a local session into
    the group's open merged session; payloads that start a new merged
    session pass through unchanged.
    """
    merged: Dict[Tuple[int, str], List] = {}
    carry: Dict[Tuple[int, str], float] = {}
    for groups in shard_groups:
        for key, (items, max_te) in groups.items():
            out = merged.setdefault(key, [])
            h = carry.get(key, float("-inf"))
            for first_ts, payload in items:
                if out and first_ts - h < gap_s:
                    out[-1] = combine(out[-1], payload)
                else:
                    out.append(payload)
            carry[key] = max(h, max_te)
    return merged


def _flatten(merged: Dict[Tuple[int, str], List]) -> List:
    """Merged payloads in batch order: sorted keys, time order within."""
    return [payload for key in sorted(merged) for payload in merged[key]]


def session_partial(
    records, gap_s: float = DEFAULT_GAP_S
) -> SessionPartial:
    """The slim per-shard session state :func:`merge_session_sizes` needs.

    Collapses a shard's flows to, per (client, video) group, the local
    session ``(first_t_start, size)`` pairs plus the group's max
    ``t_end`` — a few scalars per session instead of the flows
    themselves, so shard workers never ship records back.  Runs on the
    columnar session index under ``REPRO_KERNELS=numpy`` and on the
    record spec otherwise; both produce identical partials.

    Args:
        records: The shard's flows (a
            :class:`~repro.trace.columnar.FlowTable` or record sequence).
        gap_s: The session gap T.
    """
    if gap_s <= 0:
        raise ValueError("gap_s must be positive")
    table = active_table(records)
    if table is not None:
        return _session_partial_numpy(table, gap_s)
    if isinstance(records, FlowTable):
        records = records.records
    return _session_partial_python(records, gap_s)


def _session_partial_numpy(table: FlowTable, gap_s: float) -> SessionPartial:
    if len(table) == 0:
        return {}
    index = table.session_index()
    cols = table.columns()
    starts = index.session_starts(gap_s)
    first_rows = np.flatnonzero(starts)
    bounds = np.append(first_rows, len(starts))
    sizes = np.diff(bounds).tolist()
    first_ts = index.t_start[first_rows].tolist()
    src = cols.src_ip[index.order[first_rows]].tolist()
    video_ids = cols.video_ids.tolist()
    vid = cols.video_code[index.order[first_rows]].tolist()
    group_heads = np.flatnonzero(index.new_group)
    group_max_te = np.maximum.reduceat(index.t_end, group_heads).tolist()
    session_grp = (np.cumsum(index.new_group) - 1)[first_rows].tolist()
    out: SessionPartial = {}
    for i, (ts, size) in enumerate(zip(first_ts, sizes)):
        key = (src[i], video_ids[vid[i]])
        entry = out.get(key)
        if entry is None:
            entry = out[key] = ([], group_max_te[session_grp[i]])
        entry[0].append((ts, size))
    return out


def _session_partial_python(
    records: Sequence[FlowRecord], gap_s: float
) -> SessionPartial:
    out: SessionPartial = {}
    for flows in _sorted_groups(records):
        first = flows[0]
        items: List[Tuple[float, object]] = []
        start_ts = first.t_start
        size = 1
        horizon = first.t_end
        max_te = first.t_end
        for flow in flows[1:]:
            if flow.t_start - horizon < gap_s:
                size += 1
            else:
                items.append((start_ts, size))
                start_ts = flow.t_start
                size = 1
            horizon = max(horizon, flow.t_end)
            max_te = max(max_te, flow.t_end)
        items.append((start_ts, size))
        out[(first.src_ip, first.video_id)] = (items, max_te)
    return out


def merge_session_sizes(
    partials: Sequence[SessionPartial], gap_s: float = DEFAULT_GAP_S
) -> List[int]:
    """Merged session sizes over a shard partition, in batch order.

    Args:
        partials: One :func:`session_partial` per shard, **in shard time
            order** (shard ``k`` strictly precedes shard ``k+1``).
        gap_s: The same gap the partials were built with.

    Returns:
        Flows-per-session counts equal to
        ``[s.num_flows for s in build_sessions(all_flows, gap_s)]``.
    """
    merged = _stitch(partials, gap_s, lambda a, b: a + b)
    return _flatten(merged)


def merge_sessions(
    shard_sessions: Sequence[Sequence[Session]], gap_s: float = DEFAULT_GAP_S
) -> List[Session]:
    """Stitch per-shard session lists into the whole-dataset sessions.

    The first-class operator: feed it ``build_sessions(shard, gap_s)``
    for each shard of **any** time partition (in time order) and it
    returns exactly ``build_sessions(whole, gap_s)`` — same sessions,
    same flow lists, same order.  Output sessions whose seams needed no
    repair are shared with the inputs, not copied.

    Args:
        shard_sessions: Per-shard session lists, shards in time order.
        gap_s: The same gap the shard sessions were built with.
    """
    per_shard: List[SessionPartial] = []
    for sessions in shard_sessions:
        groups: SessionPartial = {}
        for session in sessions:
            key = (session.client_ip, session.video_id)
            session_max_te = max(f.t_end for f in session.flows)
            entry = groups.get(key)
            if entry is None:
                groups[key] = ([(session.t_start, session)], session_max_te)
            else:
                entry[0].append((session.t_start, session))
                groups[key] = (entry[0], max(entry[1], session_max_te))
        per_shard.append(groups)

    def join(open_session: Session, nxt: Session) -> Session:
        return Session(
            client_ip=open_session.client_ip,
            video_id=open_session.video_id,
            flows=open_session.flows + nxt.flows,
        )

    merged = _stitch(per_shard, gap_s, join)
    return _flatten(merged)


# ------------------------------------------------------- plain reductions


def merge_grouped_sums(
    parts: Sequence[Dict[Hashable, int]]
) -> Dict[Hashable, int]:
    """Exact integer grouped-sum reduction.

    Keys keep first-occurrence order across shards — with contiguous
    time shards that equals the whole-stream first-occurrence order,
    which the preferred-DC tie-breaking depends on.  Values are Python
    ints, so sums are exact at any scale (no float64 accumulation).
    """
    out: Dict[Hashable, int] = {}
    for part in parts:
        for key, value in part.items():
            out[key] = out.get(key, 0) + int(value)
    return out


def merge_histograms(parts: Sequence[Dict[Hashable, int]]) -> Dict[Hashable, int]:
    """Merge bucket-count histograms (add counts; union of buckets).

    Bucket order follows first occurrence, so merging partials that all
    use a fixed bucket list (e.g. ``HISTOGRAM_BUCKETS``) keeps it.
    """
    return merge_grouped_sums(parts)


def merge_cdf_samples(parts: Sequence[Sequence[float]]) -> List[float]:
    """K-way merge of per-shard **sorted** sample lists.

    The merged list equals sorting the concatenation, so any CDF /
    percentile read over it matches the monolithic computation exactly.
    """
    return list(heapq.merge(*parts))


# --------------------------------------------------- accumulator merges


def merge_traffic(parts: Sequence[TrafficAccumulator]) -> TrafficAccumulator:
    """Merge per-shard :class:`TrafficAccumulator` states.

    Replays shards in order, so the merged ``_servers`` insertion order
    is the global first-occurrence order — byte-identical Table I/II and
    preferred-DC derivations follow.
    """
    out = TrafficAccumulator()
    for part in parts:
        out.flows += part.flows
        out.total_bytes += part.total_bytes
        out._clients.update(part._clients)
        for ip, stats in part._servers.items():
            merged = out._stats(ip)
            merged.num_bytes += stats.num_bytes
            merged.num_flows += stats.num_flows
            merged.video_flows += stats.video_flows
    return out


def merge_hourly(parts: Sequence[HourlyShareAccumulator]) -> HourlyShareAccumulator:
    """Merge per-shard :class:`HourlyShareAccumulator` states."""
    out = HourlyShareAccumulator()
    for part in parts:
        for ip, hours in part._counts.items():
            merged = out._counts.setdefault(ip, {})
            for hour, count in hours.items():
                merged[hour] = merged.get(hour, 0) + count
    return out
