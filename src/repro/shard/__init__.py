"""Sharded, zero-copy scale-out (ROADMAP item 4).

The process backend used to pickle whole datasets and worlds across the
pool boundary; at scale 1.0+ that serialization is the dominant wall.
This package removes it in three composable layers:

* :mod:`repro.shard.shm` — shared-memory column transport: a
  :class:`~repro.trace.columnar.FlowTable`'s columns are published once
  into a named segment (``multiprocessing.shared_memory`` or a
  memory-mapped file) and process workers *attach* by name instead of
  unpickling records.  Serial/thread backends attach as a no-op view of
  the original table.
* :mod:`repro.shard.partition` — deterministic (vantage, time-window)
  shard keys over the globally time-sorted flow columns; each shard is a
  contiguous row range, so concatenating shards reproduces the batch
  record order and shard keys slot into the artifact cache.
* :mod:`repro.shard.merge` — first-class merge operators
  (:func:`~repro.shard.merge.merge_sessions` seam stitching, exact
  integer grouped sums, CDF/histogram merges, accumulator merges) that
  combine per-shard kernel outputs into byte-identical study results.

:mod:`repro.shard.study` wires the three into ``repro study --sharded``.
"""

from repro.shard.merge import (
    merge_cdf_samples,
    merge_grouped_sums,
    merge_histograms,
    merge_hourly,
    merge_session_sizes,
    merge_sessions,
    merge_traffic,
    session_partial,
)
from repro.shard.partition import Shard, ShardKey, partition_table
from repro.shard.shm import (
    ENV_SHM,
    SegmentScope,
    attach_table,
    live_segments,
    publish_table,
    records_from_columns,
    shm_mode,
)

__all__ = [
    "ENV_SHM",
    "SegmentScope",
    "Shard",
    "ShardKey",
    "attach_table",
    "live_segments",
    "merge_cdf_samples",
    "merge_grouped_sums",
    "merge_histograms",
    "merge_hourly",
    "merge_session_sizes",
    "merge_sessions",
    "merge_traffic",
    "partition_table",
    "publish_table",
    "records_from_columns",
    "session_partial",
    "shm_mode",
]
