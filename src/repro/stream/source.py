"""Stream sources: live simulation, flow-log replay, and fault injection.

Every source yields :class:`~repro.stream.events.FlowArrival` and
:class:`~repro.stream.events.WatermarkAdvance` events, assigns emission
sequence numbers, honours the watermark contract (no later arrival
starts before the last watermark), and ends with an infinite watermark.

:func:`inject_disorder` is the fault-plan site for out-of-order
delivery: deterministically chosen records are held back and re-emitted
a few arrivals later, while the outgoing watermark is lagged below every
held record.  The disorder therefore stays *within* the watermark, the
windower's per-window sort absorbs it, and streamed outputs remain
byte-identical — which is exactly the resilience property the chaos
tests pin.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from repro.faults import report as degradation
from repro.faults.plan import FaultPlan, active_plan
from repro.sim.engine import DEFAULT_MISS_PROBABILITY, stream_requests
from repro.sim.scenarios import ScenarioWorld
from repro.stream.events import FlowArrival, WatermarkAdvance
from repro.trace.logio import iter_flow_log
from repro.trace.records import FlowRecord

#: Ceiling on how many arrivals an injected-disorder record is delayed by.
_MAX_DISORDER_DELAY = 7


def simulated_stream(
    world: ScenarioWorld,
    miss_probability: float = DEFAULT_MISS_PROBABILITY,
) -> Iterator[object]:
    """The simulator's live-emit stream, with fault injection applied.

    Wraps :func:`repro.sim.engine.stream_requests`; an active plan with a
    ``record_disorder`` rate shuffles delivery within the watermark.
    """
    events = stream_requests(world, miss_probability=miss_probability)
    return _maybe_disordered(events, f"sim/{world.spec.name}")


def replay_records(
    records: Iterable[FlowRecord],
    watermark_lag_s: float = 0.0,
    source_label: str = "<records>",
) -> Iterator[object]:
    """Replay an in-memory record sequence as a stream.

    Arrivals keep the sequence's order (their ``seq`` is the sequence
    position, the batch path's tie-break); the watermark trails the
    highest ``t_start`` seen by ``watermark_lag_s``, so a sequence that
    is sorted — or locally shuffled within the lag — replays without
    drops.  Records arriving more than the lag out of order fall behind
    the watermark and are dropped (and counted) by the windower.
    """
    events = _replay(records, watermark_lag_s)
    return _maybe_disordered(events, source_label)


def replay_flow_log(
    path: Union[str, Path],
    on_error: str = "raise",
    watermark_lag_s: float = 0.0,
) -> Iterator[object]:
    """Stream a flow-log file (see :func:`replay_records`).

    Reads through :func:`repro.trace.logio.iter_flow_log`, so line-level
    parsing, ``line_garble`` injection and degradation accounting are
    identical to the batch reader — one record in memory at a time.
    """
    events = _replay(iter_flow_log(path, on_error=on_error), watermark_lag_s)
    return _maybe_disordered(events, Path(path).name)


def _replay(records: Iterable[FlowRecord], watermark_lag_s: float) -> Iterator[object]:
    if watermark_lag_s < 0:
        raise ValueError("watermark_lag_s must be >= 0")
    watermark = -math.inf
    for seq, record in enumerate(records):
        advanced = record.t_start - watermark_lag_s
        if advanced > watermark:
            watermark = advanced
            yield WatermarkAdvance(t_s=watermark)
        yield FlowArrival(record=record, seq=seq)
    yield WatermarkAdvance(t_s=math.inf)


def _maybe_disordered(events: Iterator[object], source_label: str) -> Iterator[object]:
    plan = active_plan()
    if plan is None or plan.record_disorder <= 0.0:
        return events
    return inject_disorder(events, plan, source_label)


def inject_disorder(
    events: Iterable[object], plan: FaultPlan, source_label: str
) -> Iterator[object]:
    """Deterministically delay chosen arrivals, within the watermark.

    Each arrival is held with probability ``plan.record_disorder``
    (decided purely from ``(plan.seed, source_label, seq)``) and released
    after a derived 1..7 further arrivals.  Outgoing watermarks are
    capped at the earliest held record's ``t_start``, so the windower
    never seals a window a held record still belongs to.  Held records
    still in flight when the stream ends are flushed before the final
    watermark.  The total disordered count is recorded as degradation.
    """
    held: List[List[object]] = []  # [release_after_count, FlowArrival]
    count = 0
    disordered = 0
    try:
        for event in events:
            if isinstance(event, FlowArrival):
                count += 1
                if plan.decide(
                    plan.record_disorder, "stream/disorder", source_label, str(event.seq)
                ):
                    delay = 1 + int(
                        plan.unit("stream/disorder-delay", source_label, str(event.seq))
                        * _MAX_DISORDER_DELAY
                    )
                    held.append([count + delay, event])
                    disordered += 1
                else:
                    yield event
                due = [pair for pair in held if pair[0] <= count]
                if due:
                    held = [pair for pair in held if pair[0] > count]
                    due.sort(key=lambda pair: (pair[0], pair[1].seq))
                    for _, arrival in due:
                        yield arrival
            else:
                if math.isinf(event.t_s) and held:
                    held.sort(key=lambda pair: pair[1].seq)
                    for _, arrival in held:
                        yield arrival
                    held = []
                floor = min((pair[1].record.t_start for pair in held),
                            default=math.inf)
                yield WatermarkAdvance(t_s=min(event.t_s, floor))
    finally:
        if disordered:
            degradation.record("stream/source", degraded=1, disordered=disordered)
