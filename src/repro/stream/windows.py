"""Tumbling windows and incremental session building.

:class:`TumblingWindower` partitions arrivals into aligned windows
``[k*w, (k+1)*w)`` keyed by ``t_start`` and seals a window once the
watermark passes its end — at which point no in-watermark arrival can
still belong to it.  Sealed windows come out in index order with records
sorted by ``(t_start, t_end, seq)``, so the concatenation of all sealed
windows is exactly the batch dataset's record order: windows partition
the ``t_start`` axis in order, and within a window the sort reproduces
the global stable ``(t_start, t_end)`` sort (``seq`` carries the batch
tie-break).  That identity is what makes every downstream digest and
table byte-identical to the batch path.

:class:`WindowedSessionBuilder` is the incremental form of
:func:`repro.core.sessions.build_sessions`: it consumes sealed windows
(global record order, so each (client, video) group arrives in the exact
order the batch spec visits it), applies the same
``t_start - horizon < gap`` break rule, and closes a session once the
sealed boundary passes ``horizon + gap`` — every flow that could still
join would start before the boundary, and all such flows have already
arrived.  Open state is dropped as sessions close, so memory follows the
number of *concurrently active* (client, video) pairs, not the flow
count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.sessions import Session
from repro.stream.events import FlowArrival, StreamWindow, WatermarkAdvance
from repro.trace.columnar import FlowTable
from repro.trace.records import FlowRecord


class TumblingWindower:
    """Seals a watermarked event stream into :class:`StreamWindow` batches.

    Args:
        window_s: Window width in seconds.

    Attributes:
        late_records: Arrivals dropped because their window was already
            sealed (a source violated its watermark promise).  The driver
            reports them as degradation.
        windows_sealed: Windows emitted so far.
    """

    def __init__(self, window_s: float):
        if not window_s > 0:
            raise ValueError("window_s must be positive")
        self._window_s = window_s
        self._pending: Dict[int, List[Tuple[FlowRecord, int]]] = {}
        self._watermark = -math.inf
        self._sealed_until: Optional[int] = None  # indices below this are sealed
        self._all_sealed = False
        self.late_records = 0
        self.windows_sealed = 0

    @property
    def window_s(self) -> float:
        """The window width."""
        return self._window_s

    @property
    def watermark(self) -> float:
        """The highest watermark seen."""
        return self._watermark

    @property
    def sealed_boundary_s(self) -> float:
        """Every flow starting before this instant has been sealed or dropped.

        The safe horizon for incremental consumers: session closing uses
        this, not the raw watermark, because flows between the boundary
        and the watermark may still sit in an unsealed window.
        """
        if self._all_sealed:
            return math.inf
        if self._sealed_until is None:
            return -math.inf
        return self._sealed_until * self._window_s

    @property
    def open_windows(self) -> int:
        """Unsealed windows currently holding records."""
        return len(self._pending)

    def push(self, event: Union[FlowArrival, WatermarkAdvance]) -> List[StreamWindow]:
        """Feed one event; return any windows it sealed (possibly none)."""
        if isinstance(event, FlowArrival):
            index = int(event.record.t_start // self._window_s)
            if self._all_sealed or (
                self._sealed_until is not None and index < self._sealed_until
            ):
                self.late_records += 1
                return []
            self._pending.setdefault(index, []).append((event.record, event.seq))
            return []
        return self.advance(event.t_s)

    def advance(self, t_s: float) -> List[StreamWindow]:
        """Advance the watermark; seal and return every window it passes.

        Raises:
            ValueError: If the watermark regresses.
        """
        if t_s < self._watermark:
            raise ValueError(f"watermark regressed: {t_s!r} < {self._watermark!r}")
        self._watermark = t_s
        sealed: List[StreamWindow] = []
        for index in sorted(self._pending):
            if not (math.isinf(t_s) or (index + 1) * self._window_s <= t_s):
                break
            sealed.append(self._seal(index))
        if math.isinf(t_s):
            self._all_sealed = True
        else:
            boundary = int(t_s // self._window_s)
            if self._sealed_until is None or boundary > self._sealed_until:
                self._sealed_until = boundary
        return sealed

    def finish(self) -> List[StreamWindow]:
        """Seal everything still pending (equivalent to an infinite watermark)."""
        return self.advance(math.inf)

    def _seal(self, index: int) -> StreamWindow:
        tagged = self._pending.pop(index)
        tagged.sort(key=lambda pair: (pair[0].t_start, pair[0].t_end, pair[1]))
        self.windows_sealed += 1
        return StreamWindow(
            index=index,
            t_lo=index * self._window_s,
            t_hi=(index + 1) * self._window_s,
            table=FlowTable([record for record, _ in tagged]),
        )


@dataclass
class _OpenSession:
    """One still-growing (client, video) session."""

    flows: List[FlowRecord] = field(default_factory=list)
    horizon: float = -math.inf  # running max of member t_end


class WindowedSessionBuilder:
    """Incremental gap-T session construction over sealed windows.

    Produces exactly the sessions of
    :func:`repro.core.sessions.build_sessions` over the concatenated
    window records (same membership, same per-session flow order);
    emission order follows session *closing* time rather than the batch's
    (client, video) group order.

    Args:
        gap_s: The session gap T.

    Attributes:
        sessions_closed: Sessions emitted so far.
    """

    def __init__(self, gap_s: float):
        if gap_s <= 0:
            raise ValueError("gap_s must be positive")
        self._gap_s = gap_s
        self._open: Dict[Tuple[int, str], _OpenSession] = {}
        self.sessions_closed = 0

    @property
    def open_sessions(self) -> int:
        """Sessions still accepting flows."""
        return len(self._open)

    def observe_window(self, window: StreamWindow) -> List[Session]:
        """Feed one sealed window; return sessions its flows broke closed."""
        closed: List[Session] = []
        for record in window.records:
            key = (record.src_ip, record.video_id)
            state = self._open.get(key)
            if state is None:
                self._open[key] = _OpenSession([record], record.t_end)
            elif record.t_start - state.horizon < self._gap_s:
                state.flows.append(record)
                if record.t_end > state.horizon:
                    state.horizon = record.t_end
            else:
                # The batch spec carries the group horizon across session
                # breaks, but a break implies t_end >= t_start >= horizon
                # + gap > horizon, so the new flow's t_end IS the carried
                # max — restarting the state loses nothing.
                closed.append(Session(client_ip=key[0], video_id=key[1], flows=state.flows))
                self._open[key] = _OpenSession([record], record.t_end)
        self.sessions_closed += len(closed)
        return closed

    def advance(self, sealed_boundary_s: float) -> List[Session]:
        """Close every session no sealed-or-future flow can join.

        Args:
            sealed_boundary_s: The windower's
                :attr:`~TumblingWindower.sealed_boundary_s` — every flow
                starting before it has already been fed.  A session whose
                ``horizon + gap`` lies at or below the boundary is final:
                any joining flow would start before ``horizon + gap``.
        """
        closed: List[Session] = []
        for key, state in list(self._open.items()):
            if state.horizon + self._gap_s <= sealed_boundary_s:
                closed.append(Session(client_ip=key[0], video_id=key[1], flows=state.flows))
                del self._open[key]
        self.sessions_closed += len(closed)
        return closed

    def finish(self) -> List[Session]:
        """Close everything still open (end of stream)."""
        return self.advance(math.inf)
