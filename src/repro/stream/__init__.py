"""Event-driven streaming ingestion (`repro study --stream`).

Flow records arrive as a time-ordered event stream instead of a fully
materialised week: the simulator's live-emit mode
(:func:`repro.sim.engine.stream_requests`) or a flow-log replay
(:func:`repro.stream.source.replay_flow_log`) yields
:class:`~repro.stream.events.FlowArrival` and
:class:`~repro.stream.events.WatermarkAdvance` events; a
:class:`~repro.stream.windows.TumblingWindower` seals them into
per-window :class:`~repro.trace.columnar.FlowTable` batches (so the
numpy kernels run unchanged); a
:class:`~repro.stream.windows.WindowedSessionBuilder` closes gap-T
sessions incrementally; and the online accumulators
(:mod:`repro.stream.accumulators`, :mod:`repro.core.streaming`) update
per window with memory bounded by servers x hours + open sessions +
one window — never by the flow count.

The whole path is a drop-in execution strategy, not a fork of the
analysis: ``repro study --stream`` renders byte-identical output (and
``--digests`` lines) to the batch path at any window size.  See
docs/architecture.md ("Streaming ingestion") for the watermark
semantics and the equivalence argument.
"""

from repro.stream.accumulators import EdgeCloudAccumulator
from repro.stream.events import FlowArrival, StreamWindow, WatermarkAdvance
from repro.stream.digest import StreamingDigest
from repro.stream.source import inject_disorder, replay_flow_log, replay_records, simulated_stream
from repro.stream.study import (
    StreamStudy,
    StreamedDataset,
    render_stream_report,
    run_streaming_study,
    stream_dataset,
)
from repro.stream.windows import TumblingWindower, WindowedSessionBuilder

__all__ = [
    "EdgeCloudAccumulator",
    "FlowArrival",
    "StreamStudy",
    "StreamWindow",
    "StreamedDataset",
    "StreamingDigest",
    "TumblingWindower",
    "WatermarkAdvance",
    "WindowedSessionBuilder",
    "inject_disorder",
    "render_stream_report",
    "replay_flow_log",
    "replay_records",
    "run_streaming_study",
    "simulated_stream",
    "stream_dataset",
]
