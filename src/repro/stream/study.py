"""The streamed study: the paper's headline analysis with bounded memory.

:func:`stream_dataset` drives one world's live-emit event stream through
the tumbling windower and every online accumulator; :class:`StreamStudy`
then runs the *active* half of the methodology (RTT campaigns, CBG
clustering) over the retained worlds and derives the same tables the
batch :class:`~repro.core.pipeline.StudyPipeline` renders.

Byte parity is the design contract: ``repro study --stream`` produces
the identical report text and identical ``--digests`` lines as the batch
path, at any window size, because

* the simulator's event stream carries exactly the batch dataset's
  records (same RNG consumption, see
  :func:`repro.sim.engine.stream_requests`),
* sealed windows concatenate to the batch record order (see
  :mod:`repro.stream.windows`), and
* every accumulator reproduces its batch aggregate exactly (see
  :mod:`repro.stream.accumulators`).

Memory stays bounded by distinct entities — servers, clients, open
sessions, one window's records — never by the flow count.  (The request
*schedule* is still materialised per world by the workload generator;
flow records, the dominant term, are not.)
"""

from __future__ import annotations

import io
import resource
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, List, Mapping, Optional

from repro import obs
from repro.core import asmap
from repro.core.geography import ContinentRow, render_table3
from repro.core.preferred import PreferredDcReport
from repro.core.asmap import render_table2
from repro.core.sessions import DEFAULT_GAP_S
from repro.core.streaming import HotSpotDetector, LoadBalanceDetector
from repro.core.summary import DatasetSummary, render_table1
from repro.exec.executor import ParallelExecutor
from repro.faults import report as degradation
from repro.geo.landmarks import LandmarkSet, generate_landmarks
from repro.geoloc.cbg import CbgGeolocator
from repro.geoloc.clustering import ServerMap, cluster_servers
from repro.geoloc.probing import CampaignJob, RttProber, run_campaigns
from repro.net.latency import Site
from repro.reporting.timing import phase_timer
from repro.sim.driver import DEFAULT_SCALE
from repro.sim.engine import DEFAULT_MISS_PROBABILITY
from repro.sim.scenarios import DATASET_NAMES, PAPER_SCENARIOS, ScenarioWorld, build_world
from repro.sim.seeding import derive_seed
from repro.stream.accumulators import (
    HourlyShareAccumulator,
    SessionStatsAccumulator,
    TrafficAccumulator,
)
from repro.stream.digest import StreamingDigest
from repro.stream.events import WatermarkAdvance
from repro.stream.source import simulated_stream
from repro.stream.windows import TumblingWindower, WindowedSessionBuilder
from repro.trace.records import WEEK_S


def peak_rss_kb() -> int:
    """This process's peak resident set size so far, in kilobytes."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass
class StreamedDataset:
    """One dataset's week, consumed as a stream.

    Attributes:
        name: Dataset name.
        world: The physical world behind it (kept for the active
            measurements, exactly as the batch ``SimulationResult`` keeps
            its world).
        traffic: Per-server traffic totals and their derivations.
        hourly: Per-hour video-flow counts.
        session_stats: Flows-per-session histogram state.
        hot_spots: Online per-video spike detector.
        load_balance: Online byte-concentration monitor.
        digest: Running content digest over the sealed windows.
        windows: Windows sealed.
        late_records: Arrivals dropped for violating the watermark.
        sessions_closed: Sessions closed incrementally.
        peak_open_sessions: High-water mark of concurrently open sessions.
        peak_window_records: Largest single sealed window.
        rss_after_kb: Process peak RSS when this dataset finished — the
            per-dataset points of the run's memory trajectory.
    """

    name: str
    world: ScenarioWorld
    traffic: TrafficAccumulator
    hourly: HourlyShareAccumulator
    session_stats: SessionStatsAccumulator
    hot_spots: HotSpotDetector
    load_balance: LoadBalanceDetector
    digest: StreamingDigest
    windows: int
    late_records: int
    sessions_closed: int
    peak_open_sessions: int
    peak_window_records: int
    rss_after_kb: int


def stream_dataset(
    world: ScenarioWorld,
    window_s: float = 3600.0,
    gap_s: float = DEFAULT_GAP_S,
    miss_probability: float = DEFAULT_MISS_PROBABILITY,
) -> StreamedDataset:
    """Run one world's week as a stream and fold it into accumulators.

    Args:
        world: A built scenario world.
        window_s: Tumbling-window width in seconds.
        gap_s: Session gap T for the incremental session builder.
        miss_probability: Monitor classification-miss probability.

    Returns:
        The :class:`StreamedDataset` with every accumulator final.
    """
    name = world.spec.name
    windower = TumblingWindower(window_s)
    builder = WindowedSessionBuilder(gap_s)
    traffic = TrafficAccumulator()
    hourly = HourlyShareAccumulator()
    session_stats = SessionStatsAccumulator()
    hot_spots = HotSpotDetector()
    balance = LoadBalanceDetector()
    digest = StreamingDigest()
    peak_open = 0
    peak_window = 0
    last_boundary = float("-inf")
    with obs.span("stream/ingest", dataset=name, window_s=window_s):
        for event in simulated_stream(world, miss_probability=miss_probability):
            for window in windower.push(event):
                digest.update_window(window)
                traffic.observe_window(window)
                hourly.observe_window(window)
                hot_spots.observe_window(window)
                balance.observe_window(window)
                session_stats.add(builder.observe_window(window))
                peak_window = max(peak_window, len(window))
                obs.inc("stream.windows", dataset=name)
                obs.observe("stream.window_records", len(window), dataset=name)
            boundary = windower.sealed_boundary_s
            if boundary > last_boundary:
                # The boundary moves once per window period, so session
                # sweeps are per-window, not per-event.
                last_boundary = boundary
                peak_open = max(peak_open, builder.open_sessions)
                session_stats.add(builder.advance(boundary))
                obs.set_gauge("stream.open_sessions", builder.open_sessions, dataset=name)
        for window in windower.finish():
            # Defensive: a well-formed source ends with an infinite
            # watermark, which already sealed everything above.
            digest.update_window(window)
            traffic.observe_window(window)
            hourly.observe_window(window)
            hot_spots.observe_window(window)
            balance.observe_window(window)
            session_stats.add(builder.observe_window(window))
        session_stats.add(builder.finish())
        obs.set_gauge("stream.peak_rss", peak_rss_kb())
    if windower.late_records:
        degradation.record("stream/windower", degraded=1, late=windower.late_records)
    return StreamedDataset(
        name=name,
        world=world,
        traffic=traffic,
        hourly=hourly,
        session_stats=session_stats,
        hot_spots=hot_spots,
        load_balance=balance,
        digest=digest,
        windows=windower.windows_sealed,
        late_records=windower.late_records,
        sessions_closed=builder.sessions_closed,
        peak_open_sessions=peak_open,
        peak_window_records=peak_window,
        rss_after_kb=peak_rss_kb(),
    )


class StreamStudy:
    """The study's tables, derived from streamed datasets.

    The measurement half — RTT campaigns, CBG landmarks, clustering — is
    the same *active* methodology the batch
    :class:`~repro.core.pipeline.StudyPipeline` runs, with the same
    derived seeds, span names and degradation stages; only the passive
    trace aggregates come from accumulators instead of materialised
    datasets.

    Args:
        streamed: Mapping dataset name → streamed dataset, in
            presentation order.
        landmark_count: CBG landmark budget (``None`` = full set).
        probes_per_measurement: Pings per RTT measurement.
        seed: Measurement-noise seed (the batch pipeline's default 11).
        executor: Fan-out strategy for the RTT campaigns.
    """

    def __init__(
        self,
        streamed: Mapping[str, StreamedDataset],
        landmark_count: Optional[int] = None,
        probes_per_measurement: int = 6,
        seed: int = 11,
        executor: Optional[ParallelExecutor] = None,
    ):
        if not streamed:
            raise ValueError("study needs at least one dataset")
        self._streamed = dict(streamed)
        self._landmark_count = landmark_count
        self._probes = probes_per_measurement
        self._seed = seed
        self._executor = executor

    # ------------------------------------------------------------ plumbing

    @property
    def dataset_names(self) -> List[str]:
        """Dataset names in insertion order."""
        return list(self._streamed)

    def streamed(self, name: str) -> StreamedDataset:
        """One streamed dataset."""
        return self._streamed[name]

    @cached_property
    def _site_of_ip(self) -> Callable[[int], Optional[Site]]:
        worlds = [s.world for s in self._streamed.values()]

        def site_of_ip(ip: int) -> Optional[Site]:
            for world in worlds:
                site = world.site_of_server_ip(ip)
                if site is not None:
                    return site
            return None

        return site_of_ip

    @cached_property
    def _latency(self):
        return next(iter(self._streamed.values())).world.latency

    def _prober(self, label: str) -> RttProber:
        return RttProber(
            self._latency,
            probes=self._probes,
            seed=derive_seed(self._seed, "prober", label),
        )

    # --------------------------------------------------------- T1, T2, focus

    @cached_property
    def summaries(self) -> Dict[str, DatasetSummary]:
        """Table I rows."""
        return {
            name: s.traffic.summary(name) for name, s in self._streamed.items()
        }

    @cached_property
    def as_breakdowns(self) -> Dict[str, asmap.AsBreakdown]:
        """Table II rows."""
        return {
            name: s.traffic.as_breakdown(
                name, s.world.vantage.asn, s.world.registry
            )
            for name, s in self._streamed.items()
        }

    @cached_property
    def focus_ips(self) -> Dict[str, List[int]]:
        """Per-dataset Google-focus server lists (Section IV)."""
        return {
            name: s.traffic.focus_ips(s.world.vantage.asn, s.world.registry)
            for name, s in self._streamed.items()
        }

    # ------------------------------------------------------------------- F2

    @cached_property
    def rtt_campaigns(self) -> Dict[str, Dict[int, float]]:
        """Figure 2 campaigns, identical to the batch pipeline's."""
        site_of_ip = self._site_of_ip
        jobs: List[CampaignJob] = []
        for name, s in self._streamed.items():
            targets: Dict[object, Site] = {}
            for ip in s.traffic.server_ips():
                site = site_of_ip(ip)
                if site is not None:
                    targets[ip] = site
            jobs.append(
                CampaignJob(
                    label=f"campaign/{name}",
                    latency=self._latency,
                    origin=s.world.vantage.probe_site,
                    targets=targets,
                    probes=self._probes,
                    seed=derive_seed(self._seed, "prober", f"campaign/{name}"),
                )
            )
        with obs.span("pipeline/rtt_campaigns", campaigns=len(jobs)):
            measured = run_campaigns(jobs, executor=self._executor)
        degradation.stage_completed("pipeline/rtt_campaigns")
        return dict(zip(self._streamed, measured))

    # ------------------------------------------------------- CBG (F3, T3)

    @cached_property
    def landmarks(self) -> LandmarkSet:
        """The CBG landmark population."""
        full = generate_landmarks(seed=derive_seed(self._seed, "landmarks"))
        if self._landmark_count is not None and self._landmark_count < len(full):
            return full.subsample(self._landmark_count, seed=self._seed)
        return full

    @cached_property
    def geolocator(self) -> CbgGeolocator:
        """The calibrated CBG instance."""
        return CbgGeolocator(self.landmarks, self._prober("cbg"))

    @cached_property
    def server_map(self) -> ServerMap:
        """CBG clustering over the union of all datasets' focus servers."""
        union: List[int] = sorted(
            {ip for ips in self.focus_ips.values() for ip in ips}
        )
        site_of_ip = self._site_of_ip

        def geolocate(ip: int):
            site = site_of_ip(ip)
            if site is None:
                raise LookupError(f"cannot reach server {ip} for probing")
            return self.geolocator.geolocate_target(site)

        with obs.span("pipeline/server_map", servers=len(union)):
            server_map = cluster_servers(union, geolocate)
        degradation.stage_completed("pipeline/server_map")
        return server_map

    @cached_property
    def table3_rows(self) -> List[ContinentRow]:
        """Table III rows."""
        return [
            ContinentRow(
                name=name,
                counts=self.server_map.continent_counts(self.focus_ips[name]),
            )
            for name in self._streamed
        ]

    # ------------------------------------------------------- F7-F10

    @cached_property
    def preferred_reports(self) -> Dict[str, PreferredDcReport]:
        """Per-dataset preferred-data-center reports."""
        with phase_timer("analysis/preferred"):
            reports: Dict[str, PreferredDcReport] = {}
            for name, s in self._streamed.items():
                reports[name] = s.traffic.preferred_report(
                    name,
                    self.server_map,
                    self.rtt_campaigns[name],
                    self.focus_ips[name],
                    s.world.vantage.city.point,
                )
        degradation.stage_completed("pipeline/preferred")
        return reports

    def nonpreferred_fraction(self, name: str) -> float:
        """Overall non-preferred video-flow share for one dataset."""
        return self._streamed[name].traffic.nonpreferred_fraction(
            self.preferred_reports[name], self.server_map, self.focus_ips[name]
        )

    def hourly_nonpreferred(self, name: str) -> Dict[int, float]:
        """Figure 9's hourly non-preferred fractions for one dataset."""
        s = self._streamed[name]
        return s.hourly.fractions(
            self.preferred_reports[name],
            self.server_map,
            num_hours=int(s.world.duration_s // 3600),
            focus_ips=self.focus_ips[name],
        )

    def session_histogram(self, name: str) -> Dict[str, float]:
        """One Figure 6 bar group, from the incremental builder."""
        return self._streamed[name].session_stats.histogram()

    # ---------------------------------------------------------------- stats

    def digests(self) -> Dict[str, str]:
        """Per-dataset streaming content digests."""
        return {name: s.digest.hexdigest() for name, s in self._streamed.items()}

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Machine-readable per-dataset streaming statistics."""
        out: Dict[str, Dict[str, object]] = {}
        for name, s in self._streamed.items():
            out[name] = {
                "flows": s.traffic.flows,
                "windows": s.windows,
                "late_records": s.late_records,
                "sessions_closed": s.sessions_closed,
                "peak_open_sessions": s.peak_open_sessions,
                "peak_window_records": s.peak_window_records,
                "hot_spot_events": len(s.hot_spots.events),
                "load_spread_fraction": s.load_balance.spread_fraction,
                "rss_after_kb": s.rss_after_kb,
            }
        return out


def run_streaming_study(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    window_s: float = 3600.0,
    duration_s: float = WEEK_S,
    landmark_count: Optional[int] = None,
    gap_s: float = DEFAULT_GAP_S,
    executor: Optional[ParallelExecutor] = None,
) -> StreamStudy:
    """Stream every dataset of the study and wire up the analysis.

    The worlds are built with the same parameters the batch
    :func:`repro.sim.driver.run_all` uses, so the streamed records are
    the batch datasets' records.
    """
    streamed: Dict[str, StreamedDataset] = {}
    for name in DATASET_NAMES:
        world = build_world(
            PAPER_SCENARIOS[name], scale=scale, seed=seed, duration_s=duration_s
        )
        streamed[name] = stream_dataset(world, window_s=window_s, gap_s=gap_s)
    return StreamStudy(streamed, landmark_count=landmark_count, executor=executor)


def render_stream_report(study: StreamStudy) -> str:
    """Render the study summary — byte-identical to the batch report.

    The text reproduces ``repro study``'s default (non ``--full``) output
    exactly; the parity tests and the ``stream-smoke`` CI job diff the
    two byte for byte.
    """
    buffer = io.StringIO()
    print(render_table1(study.summaries.values()), file=buffer)
    print("", file=buffer)
    print(render_table2(study.as_breakdowns.values()), file=buffer)
    print("", file=buffer)
    print(render_table3(study.table3_rows), file=buffer)
    print("", file=buffer)
    for name in study.dataset_names:
        report = study.preferred_reports[name]
        print(
            f"{name:12s} preferred={report.preferred_id:24s} "
            f"share={report.byte_share(report.preferred_id):6.1%} "
            f"non-preferred flows={study.nonpreferred_fraction(name):6.1%}",
            file=buffer,
        )
    return buffer.getvalue()
