"""The streaming ingestion event vocabulary.

Two wire events travel from a source to the windowing layer:

* :class:`FlowArrival` — one observed flow record, tagged with a source
  emission sequence number.  The sequence number is the streaming stand-in
  for "position in the batch record list": window sorts use it to break
  exact ``(t_start, t_end)`` ties the same way the batch path's stable
  sort does, which keeps streamed output byte-identical even when a fault
  plan delays records out of order.
* :class:`WatermarkAdvance` — the source's promise that every later
  arrival starts at or after ``t_s``.  Watermarks drive window sealing
  and incremental session closing; a final infinite watermark ends the
  stream.

A sealed window is a :class:`StreamWindow`: a per-window
:class:`~repro.trace.columnar.FlowTable` (records sorted by
``(t_start, t_end, seq)``) plus its time bounds, so every existing numpy
kernel runs unchanged on window batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.trace.columnar import FlowTable
from repro.trace.records import FlowRecord


@dataclass(frozen=True)
class FlowArrival:
    """One flow record arriving on the stream.

    Attributes:
        record: The observed flow.
        seq: Source emission sequence number (0, 1, 2, ... in the order
            the source classified the flows, before any disorder).
    """

    record: FlowRecord
    seq: int


@dataclass(frozen=True)
class WatermarkAdvance:
    """The source's low-watermark promise: no later arrival starts before ``t_s``."""

    t_s: float


@dataclass(frozen=True)
class StreamWindow:
    """One sealed tumbling window ``[t_lo, t_hi)``.

    Attributes:
        index: Window index (``t_lo = index * window_s``).
        t_lo: Inclusive window start.
        t_hi: Exclusive window end.
        table: Columnar view over the window's records, sorted by
            ``(t_start, t_end, seq)`` — the batch dataset's order
            restricted to this window.
    """

    index: int
    t_lo: float
    t_hi: float
    table: FlowTable

    @property
    def records(self) -> List[FlowRecord]:
        """The window's records (sorted; see :attr:`table`)."""
        return self.table.records

    def __len__(self) -> int:
        return len(self.table)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self.table)
