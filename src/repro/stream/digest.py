"""Incremental content digests over sealed windows.

The batch :meth:`~repro.trace.records.Dataset.content_digest` hashes the
canonical flow-log serialisation of the time-sorted record list.  Sealed
windows arrive in index order with records in exactly that global order
(see :mod:`repro.stream.windows`), so hashing them as they seal yields
the identical hex digest without ever materialising the dataset — the
``--digests`` byte-parity check costs one running sha256.
"""

from __future__ import annotations

import hashlib

from repro.stream.events import StreamWindow
from repro.trace.logio import format_record


class StreamingDigest:
    """A running sha256 over the canonical serialisation of sealed windows."""

    def __init__(self):
        self._digest = hashlib.sha256()
        self.records = 0

    def update_window(self, window: StreamWindow) -> None:
        """Fold one sealed window into the digest."""
        digest = self._digest
        for record in window.records:
            digest.update(format_record(record).encode("ascii"))
            digest.update(b"\n")
        self.records += len(window)

    def hexdigest(self) -> str:
        """The digest over everything sealed so far."""
        return self._digest.hexdigest()
