"""Online per-window accumulators with bounded memory.

Each accumulator folds sealed :class:`~repro.stream.events.StreamWindow`
batches into running state sized by *distinct entities* (servers,
clients, hours, histogram buckets) — never by the flow count — and can
reproduce, exactly, the aggregate the batch analysis computes from the
full record list:

* :class:`TrafficAccumulator` — Table I scalars, per-server byte/flow/
  video-flow totals in first-occurrence order.  Its derivation methods
  rebuild the Table II AS breakdown, the Section IV focus list, the
  Section VI-B preferred-data-center report and the Figure 9/10
  non-preferred fraction with the same ints, the same float divisions
  and the same tie-breaking order as the batch code paths (pinned by the
  streaming parity tests).
* :class:`HourlyShareAccumulator` — per-hour, per-server video-flow
  counts (Figure 9's raw material), O(servers x hours).
* :class:`SessionStatsAccumulator` — the Figure 5/6 flows-per-session
  histogram over incrementally closed sessions.

Accumulators honour ``REPRO_KERNELS``: under the numpy backend each
window is collapsed with the columnar kernels; under python they iterate
records.  Both paths produce identical integers.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.core import asmap
from repro.core.flows import CONTROL_FLOW_THRESHOLD_BYTES
from repro.core.preferred import (
    DataCenterView,
    PreferredDcReport,
    _pick_preferred,
)
from repro.core.sessions import HISTOGRAM_BUCKETS, Session
from repro.core.summary import DatasetSummary
from repro.geo.coords import GeoPoint, haversine_km
from repro.geoloc.clustering import ServerMap
from repro.net.asn import AsRegistry, GOOGLE_ASN
from repro.stream.events import StreamWindow
from repro.trace.columnar import group_sum_int64, use_numpy

#: Composite (server, hour) key stride for the hourly kernel; hours stay
#: far below it for any plausible trace length.
_HOUR_STRIDE = 1 << 20


class _ServerStats:
    """Running totals for one server address."""

    __slots__ = ("num_bytes", "num_flows", "video_flows")

    def __init__(self):
        self.num_bytes = 0
        self.num_flows = 0
        self.video_flows = 0


class TrafficAccumulator:
    """Table I/II/VI-B state for one dataset, updated per sealed window.

    Attributes:
        flows: Total flows seen.
        total_bytes: Total bytes seen.
    """

    def __init__(self):
        self.flows = 0
        self.total_bytes = 0
        self._clients: Set[int] = set()
        # Insertion order = first occurrence in stream (= record) order;
        # the preferred-DC derivation replays it to reproduce the batch
        # path's view-creation order and stable-sort tie behaviour.
        self._servers: Dict[int, _ServerStats] = {}

    @property
    def num_servers(self) -> int:
        """Distinct server addresses seen."""
        return len(self._servers)

    @property
    def num_clients(self) -> int:
        """Distinct client addresses seen."""
        return len(self._clients)

    def observe_window(self, window: StreamWindow) -> None:
        """Fold one sealed window in."""
        if len(window) == 0:
            return
        if use_numpy():
            import numpy as np

            cols = window.table.columns()
            self.flows += len(window)
            self.total_bytes += int(cols.num_bytes.sum())
            self._clients.update(np.unique(cols.src_ip).tolist())
            uniq, first_idx, inverse = np.unique(
                cols.dst_ip, return_index=True, return_inverse=True
            )
            bytes_per = group_sum_int64(inverse, cols.num_bytes, len(uniq))
            flows_per = np.bincount(inverse, minlength=len(uniq))
            video_per = np.bincount(
                inverse[cols.num_bytes >= CONTROL_FLOW_THRESHOLD_BYTES],
                minlength=len(uniq),
            )
            for j in np.argsort(first_idx, kind="stable").tolist():
                stats = self._stats(int(uniq[j]))
                stats.num_bytes += int(bytes_per[j])
                stats.num_flows += int(flows_per[j])
                stats.video_flows += int(video_per[j])
        else:
            for record in window.records:
                self.flows += 1
                self.total_bytes += record.num_bytes
                self._clients.add(record.src_ip)
                stats = self._stats(record.dst_ip)
                stats.num_bytes += record.num_bytes
                stats.num_flows += 1
                if record.num_bytes >= CONTROL_FLOW_THRESHOLD_BYTES:
                    stats.video_flows += 1

    def _stats(self, ip: int) -> _ServerStats:
        stats = self._servers.get(ip)
        if stats is None:
            stats = self._servers[ip] = _ServerStats()
        return stats

    # -------------------------------------------------- batch-equivalent views

    def server_ips(self) -> List[int]:
        """Distinct server addresses, sorted (as ``Dataset.server_ips``)."""
        return sorted(self._servers)

    def summary(self, name: str) -> DatasetSummary:
        """The Table I row (equal to ``summarize`` over the batch dataset)."""
        return DatasetSummary(
            name=name,
            flows=self.flows,
            volume_bytes=self.total_bytes,
            num_servers=self.num_servers,
            num_clients=self.num_clients,
        )

    def as_breakdown(
        self, name: str, vantage_asn: int, registry: AsRegistry
    ) -> asmap.AsBreakdown:
        """The Table II row (equal to ``breakdown_by_as``).

        Raises:
            ValueError: With no flows (the batch path raises too).
        """
        if self.flows == 0:
            raise ValueError(f"dataset {name} is empty")
        server_groups = {
            ip: asmap._group_of(asn, vantage_asn) if asn is not None else "others"
            for ip, asn in ((ip, registry.asn_of(ip)) for ip in self.server_ips())
        }
        server_counts = {g: 0 for g in asmap.AS_GROUPS}
        byte_counts = {g: 0 for g in asmap.AS_GROUPS}
        for ip, group in server_groups.items():
            server_counts[group] += 1
            byte_counts[group] += self._servers[ip].num_bytes
        num_servers = len(server_groups)
        total_bytes = max(1, sum(byte_counts.values()))
        return asmap.AsBreakdown(
            name=name,
            server_fractions={
                g: server_counts[g] / num_servers for g in asmap.AS_GROUPS
            },
            byte_fractions={g: byte_counts[g] / total_bytes for g in asmap.AS_GROUPS},
        )

    def focus_ips(self, vantage_asn: int, registry: AsRegistry) -> List[int]:
        """The Section IV focus list (equal to ``google_focus_ips``)."""
        keep: List[int] = []
        for ip in self.server_ips():
            asn = registry.asn_of(ip)
            if asn == GOOGLE_ASN or (asn is not None and asn == vantage_asn):
                keep.append(ip)
        return keep

    def preferred_report(
        self,
        name: str,
        server_map: ServerMap,
        rtts_ms: Dict[int, float],
        focus_ips: Sequence[int],
        vantage_point: GeoPoint,
    ) -> PreferredDcReport:
        """The Section VI-B report (equal to ``analyze_preferred``).

        Replays the per-server totals in first-occurrence order, which is
        the batch path's view-creation order: byte-descending stable sort
        and the majors/min-RTT rule then tie-break identically.

        Raises:
            ValueError: If no clustered traffic survives the filter.
        """
        keep = set(focus_ips)
        views: Dict[str, DataCenterView] = {}
        total_bytes = 0
        for ip, stats in self._servers.items():
            if ip not in keep:
                continue
            cluster = server_map.by_ip.get(ip)
            if cluster is None:
                continue
            view = views.get(cluster.cluster_id)
            if view is None:
                view = DataCenterView(
                    cluster=cluster,
                    distance_km=haversine_km(vantage_point, cluster.estimate),
                )
                views[cluster.cluster_id] = view
            view.num_bytes += stats.num_bytes
            view.num_flows += stats.num_flows
            total_bytes += stats.num_bytes
            rtt = rtts_ms.get(ip)
            if rtt is not None and rtt < view.min_rtt_ms:
                view.min_rtt_ms = rtt
        if not views:
            raise ValueError(f"no clustered traffic in {name}")
        ordered = sorted(views.values(), key=lambda v: -v.num_bytes)
        return PreferredDcReport(
            dataset_name=name,
            views=ordered,
            preferred_id=_pick_preferred(ordered, total_bytes),
            total_bytes=total_bytes,
        )

    def nonpreferred_fraction(
        self,
        report: PreferredDcReport,
        server_map: ServerMap,
        focus_ips: Sequence[int],
    ) -> float:
        """The Figure 9/10 scalar (equal to ``nonpreferred_fraction``).

        Raises:
            ValueError: With no classifiable video flows.
        """
        keep = set(focus_ips)
        preferred = 0
        nonpreferred = 0
        for ip, stats in self._servers.items():
            if ip not in keep:
                continue
            cluster = server_map.by_ip.get(ip)
            if cluster is None:
                continue
            if cluster.cluster_id == report.preferred_id:
                preferred += stats.video_flows
            else:
                nonpreferred += stats.video_flows
        total = preferred + nonpreferred
        if total == 0:
            raise ValueError("no classifiable video flows")
        return nonpreferred / total


class HourlyShareAccumulator:
    """Per-hour, per-server video-flow counts (Figure 9's raw material)."""

    def __init__(self):
        self._counts: Dict[int, Dict[int, int]] = {}  # ip -> hour -> count

    def observe_window(self, window: StreamWindow) -> None:
        """Fold one sealed window in."""
        if len(window) == 0:
            return
        if use_numpy():
            import numpy as np

            cols = window.table.columns()
            video = cols.num_bytes >= CONTROL_FLOW_THRESHOLD_BYTES
            key = cols.dst_ip[video] * _HOUR_STRIDE + cols.hour[video]
            uniq, counts = np.unique(key, return_counts=True)
            for composite, count in zip(uniq.tolist(), counts.tolist()):
                ip, hour = divmod(composite, _HOUR_STRIDE)
                hours = self._counts.setdefault(ip, {})
                hours[hour] = hours.get(hour, 0) + count
        else:
            for record in window.records:
                if record.num_bytes < CONTROL_FLOW_THRESHOLD_BYTES:
                    continue
                hours = self._counts.setdefault(record.dst_ip, {})
                hours[record.hour] = hours.get(record.hour, 0) + 1

    def fractions(
        self,
        report: PreferredDcReport,
        server_map: ServerMap,
        num_hours: int,
        focus_ips: Optional[Iterable[int]] = None,
        min_flows_per_hour: int = 5,
    ) -> Dict[int, float]:
        """Hourly non-preferred video-flow fractions (the Figure 9 input).

        Equal to the ``hourly_fraction`` computation the batch Figure 9
        path performs over the focus table.
        """
        keep = set(focus_ips) if focus_ips is not None else None
        numerator = [0] * num_hours
        denominator = [0] * num_hours
        for ip, hours in self._counts.items():
            if keep is not None and ip not in keep:
                continue
            cluster = server_map.by_ip.get(ip)
            if cluster is None:
                continue
            nonpreferred = cluster.cluster_id != report.preferred_id
            for hour, count in hours.items():
                if hour >= num_hours:
                    continue
                denominator[hour] += count
                if nonpreferred:
                    numerator[hour] += count
        return {
            h: numerator[h] / denominator[h]
            for h in range(num_hours)
            if denominator[h] >= min_flows_per_hour
        }


class SessionStatsAccumulator:
    """The Figure 5/6 histogram over incrementally closed sessions."""

    def __init__(self):
        self._counts = {label: 0 for label in HISTOGRAM_BUCKETS}
        self.sessions = 0

    def add(self, sessions: Iterable[Session]) -> None:
        """Count a batch of closed sessions."""
        for session in sessions:
            n = session.num_flows
            self._counts[str(n) if n <= 9 else ">9"] += 1
            self.sessions += 1

    def histogram(self) -> Dict[str, float]:
        """Bucket fractions (equal to ``flows_per_session_histogram``).

        Raises:
            ValueError: With no sessions.
        """
        if self.sessions == 0:
            raise ValueError("no sessions")
        return {
            label: self._counts[label] / self.sessions for label in HISTOGRAM_BUCKETS
        }


class EdgeCloudAccumulator:
    """Per-(client subnet x server /24) volume totals for epoch snapshots.

    The raw material of :mod:`repro.monitor`'s edge-cloud snapshots: for
    every sealed window, fold each flow's bytes into the cell keyed by
    the client's subnet name and the server address's ``/prefix_len``
    network.  State is sized by distinct (subnet, prefix) pairs — a few
    dozen for any scenario — never by the flow count, so month-long
    worlds stream through without materialising.

    All totals are exact integers accumulated in pure python (cells are
    too few for the columnar kernels to matter), so snapshots are
    byte-identical on every backend.

    Args:
        subnet_of: Client address -> subnet name (``None`` to skip the
            record — a flow from outside the vantage's address plan).
        prefix_len: Server-side aggregation prefix length (default 24,
            the paper's "servers in the same /24 cluster together").
    """

    def __init__(self, subnet_of: Callable[[int], Optional[str]], prefix_len: int = 24):
        if not 0 < prefix_len <= 32:
            raise ValueError("prefix_len must be in (0, 32]")
        self._subnet_of = subnet_of
        self._shift = 32 - prefix_len
        self.prefix_len = prefix_len
        self._cells: Dict[tuple, List[int]] = {}  # (subnet, prefix) -> [bytes, flows]
        self._rep_ip: Dict[int, int] = {}  # prefix -> lowest server ip seen
        self.bytes_total = 0
        self.flows_total = 0

    def observe_window(self, window: StreamWindow) -> None:
        """Fold one sealed window in."""
        for record in window.records:
            subnet = self._subnet_of(record.src_ip)
            if subnet is None:
                continue
            prefix = record.dst_ip >> self._shift
            cell = self._cells.setdefault((subnet, prefix), [0, 0])
            cell[0] += record.num_bytes
            cell[1] += 1
            self.bytes_total += record.num_bytes
            self.flows_total += 1
            rep = self._rep_ip.get(prefix)
            if rep is None or record.dst_ip < rep:
                self._rep_ip[prefix] = record.dst_ip

    def cells(self) -> List[tuple]:
        """Sorted ``(subnet, prefix, num_bytes, num_flows)`` rows."""
        return [
            (subnet, prefix, totals[0], totals[1])
            for (subnet, prefix), totals in sorted(self._cells.items())
        ]

    def prefixes(self) -> List[int]:
        """Sorted distinct server prefixes seen."""
        return sorted(self._rep_ip)

    def representative_ip(self, prefix: int) -> int:
        """The lowest server address observed inside one prefix.

        Raises:
            KeyError: For prefixes never seen.
        """
        return self._rep_ip[prefix]
