"""Trace views: JSONL persistence, span-tree rendering, Chrome export, diff.

One in-memory trace yields three artifact views:

1. ``trace_<run>.jsonl`` — one JSON object per line: a ``run`` header,
   every finished span, and a ``metrics`` footer.  The durable form that
   ``repro trace`` subcommands consume.
2. Chrome ``trace_event`` JSON — open in ``chrome://tracing`` or
   https://ui.perfetto.dev to flame-graph straggler tasks; each worker
   task gets its own track.
3. The metrics snapshot — merged into ``timing_*.json`` by the
   benchmark conftest, and embedded in the JSONL footer.

All views are derived, deterministic renderings of the same spans; none
of them feeds back into any computation or cache key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.runctx import RunContext
from repro.obs.tracer import SpanRecord

#: Trace file format tag (bump on incompatible JSONL changes).
TRACE_FORMAT = 1


@dataclass
class TraceDoc:
    """A parsed trace file: the run's spans plus its metrics snapshot."""

    run_id: str
    spans: List[SpanRecord] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def roots(self) -> List[SpanRecord]:
        """Top-level spans (no parent), in start order."""
        return sorted(
            (s for s in self.spans if s.parent_id is None),
            key=lambda s: (s.t_start, s.span_id),
        )

    def children(self) -> Dict[Optional[str], List[SpanRecord]]:
        """Parent id → child spans, each list in start order."""
        by_parent: Dict[Optional[str], List[SpanRecord]] = {}
        for span in self.spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        for siblings in by_parent.values():
            siblings.sort(key=lambda s: (s.t_start, s.span_id))
        return by_parent

    def exclusive_s(self, span: SpanRecord,
                    children: Dict[Optional[str], List[SpanRecord]]) -> float:
        """Inclusive time minus the time covered by direct children."""
        child_s = sum(c.inclusive_s for c in children.get(span.span_id, ()))
        return max(0.0, span.inclusive_s - child_s)


# ------------------------------------------------------------------ JSONL IO


def trace_lines(run: RunContext) -> List[str]:
    """The JSONL lines for a run's trace (header, spans, metrics footer)."""
    lines = [json.dumps(
        {"type": "run", "run_id": run.run_id, "format": TRACE_FORMAT},
        separators=(",", ":"),
    )]
    for span in sorted(run.tracer.records, key=lambda s: (s.t_start, s.span_id)):
        lines.append(json.dumps(
            {
                "type": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start": round(span.t_start, 9),
                "end": round(span.t_end, 9),
                "attrs": span.attrs,
                "counters": span.counters,
            },
            separators=(",", ":"), sort_keys=True, default=str,
        ))
    lines.append(json.dumps(
        {"type": "metrics", "data": run.metrics.snapshot()},
        separators=(",", ":"), sort_keys=True,
    ))
    return lines


def write_trace(run: RunContext, out_dir: Union[str, Path]) -> Path:
    """Write ``trace_<run>.jsonl`` into ``out_dir``; returns the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"trace_{run.run_id}.jsonl"
    path.write_text("\n".join(trace_lines(run)) + "\n", encoding="utf-8")
    return path


def read_trace(path: Union[str, Path]) -> TraceDoc:
    """Parse a ``trace_*.jsonl`` file back into a :class:`TraceDoc`.

    Raises:
        ValueError: For files that are not a trace JSONL.
    """
    doc = TraceDoc(run_id="?")
    seen_header = False
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError as error:
            raise ValueError(f"{path}: malformed trace line: {error}") from error
        kind = entry.get("type")
        if kind == "run":
            doc.run_id = entry.get("run_id", "?")
            seen_header = True
        elif kind == "span":
            try:
                doc.spans.append(SpanRecord(
                    span_id=entry["id"],
                    parent_id=entry.get("parent"),
                    name=entry["name"],
                    t_start=float(entry["start"]),
                    t_end=float(entry["end"]),
                    attrs=entry.get("attrs", {}),
                    counters=entry.get("counters", {}),
                ))
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}: malformed span entry: {error!r}"
                ) from error
        elif kind == "metrics":
            doc.metrics = entry.get("data", {})
    if not seen_header:
        raise ValueError(f"{path}: not a repro trace file (no run header)")
    return doc


# ------------------------------------------------------------------ summaries


def _format_counters(counters: Dict[str, float]) -> str:
    if not counters:
        return ""
    cells = " ".join(f"{name}={counters[name]:g}" for name in sorted(counters))
    return f"  [{cells}]"


def render_summary(doc: TraceDoc, max_depth: Optional[int] = None) -> str:
    """The span tree with inclusive/exclusive times, one line per span."""
    children = doc.children()
    lines = [f"TRACE {doc.run_id}", f"{'span':<44s} {'incl s':>9s} {'excl s':>9s}"]

    def walk(span: SpanRecord, depth: int) -> None:
        name = "  " * depth + span.name
        excl = doc.exclusive_s(span, children)
        lines.append(
            f"{name:<44s} {span.inclusive_s:9.3f} {excl:9.3f}"
            f"{_format_counters(span.counters)}"
        )
        if max_depth is not None and depth + 1 >= max_depth:
            return
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in doc.roots():
        walk(root, 0)
    counters = doc.metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("COUNTERS")
        for name in sorted(counters):
            lines.append(f"  {name:<50s} {counters[name]:g}")
    return "\n".join(lines)


def summary_dict(doc: TraceDoc, max_depth: Optional[int] = None) -> Dict[str, Any]:
    """The span tree as a JSON-ready document (``repro trace summary --json``).

    The machine-readable twin of :func:`render_summary`: the same tree,
    depth limit, inclusive/exclusive seconds, and metrics counters, but
    as nested objects a CI script can walk without screen-scraping the
    fixed-width table.
    """
    children = doc.children()

    def node(span: SpanRecord, depth: int) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "name": span.name,
            "inclusive_s": round(span.inclusive_s, 6),
            "exclusive_s": round(doc.exclusive_s(span, children), 6),
        }
        if span.attrs:
            entry["attrs"] = dict(span.attrs)
        if span.counters:
            entry["counters"] = dict(span.counters)
        if max_depth is not None and depth + 1 >= max_depth:
            return entry
        kids = children.get(span.span_id, ())
        if kids:
            entry["children"] = [node(child, depth + 1) for child in kids]
        return entry

    return {
        "run_id": doc.run_id,
        "spans": [node(root, 0) for root in doc.roots()],
        "counters": dict(doc.metrics.get("counters", {})),
        "gauges": dict(doc.metrics.get("gauges", {})),
    }


def render_slowest(doc: TraceDoc, top: int = 10) -> str:
    """The ``top`` spans by exclusive time — where the run actually went."""
    children = doc.children()
    rows = sorted(
        ((doc.exclusive_s(s, children), s) for s in doc.spans),
        key=lambda pair: -pair[0],
    )[:top]
    lines = [f"{'excl s':>9s} {'incl s':>9s}  span"]
    for excl, span in rows:
        lines.append(f"{excl:9.3f} {span.inclusive_s:9.3f}  {span.name} ({span.span_id})")
    return "\n".join(lines)


def inclusive_by_name(doc: TraceDoc) -> Dict[str, float]:
    """Total inclusive seconds per span name (the diff aggregation)."""
    totals: Dict[str, float] = {}
    for span in doc.spans:
        totals[span.name] = totals.get(span.name, 0.0) + span.inclusive_s
    return totals


def render_diff(a: TraceDoc, b: TraceDoc, top: int = 10) -> str:
    """Top regressions between two traces, by per-name inclusive time.

    Positive delta = ``b`` spent longer than ``a`` (a regression when
    ``a`` is the baseline).  Names missing from one side count as zero.
    """
    totals_a = inclusive_by_name(a)
    totals_b = inclusive_by_name(b)
    names = sorted(set(totals_a) | set(totals_b))
    rows = sorted(
        ((totals_b.get(n, 0.0) - totals_a.get(n, 0.0), n) for n in names),
        key=lambda pair: -abs(pair[0]),
    )[:top]
    lines = [
        f"TRACE DIFF  a={a.run_id}  b={b.run_id}",
        f"{'delta s':>9s} {'a s':>9s} {'b s':>9s}  span",
    ]
    for delta, name in rows:
        lines.append(
            f"{delta:+9.3f} {totals_a.get(name, 0.0):9.3f} "
            f"{totals_b.get(name, 0.0):9.3f}  {name}"
        )
    return "\n".join(lines)


# ------------------------------------------------------------- Chrome export


def _track_of(span_id: str) -> str:
    """The Chrome track key: a worker task's id namespace, else main."""
    head, sep, _ = span_id.rpartition(".")
    return head if sep else ""


def to_chrome(doc: TraceDoc) -> Dict[str, Any]:
    """The trace as Chrome ``trace_event`` JSON (complete ``X`` events).

    The main process's spans share ``tid`` 1; every worker task capture
    gets its own ``tid`` so pool concurrency renders as parallel tracks
    in ``chrome://tracing`` / Perfetto.
    """
    tids: Dict[str, int] = {"": 1}
    events: List[Dict[str, Any]] = []
    for span in sorted(doc.spans, key=lambda s: (s.t_start, s.span_id)):
        track = _track_of(span.span_id)
        tid = tids.setdefault(track, len(tids) + 1)
        args: Dict[str, Any] = dict(span.attrs)
        if span.counters:
            args["counters"] = dict(span.counters)
        args["span_id"] = span.span_id
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": round(span.t_start * 1e6, 3),
            "dur": round(span.inclusive_s * 1e6, 3),
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    thread_names = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": "main" if track == "" else f"task {track}"},
        }
        for track, tid in sorted(tids.items(), key=lambda item: item[1])
    ]
    return {
        "traceEvents": thread_names + events,
        "displayTimeUnit": "ms",
        "otherData": {"run_id": doc.run_id},
    }


def write_chrome(doc: TraceDoc, path: Union[str, Path]) -> Path:
    """Write the Chrome ``trace_event`` view to ``path``; returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_chrome(doc), indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


# -------------------------------------------------------------- phase view


def phase_times(records: List[SpanRecord]) -> Dict[str, float]:
    """Accumulated inclusive seconds per phase-kind span name.

    The backing view of :func:`repro.reporting.timing.phases_summary`:
    spans entered through ``phase_timer`` carry ``kind="phase"`` and
    accumulate by name, exactly like the old module-global dict — but
    scoped to the run that recorded them.
    """
    totals: Dict[str, float] = {}
    for record in records:
        if record.attrs.get("kind") == "phase":
            totals[record.name] = totals.get(record.name, 0.0) + record.inclusive_s
    return {name: round(totals[name], 6) for name in sorted(totals)}
