"""Unified observability: hierarchical spans + run-scoped metrics.

``repro.obs`` is the one home for "what happened and how long did it
take" across the pipeline.  The pieces:

* :mod:`repro.obs.tracer` — span recording (``span(...)`` context
  manager), ambient counter/histogram helpers, and the cross-process
  propagation machinery (:class:`SpanContext` out, :class:`TaskCapture`
  back, mirroring how ``REPRO_FAULTS`` travels).
* :mod:`repro.obs.metrics` — the labelled counter/gauge/histogram
  registry that snapshots into ``timing_*.json``.
* :mod:`repro.obs.runctx` — the per-run context scoping the tracer,
  metrics, and degradation counters, fixing the old cross-run
  accumulation leaks.
* :mod:`repro.obs.export` — trace JSONL, Chrome ``trace_event`` export,
  and the summary/slowest/diff renderers behind ``repro trace``.

Set ``REPRO_TRACE=off`` to disable everything; the study's outputs are
byte-identical either way because nothing here touches RNG state or
artifact-cache keys.
"""

from repro.obs.export import (
    TraceDoc,
    phase_times,
    read_trace,
    render_diff,
    render_slowest,
    render_summary,
    summary_dict,
    to_chrome,
    write_chrome,
    write_trace,
)
from repro.obs.metrics import HISTOGRAM_BOUNDS, Histogram, MetricsRegistry
from repro.obs.runctx import RunContext, current_run, new_run, set_current_run
from repro.obs.tracer import (
    ENV_TRACE,
    ENV_TRACE_DIR,
    SpanContext,
    SpanRecord,
    TaskCapture,
    Tracer,
    current_tracer,
    inc,
    merge_capture,
    observe,
    set_gauge,
    span,
    task_capture,
    trace_enabled,
)

__all__ = [
    "ENV_TRACE",
    "ENV_TRACE_DIR",
    "HISTOGRAM_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "RunContext",
    "SpanContext",
    "SpanRecord",
    "TaskCapture",
    "TraceDoc",
    "Tracer",
    "current_run",
    "current_tracer",
    "inc",
    "merge_capture",
    "new_run",
    "observe",
    "phase_times",
    "read_trace",
    "render_diff",
    "render_slowest",
    "render_summary",
    "set_current_run",
    "set_gauge",
    "span",
    "summary_dict",
    "task_capture",
    "to_chrome",
    "trace_enabled",
    "write_chrome",
    "write_trace",
]
