"""Hierarchical span tracing with cross-process propagation.

A *span* is one timed region of the run — a pipeline stage, an executor
batch, one worker task — identified by a run-local id and linked to its
parent, so a finished run yields one tree whose root inclusive time is
the run's wall time.  Design constraints, in order:

* **Deterministic-safe.**  Span ids come from a run-local counter —
  never ``uuid`` or wall-clock entropy — and nothing here ever enters an
  artifact-cache key, so tracing cannot perturb cached results.
* **A true kill-switch.**  ``REPRO_TRACE=off`` makes every entry point a
  no-op: no spans, no metrics, no phase accounting, byte-identical study
  output.
* **Overhead-bounded.**  Spans are coarse (stages, batches, tasks — not
  per-flow), recording is an append to an in-memory list, and the
  enabled check is one environment read.

Cross-process propagation mirrors how ``REPRO_FAULTS`` travels: the
*enabled* flag rides the inherited environment (``REPRO_TRACE``), while
the span linkage rides pickle — the executor hands each task a
:class:`SpanContext` naming the dispatching span, the worker records
into a capture-local :class:`Tracer`, and the finished
:class:`TaskCapture` (spans + metrics) returns with the task's result to
be merged into the dispatching process's trace, rebased onto its clock.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Environment variable switching tracing off (``off``/``0``/``false``/
#: ``no``); anything else — including unset — leaves it on.
ENV_TRACE = "REPRO_TRACE"

#: Environment variable naming a directory to auto-export
#: ``trace_<run>.jsonl`` into at the end of a CLI run.
ENV_TRACE_DIR = "REPRO_TRACE_DIR"

_OFF_VALUES = ("0", "off", "false", "no")


def trace_enabled() -> bool:
    """Whether tracing (spans, metrics, phases) is on (``REPRO_TRACE``)."""
    return os.environ.get(ENV_TRACE, "").strip().lower() not in _OFF_VALUES


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.  Plain data; pickles and serialises.

    Attributes:
        span_id: Run-local id (``s3``; worker spans are dot-prefixed by
            their task's namespace, e.g. ``s2.t1.a1.s3``).
        parent_id: Enclosing span's id (``None`` for the root).
        name: Span name, namespaced like ``"exec/map"``.
        t_start: Start offset in seconds from the run's monotonic origin.
        t_end: End offset, same origin.
        attrs: Free-form attributes set at entry or during the span.
        counters: Counter increments recorded while this span was
            innermost (see :func:`repro.obs.inc`).
    """

    span_id: str
    parent_id: Optional[str]
    name: str
    t_start: float
    t_end: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def inclusive_s(self) -> float:
        """Wall time covered by this span, children included."""
        return self.t_end - self.t_start


@dataclass
class ActiveSpan:
    """A span that is still open; mutate ``attrs`` / ``count()`` freely."""

    span_id: str
    parent_id: Optional[str]
    name: str
    t_start: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    def count(self, name: str, n: float = 1) -> None:
        """Fold a counter increment into this span."""
        self.counters[name] = self.counters.get(name, 0) + n


class Tracer:
    """A run- (or capture-) scoped span recorder.

    Span ids are ``<prefix>s<n>`` with ``n`` from a run-local counter;
    the per-thread span stack gives automatic parenting, so concurrent
    threads can record without interleaving their trees.

    Args:
        id_prefix: Namespace prepended to every span id (worker captures
            use it to keep merged ids globally unique).
        t0: Monotonic origin; defaults to "now".
    """

    def __init__(self, id_prefix: str = "", t0: Optional[float] = None):
        self.t0 = time.perf_counter() if t0 is None else t0
        self.id_prefix = id_prefix
        self.records: List[SpanRecord] = []
        self.metrics = MetricsRegistry()
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _stack(self) -> List[ActiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def now(self) -> float:
        """Seconds since the tracer's monotonic origin."""
        return time.perf_counter() - self.t0

    def current_span(self) -> Optional[ActiveSpan]:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(
        self, name: str, _parent: Optional[str] = None, **attrs: Any
    ) -> Iterator[ActiveSpan]:
        """Open a child span of the current one (or of ``_parent``)."""
        stack = self._stack()
        if _parent is None and stack:
            _parent = stack[-1].span_id
        active = ActiveSpan(
            span_id=f"{self.id_prefix}s{next(self._ids)}",
            parent_id=_parent,
            name=name,
            t_start=self.now(),
            attrs=dict(attrs),
        )
        stack.append(active)
        try:
            yield active
        finally:
            stack.pop()
            self.records.append(
                SpanRecord(
                    span_id=active.span_id,
                    parent_id=active.parent_id,
                    name=name,
                    t_start=active.t_start,
                    t_end=self.now(),
                    attrs=dict(active.attrs),
                    counters=dict(active.counters),
                )
            )

    def drop(self, predicate) -> None:
        """Discard finished spans matching ``predicate`` (tests/resets)."""
        self.records = [r for r in self.records if not predicate(r)]


# --------------------------------------------------------------- ambient state
#
# The per-thread capture stack: worker tasks (and only they) push a
# capture tracer here, so spans recorded inside a task attach to the
# task's capture instead of the process-wide run tracer.

_CAPTURES = threading.local()


def _capture_stack() -> List[Tracer]:
    stack = getattr(_CAPTURES, "stack", None)
    if stack is None:
        stack = _CAPTURES.stack = []
    return stack


def current_tracer() -> Tracer:
    """The tracer spans attach to right now: capture first, else the run's."""
    stack = _capture_stack()
    if stack:
        return stack[-1]
    from repro.obs.runctx import current_run

    return current_run().tracer


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[ActiveSpan]]:
    """Open a span on the ambient tracer; yields ``None`` when tracing is off."""
    if not trace_enabled():
        yield None
        return
    with current_tracer().span(name, **attrs) as active:
        yield active


def inc(name: str, n: float = 1, **labels: Any) -> None:
    """Increment a run counter *and* the innermost open span's tally.

    This is the one-call form injection sites use: the increment lands in
    the ambient metrics registry (labelled) and on the current span
    (unlabelled), so both the aggregate view and the trace tree show it.
    No-op when tracing is off.
    """
    if not trace_enabled():
        return
    tracer = current_tracer()
    tracer.metrics.inc(name, n, **labels)
    active = tracer.current_span()
    if active is not None:
        active.count(name, n)


def observe(name: str, value: float, **labels: Any) -> None:
    """Fold one histogram observation into the ambient registry (no-op off)."""
    if not trace_enabled():
        return
    current_tracer().metrics.observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the ambient registry (no-op when tracing is off)."""
    if not trace_enabled():
        return
    current_tracer().metrics.set_gauge(name, value, **labels)


# ------------------------------------------------------- worker propagation


@dataclass(frozen=True)
class SpanContext:
    """The picklable linkage a dispatching span hands to a worker task.

    Attributes:
        parent_id: The dispatching span's id — worker task spans parent
            to it after the merge.
        prefix: Id namespace for this task's spans (unique per task), so
            merged worker span ids never collide.
    """

    parent_id: Optional[str]
    prefix: str


@dataclass
class TaskCapture:
    """Everything one worker task recorded, ready to travel by pickle.

    Attributes:
        records: The task's finished spans, with times relative to the
            capture's own monotonic origin (the parent rebases them).
        duration: The capture's total wall time (for rebasing).
        metrics: The task-local metrics registry.
    """

    records: List[SpanRecord]
    duration: float
    metrics: MetricsRegistry


class task_capture:
    """Context manager recording one worker task's spans and metrics.

    Opens a root span ``task:<label>`` parented (across the process
    boundary) to ``ctx.parent_id``, and installs a capture tracer as the
    thread's ambient tracer so everything the task records lands in the
    capture.  After exit, :attr:`result` holds the :class:`TaskCapture`
    (or ``None`` when ``ctx`` is ``None`` or tracing is off).
    """

    def __init__(self, ctx: Optional[SpanContext], label: str, attempt: int = 1):
        self._ctx = ctx
        self._label = label
        self._attempt = attempt
        self._tracer: Optional[Tracer] = None
        self.result: Optional[TaskCapture] = None

    def __enter__(self) -> Optional[ActiveSpan]:
        if self._ctx is None or not trace_enabled():
            return None
        self._tracer = Tracer(id_prefix=f"{self._ctx.prefix}.a{self._attempt}.")
        _capture_stack().append(self._tracer)
        self._span_cm = self._tracer.span(
            f"task:{self._label}",
            _parent=self._ctx.parent_id,
            label=self._label,
            attempt=self._attempt,
        )
        return self._span_cm.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._tracer is None:
            return False
        root = self._tracer.current_span()
        if root is not None:
            root.attrs["ok"] = exc_type is None
        self._span_cm.__exit__(None, None, None)
        _capture_stack().pop()
        self.result = TaskCapture(
            records=self._tracer.records,
            duration=self._tracer.now(),
            metrics=self._tracer.metrics,
        )
        return False  # propagate any exception


def merge_capture(capture: Optional[TaskCapture], collected_abs: float) -> None:
    """Fold a worker task's capture into the ambient trace.

    Span times are rebased onto the ambient tracer's clock: the capture
    ran somewhere in ``[collected_abs - duration, collected_abs]`` of the
    local monotonic clock (collection happens promptly after completion),
    so that window anchors the rebase.  Metrics merge into the ambient
    registry.  Safe to call with ``None`` (no capture travelled).

    Args:
        capture: The worker task's capture, or ``None``.
        collected_abs: ``time.perf_counter()`` taken when the task's
            result was collected in this process.
    """
    if capture is None or not trace_enabled():
        return
    tracer = current_tracer()
    offset = max(0.0, (collected_abs - tracer.t0) - capture.duration)
    for record in capture.records:
        tracer.records.append(
            replace(
                record,
                t_start=record.t_start + offset,
                t_end=record.t_end + offset,
            )
        )
    tracer.metrics.merge(capture.metrics)
