"""The run context: one object scoping every per-run accumulator.

Before this module existed, the codebase had grown three independent
module-level accumulators — ``reporting.timing._PHASES``,
``faults.report._EVENTS``, and the executor's ``stats`` lists — each with
its own reset discipline and each leaking across sequential studies in
one process.  The :class:`RunContext` replaces the first two outright:
the tracer (whose spans subsume phase timings) and the degradation
counters live on the context, and starting a new run
(:func:`new_run`) gives every accumulator a fresh start atomically.

The context is process-global, not thread-local: worker *threads* of one
run share its degradation tally (exactly like the old module globals),
while span attribution inside tasks goes through the per-thread capture
stack in :mod:`repro.obs.tracer`.  Worker *processes* get their own
fresh context; their spans and metrics travel back inside task captures,
and their degradation events surface through returned values, as before.

Run ids are ``run-<pid>-<n>`` from a process-local counter — unique
enough to name trace files, free of ``uuid``/wall-clock entropy, and
never part of any artifact-cache key.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

_seq = itertools.count(1)


class RunContext:
    """Everything scoped to one run: tracer, metrics, degradation tally.

    Attributes:
        run_id: Stable name for this run's artifacts (trace files).
        tracer: The run's span recorder; its monotonic origin is the
            run's t=0.
        degradation: Per-stage degradation counters
            (:mod:`repro.faults.report` records here).
    """

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id or f"run-{os.getpid()}-{next(_seq)}"
        self.tracer = Tracer()
        self.degradation: Dict[str, Dict[str, int]] = {}

    @property
    def metrics(self) -> MetricsRegistry:
        """The run's metrics registry (lives on the tracer so worker
        captures and the ambient-tracer resolution share one home)."""
        return self.tracer.metrics


_current: Optional[RunContext] = None


def current_run() -> RunContext:
    """The process's active run context (created lazily on first use)."""
    global _current
    if _current is None:
        _current = RunContext()
    return _current


def new_run(run_id: Optional[str] = None) -> RunContext:
    """Start a fresh run context and make it current.

    The CLI calls this once per invocation, which is what keeps phases,
    metrics, and degradation rows from one study out of the next one's
    reports when several studies run in a single process.
    """
    global _current
    _current = RunContext(run_id)
    return _current


def set_current_run(run: Optional[RunContext]) -> None:
    """Install a specific context (tests); ``None`` resets to lazy."""
    global _current
    _current = run
