"""Run-scoped metrics: named counters, gauges, and histograms with labels.

The registry is the quantitative half of the observability layer
(:mod:`repro.obs.tracer` is the temporal half): injection sites and
caches record *how much* happened — cache hits per stage, retried tasks,
lost probes, per-get latencies — while spans record *when*.  One registry
lives on each :class:`~repro.obs.runctx.RunContext`; worker tasks record
into a capture-local registry that travels back to the dispatching
process and is merged (:func:`MetricsRegistry.merge`), so per-run
counters are complete even across process pools.

Everything here is plain data: registries pickle (they cross process
boundaries inside task captures) and snapshots are JSON-ready (they ride
along in ``timing_*.json`` and in the ``trace_<run>.jsonl`` footer).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Histogram bucket upper bounds in seconds (a final +inf bucket is
#: implicit).  Tuned for cache/probe latencies: microseconds to seconds.
HISTOGRAM_BOUNDS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)

#: Internal key: ``(name, (("label", "value"), ...))``.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def flat_name(key: MetricKey) -> str:
    """A Prometheus-style flat rendering: ``name{label=value,...}``."""
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Histogram:
    """Fixed-bucket latency histogram (seconds-oriented bounds).

    Attributes:
        counts: Per-bucket observation counts; one per bound plus a final
            overflow bucket.
        total: Sum of observed values.
        count: Number of observations.
        min / max: Observed extremes (``None`` before any observation).
    """

    __slots__ = ("counts", "total", "count", "min", "max")

    def __init__(self):
        self.counts: List[int] = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.total = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one observation in."""
        bucket = len(HISTOGRAM_BOUNDS)
        for i, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                bucket = i
                break
        self.counts[bucket] += 1
        self.total += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations in."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count
        for bound in (other.min, other.max):
            if bound is None:
                continue
            self.min = bound if self.min is None else min(self.min, bound)
            self.max = bound if self.max is None else max(self.max, bound)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view."""
        return {
            "bounds": list(HISTOGRAM_BOUNDS),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 9),
            "min": None if self.min is None else round(self.min, 9),
            "max": None if self.max is None else round(self.max, 9),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms with label support.

    All three families share one naming scheme: a metric is identified by
    its name plus a (possibly empty) label set, e.g.
    ``counter("cache.hit", stage="sim/run_week")``.  The registry is
    plain-attribute and picklable, so worker-side registries travel back
    to the parent inside task captures.
    """

    def __init__(self):
        self.counters: Dict[MetricKey, float] = {}
        self.gauges: Dict[MetricKey, float] = {}
        self.histograms: Dict[MetricKey, Histogram] = {}

    # ----------------------------------------------------------- recording

    def inc(self, name: str, n: float = 1, **labels: Any) -> None:
        """Increment a counter (created at zero on first use)."""
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + n

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to its latest value."""
        self.gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Fold one observation into a histogram."""
        key = _key(name, labels)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram()
        histogram.observe(value)

    # ----------------------------------------------------------- reading

    def counter_total(self, name: str) -> float:
        """One counter summed over every label set (0 when never seen)."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges last-wins)."""
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        self.gauges.update(other.gauges)
        for key, histogram in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                mine = self.histograms[key] = Histogram()
            mine.merge(histogram)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of everything recorded so far.

        Counters and gauges flatten to ``name{label=value}`` keys;
        histograms keep their bucket structure.  Keys are sorted so
        snapshots diff cleanly.
        """
        return {
            "counters": {
                flat_name(k): self.counters[k]
                for k in sorted(self.counters)
            },
            "gauges": {
                flat_name(k): self.gauges[k] for k in sorted(self.gauges)
            },
            "histograms": {
                flat_name(k): self.histograms[k].as_dict()
                for k in sorted(self.histograms)
            },
        }
