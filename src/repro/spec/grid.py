"""Grid enumeration: named axes × values → a lattice of scenario specs.

A :class:`GridSpec` names a base scenario (a :mod:`repro.spec.registry`
entry) and a tuple of :class:`GridAxis` objects.  Enumeration takes the
cartesian product of the axis values (minus filtered combinations) and
yields one :class:`GridPoint` per combination — a label, the raw
assignments, and the composed :class:`~repro.spec.model.Spec` delta
against the base.

Axis names select the delta kind:

- ``"dataset"`` — values are registry names; the axis switches the *base*
  scenario instead of contributing a delta.
- ``"policy"`` — values are registered selection-policy kinds
  (:func:`repro.cdn.selection.registered_policy_kinds`; e.g.
  ``"preferred"``, ``"proportional"``, ``"geographic"``, ``"gwtw"``,
  ``"isp-te"``, ``"partition"``).
- ``"variant"`` — values are :mod:`repro.whatif.variants` names; the
  variant's spec delta is composed in.
- anything else — a scalar :class:`~repro.sim.scenarios.ScenarioSpec`
  field, assigned as a par.

Point labels are ``"axis=value"`` clauses joined by commas, with values
rendered exactly as given — a single-axis grid over a spec field produces
the same labels (hence the same ``"whatif/metrics"`` artifact keys) as
:func:`repro.whatif.sweep.sweep_parameter`, so grids, sweeps and variant
comparisons all share one warm cache.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.spec.info import SpecError, canonical_text
from repro.spec.model import EMPTY_SPEC, Spec, par_delta, policy_kinds

#: Axis names with special meaning (not ScenarioSpec par assignments).
SPECIAL_AXES: Tuple[str, ...] = ("dataset", "policy", "variant")

_SCALARS = (bool, int, float, str)


@dataclass(frozen=True, init=False)
class GridAxis:
    """One named dimension of a grid.

    Attributes:
        name: Axis name (see the module docstring for the special names).
        values: The axis's values, in enumeration order.
    """

    name: str
    values: Tuple[Any, ...]

    def __init__(self, name: str, values: Iterable[Any]):
        if not isinstance(name, str) or not name:
            raise SpecError(f"axis names must be non-empty strings, got {name!r}")
        frozen = tuple(values)
        if not frozen:
            raise SpecError(f"axis {name!r} has no values")
        for value in frozen:
            if not isinstance(value, _SCALARS) and value is not None:
                raise SpecError(
                    f"axis {name!r} values must be scalars, got "
                    f"{type(value).__name__!r}"
                )
        seen = {canonical_text(v) for v in frozen}
        if len(seen) != len(frozen):
            raise SpecError(f"axis {name!r} has duplicate values")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", frozen)


@dataclass(frozen=True)
class GridPoint:
    """One enumerated grid combination.

    Attributes:
        label: ``"axis=value,..."`` clauses in axis order (the metric-row
            label and part of the artifact cache key).
        base: Registry name of the base scenario for this point.
        assignments: Raw ``(axis, value)`` pairs, in axis order.
        delta: The composed spec delta against ``base`` (the ``dataset``
            axis switches ``base`` and contributes nothing here).
    """

    label: str
    base: str
    assignments: Tuple[Tuple[str, Any], ...]
    delta: Spec

    def cache_fingerprint(self) -> Dict[str, Any]:
        """Canonical identity of the point (base + composed delta)."""
        return {"base": self.base, "delta": self.delta.cache_fingerprint()}


@dataclass(frozen=True, init=False)
class GridSpec:
    """A base scenario crossed with named axes, minus filtered points.

    Attributes:
        base: Registry name of the default base scenario.
        axes: The grid's dimensions, in enumeration order.
        filters: Exclusion clauses: each filter is a tuple of
            ``(axis, value)`` pairs, and a point matching *every* pair of
            any filter is dropped from the enumeration.
    """

    base: str
    axes: Tuple[GridAxis, ...]
    filters: Tuple[Tuple[Tuple[str, Any], ...], ...]

    def __init__(
        self,
        base: str = "EU1-FTTH",
        axes: Iterable[GridAxis] = (),
        filters: Iterable[Iterable[Tuple[str, Any]]] = (),
    ):
        axes = tuple(axes)
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate axis names in grid: {names}")
        for axis in axes:
            if not isinstance(axis, GridAxis):
                raise SpecError(
                    f"grid axes must be GridAxis objects, got "
                    f"{type(axis).__name__!r}"
                )
        frozen_filters = []
        for clause in filters:
            pairs = tuple((str(axis), value) for axis, value in clause)
            if not pairs:
                raise SpecError("empty grid filter (it would drop every point)")
            for axis, _value in pairs:
                if axis not in names:
                    raise SpecError(
                        f"filter references unknown axis {axis!r}; "
                        f"grid axes are {names}"
                    )
            frozen_filters.append(pairs)
        object.__setattr__(self, "base", str(base))
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "filters", tuple(frozen_filters))

    def cache_fingerprint(self) -> Dict[str, Any]:
        """Canonical identity — lets a whole grid key a stage artifact."""
        return {
            "base": self.base,
            "axes": {axis.name: list(axis.values) for axis in self.axes},
            "filters": [dict(clause) for clause in self.filters],
        }

    # ---------------------------------------------------------------- codecs
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-native form (``repro grid plan --out`` writes this)."""
        document: Dict[str, Any] = {
            "base": self.base,
            "axes": [
                {"name": axis.name, "values": list(axis.values)}
                for axis in self.axes
            ],
        }
        if self.filters:
            document["filters"] = [dict(clause) for clause in self.filters]
        return document

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON text of the grid."""
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json_dict(cls, document: Mapping[str, Any]) -> "GridSpec":
        """Parse the :meth:`to_json_dict` form.

        Raises:
            SpecError: For unknown keys or malformed axes/filters.
        """
        if not isinstance(document, Mapping):
            raise SpecError("a grid document must be a mapping")
        unknown = set(document) - {"base", "axes", "filters"}
        if unknown:
            raise SpecError(f"unknown GridSpec keys: {sorted(unknown)}")
        axes = []
        for entry in document.get("axes") or ():
            if not isinstance(entry, Mapping) or set(entry) - {"name", "values"}:
                raise SpecError(f"malformed grid axis {entry!r}")
            axes.append(GridAxis(entry.get("name"), entry.get("values") or ()))
        filters = []
        for clause in document.get("filters") or ():
            if not isinstance(clause, Mapping):
                raise SpecError(f"grid filters must be mappings, got {clause!r}")
            filters.append(tuple(sorted(clause.items())))
        return cls(base=document.get("base", "EU1-FTTH"), axes=axes,
                   filters=filters)

    @classmethod
    def from_json(cls, text: str) -> "GridSpec":
        """Parse JSON text of a grid."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"malformed grid JSON: {error}") from None
        return cls.from_json_dict(document)


def load_grid(path: str) -> GridSpec:
    """Load a grid from a ``.json`` file (``repro grid run --grid``).

    Raises:
        SpecError: For malformed documents.
        OSError: If the file cannot be read.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return GridSpec.from_json(handle.read())


def _axis_delta(axis: str, value: Any) -> Spec:
    """The spec delta one (axis, value) assignment contributes."""
    if axis == "policy":
        kinds = policy_kinds()
        if value not in kinds:
            raise SpecError(
                f"unknown policy {value!r}; registered policies: "
                f"{', '.join(kinds)}"
            )
        return par_delta(policy=value)
    if axis == "variant":
        from repro.whatif.variants import variant_by_name

        try:
            return variant_by_name(str(value)).spec
        except KeyError as error:
            raise SpecError(f"grid variant axis: {error.args[0]}") from None
    return par_delta(**{axis: value})


def enumerate_points(grid: GridSpec) -> Tuple[GridPoint, ...]:
    """Every grid point, in cartesian order, with filters applied.

    Returns:
        One :class:`GridPoint` per surviving combination; axis order is
        enumeration order (the last axis varies fastest).

    Raises:
        SpecError: For invalid axis values (unknown policies, variants,
            or ScenarioSpec fields) or a grid whose filters drop
            everything.  A grid with no axes enumerates one bare-base
            point.
        KeyError: For ``dataset`` axis values (or a ``base``) that name no
            registered scenario spec.
    """
    from repro.spec.registry import named_spec

    named_spec(grid.base)  # fail fast on an unknown base
    for axis in grid.axes:
        if axis.name == "dataset":
            for value in axis.values:
                named_spec(str(value))
        elif axis.name not in SPECIAL_AXES:
            # Validate eagerly so a typo'd axis fails before any runs.
            for value in axis.values:
                _axis_delta(axis.name, value)
    filters = [dict(clause) for clause in grid.filters]

    points: List[GridPoint] = []
    value_grids = [axis.values for axis in grid.axes]
    for combination in itertools.product(*value_grids):
        assignments = tuple(
            (axis.name, value) for axis, value in zip(grid.axes, combination)
        )
        assigned = dict(assignments)
        if any(
            all(assigned.get(axis) == value for axis, value in clause.items())
            for clause in filters
        ):
            continue
        base = grid.base
        delta = EMPTY_SPEC
        for axis, value in assignments:
            if axis == "dataset":
                base = str(value)
                continue
            delta = delta.compose(_axis_delta(axis, value))
        label = ",".join(f"{axis}={value}" for axis, value in assignments)
        points.append(
            GridPoint(label=label, base=base, assignments=assignments, delta=delta)
        )
    if not points:
        raise SpecError("empty grid: the filters drop every point")
    return tuple(points)


def diff_grids(old: GridSpec, new: GridSpec) -> Dict[str, List[str]]:
    """Point-level difference between two grids, by label.

    Returns:
        ``{"added": [...], "removed": [...], "common": [...]}`` — labels
        sorted within each bucket.  This is exactly the cache story of an
        extended grid: ``added`` simulates, ``common`` re-reads.
    """
    old_points = {p.label for p in enumerate_points(old)}
    new_points = {p.label for p in enumerate_points(new)}
    return {
        "added": sorted(new_points - old_points),
        "removed": sorted(old_points - new_points),
        "common": sorted(old_points & new_points),
    }
