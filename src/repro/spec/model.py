""":class:`Spec`: a require/remove/add delta over a scenario, and its
application, composition and diff operators.

The pattern follows message-ix-models' ``ScenarioInfo``/``Spec``/
``apply_spec`` trio: a spec is three :class:`~repro.spec.info.ScenarioInfo`
objects —

- **require** — sets/pars the base world must already have (validation,
  not mutation).  A violation raises :class:`~repro.spec.info.SpecError`:
  the spec is incompatible with that base.
- **remove** — set elements deleted from the base.  Removing an element
  the base does not have is an error for the same reason.
- **add** — set elements added to the base, and par assignments.

Applying a spec never mutates anything: :func:`apply_to_scenario` returns
a fresh :class:`~repro.sim.scenarios.ScenarioSpec` (plus the selection
policy), and :func:`apply_spec` builds the runnable
:class:`~repro.sim.scenarios.ScenarioWorld` from it — always canonically,
so the result carries a full cache fingerprint (``policy_kind`` is never
``None`` on a spec-built world; see :mod:`repro.artifacts.keys`).

Specs compose (:meth:`Spec.compose` — apply ``b`` after ``a`` as one
spec; associative for disjoint deltas) and diff (:func:`diff` — the spec
turning world ``a`` into world ``b``), and serialise canonically to JSON
and TOML, which makes a scenario grid a reviewable, diffable artifact.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field as dc_field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro import obs
from repro.spec.info import (
    SET_ARITY,
    SET_NAMES,
    ScenarioInfo,
    SpecError,
    canonical_text,
    describe,
)

def policy_kinds() -> Tuple[str, ...]:
    """Selection-policy kinds :func:`repro.sim.scenarios.build_world` accepts.

    Delegates to the policy registry
    (:func:`repro.cdn.selection.registered_policy_kinds`, imported lazily
    to keep the spec layer import-light), so registering a policy makes
    it a valid ``"policy"`` par and grid-axis value with no spec-layer
    change.
    """
    from repro.cdn.selection import registered_policy_kinds

    return registered_policy_kinds()

#: ScenarioSpec fields that are set-backed (not assignable as pars).
_SET_BACKED_FIELDS = frozenset({"subnets", "detour_pins", "extra_dcs", "removed_dcs"})


def _par_field_types():
    """Mapping of assignable par name -> coercion callable."""
    from repro.net.latency import AccessTechnology
    from repro.sim.scenarios import ScenarioSpec

    def coerce_access(value):
        if isinstance(value, AccessTechnology):
            return value
        try:
            return AccessTechnology[str(value)]
        except KeyError:
            raise SpecError(
                f"unknown access technology {value!r}; expected one of "
                f"{[m.name for m in AccessTechnology]}"
            ) from None

    def coerce_int(value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(f"expected an integer, got {value!r}")
        if isinstance(value, float):
            if not value.is_integer():
                raise SpecError(f"expected an integer, got {value!r}")
            value = int(value)
        return value

    def coerce_float(value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(f"expected a number, got {value!r}")
        return float(value)

    def coerce_bool(value):
        if not isinstance(value, bool):
            raise SpecError(f"expected a boolean, got {value!r}")
        return value

    def coerce_str(value):
        if not isinstance(value, str):
            raise SpecError(f"expected a string, got {value!r}")
        return value

    table = {}
    for field in dataclasses.fields(ScenarioSpec):
        if field.name in _SET_BACKED_FIELDS:
            continue
        annotation = str(field.type)
        if "AccessTechnology" in annotation:
            coerce = coerce_access
        elif "bool" in annotation:
            coerce = coerce_bool
        elif "int" in annotation:
            coerce = coerce_int
        elif "float" in annotation:
            coerce = coerce_float
        else:
            coerce = coerce_str
        optional = "Optional" in annotation
        table[field.name] = (coerce, optional)
    return table


def coerce_par(name: str, value: Any) -> Any:
    """Coerce a par value to its :class:`ScenarioSpec` field type.

    ``"policy"`` is the one par with no backing field: it selects the
    world's :func:`~repro.sim.scenarios.build_world` ``policy_kind``.

    Raises:
        SpecError: For unknown par names or untypeable values.
    """
    if name == "policy":
        kinds = policy_kinds()
        if value not in kinds:
            raise SpecError(
                f"unknown policy {value!r}; registered policies: "
                f"{', '.join(kinds)}"
            )
        return value
    table = _par_field_types()
    if name not in table:
        raise SpecError(
            f"unknown par {name!r}; expected 'policy' or a scalar "
            f"ScenarioSpec field ({sorted(table)})"
        )
    coerce, optional = table[name]
    if value is None:
        if not optional:
            raise SpecError(f"par {name!r} cannot be None")
        return None
    try:
        return coerce(value)
    except SpecError as error:
        raise SpecError(f"par {name!r}: {error}") from None


@dataclass(frozen=True)
class Spec:
    """A require/remove/add delta over a scenario world.

    Attributes:
        require: Sets/pars the base must already have (checked, not applied).
        remove: Set elements removed from the base.
        add: Set elements added and pars assigned.
    """

    require: ScenarioInfo = dc_field(default_factory=ScenarioInfo)
    remove: ScenarioInfo = dc_field(default_factory=ScenarioInfo)
    add: ScenarioInfo = dc_field(default_factory=ScenarioInfo)

    def __post_init__(self):
        for part_name in ("require", "remove", "add"):
            part = getattr(self, part_name)
            if not isinstance(part, ScenarioInfo):
                raise SpecError(
                    f"Spec.{part_name} must be a ScenarioInfo, "
                    f"got {type(part).__name__!r}"
                )
            for set_name, elements in part.sets:
                if set_name not in SET_NAMES:
                    raise SpecError(
                        f"unknown set {set_name!r}; expected one of {SET_NAMES}"
                    )
                arity = SET_ARITY[set_name]
                for element in elements:
                    if not isinstance(element, tuple) or len(element) != arity:
                        raise SpecError(
                            f"{set_name!r} elements must be {arity}-tuples, "
                            f"got {element!r}"
                        )
        if self.remove.pars:
            raise SpecError(
                "Spec.remove carries pars; par changes belong in Spec.add "
                "(pars are total — there is nothing to remove)"
            )
        for name, value in self.add.pars + self.require.pars:
            coerce_par(name, value)

    @property
    def is_empty(self) -> bool:
        """True for the identity spec (applies as a no-op)."""
        return self.require.is_empty and self.remove.is_empty and self.add.is_empty

    # ---------------------------------------------------------- composition
    def compose(self, other: "Spec") -> "Spec":
        """One spec equivalent to applying ``self`` then ``other``.

        Elements ``other`` removes that ``self`` added simply cancel;
        requirements ``other`` has that ``self`` provides are discharged.
        For deltas over disjoint sets/pars, composition is associative:
        ``a.compose(b).compose(c) == a.compose(b.compose(c))``.

        Raises:
            SpecError: If ``other`` requires a par value ``self`` assigns
                differently (the composition can never apply).
        """
        self_add_pars = self.add.pars_dict
        for name, value in other.require.pars:
            if name in self_add_pars and self_add_pars[name] != value:
                raise SpecError(
                    f"cannot compose: the second spec requires "
                    f"{name}={value!r} but the first assigns "
                    f"{self_add_pars[name]!r}"
                )
        require = self.require.merge(
            other.require.without_elements(self.add).without_pars(self_add_pars)
        )
        remove = self.remove.merge(other.remove.without_elements(self.add))
        add = self.add.without_elements(other.remove).merge(other.add)
        return Spec(require=require, remove=remove, add=add)

    # ------------------------------------------------------------- identity
    def cache_fingerprint(self) -> Dict[str, Any]:
        """Canonical identity — hooks into
        :func:`repro.artifacts.keys.canonicalize`, so a spec (or a grid of
        them) can be part of any :func:`~repro.artifacts.keys.stage_key`.
        """
        return {
            "require": self.require.cache_fingerprint(),
            "remove": self.remove.cache_fingerprint(),
            "add": self.add.cache_fingerprint(),
        }

    # ---------------------------------------------------------------- codecs
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-native form (empty parts omitted)."""
        document: Dict[str, Any] = {}
        for part_name in ("require", "remove", "add"):
            part = getattr(self, part_name)
            if not part.is_empty:
                document[part_name] = part.to_json_dict()
        return document

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON text: key-sorted, stable across processes."""
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json_dict(cls, document: Mapping[str, Any]) -> "Spec":
        """Parse the :meth:`to_json_dict` form.

        Raises:
            SpecError: For unknown keys or malformed parts.
        """
        if not isinstance(document, Mapping):
            raise SpecError("a spec document must be a mapping")
        unknown = set(document) - {"require", "remove", "add"}
        if unknown:
            raise SpecError(f"unknown Spec keys: {sorted(unknown)}")
        parts = {
            name: ScenarioInfo.from_json_dict(document.get(name) or {})
            for name in ("require", "remove", "add")
        }
        return cls(**parts)

    @classmethod
    def from_json(cls, text: str) -> "Spec":
        """Parse canonical (or any) JSON text of a spec."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"malformed spec JSON: {error}") from None
        return cls.from_json_dict(document)


#: The identity spec.
EMPTY_SPEC = Spec()


def par_delta(**pars: Any) -> Spec:
    """A pure par-assignment spec (the common variant/grid delta)."""
    return Spec(add=ScenarioInfo(pars=pars))


def compose_all(specs: Iterable[Spec]) -> Spec:
    """Fold an ordered sequence of specs into one left-to-right composition.

    ``compose_all([a, b, c])`` is ``a.compose(b).compose(c)`` — the spec
    equivalent to applying ``a``, then ``b``, then ``c``.  An empty
    sequence yields :data:`EMPTY_SPEC`.  The workhorse behind
    :class:`repro.monitor.evolution.EvolutionPlan`, which accretes epoch
    deltas into the scenario in force at a given epoch.

    Raises:
        SpecError: If any pairwise composition is contradictory (see
            :meth:`Spec.compose`).
    """
    composed = EMPTY_SPEC
    for spec in specs:
        composed = composed.compose(spec)
    return composed


def load_spec(path: str) -> Spec:
    """Load a spec from a ``.json`` or ``.toml`` file.

    TOML needs Python 3.11+ (:mod:`tomllib`); on older interpreters a
    TOML path raises :class:`SpecError` naming the JSON alternative.

    Raises:
        SpecError: For malformed documents or unavailable TOML support.
        OSError: If the file cannot be read.
    """
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:
            raise SpecError(
                "TOML specs need Python 3.11+ (tomllib); convert the spec "
                "to JSON or upgrade the interpreter"
            ) from None
        with open(path, "rb") as handle:
            try:
                document = tomllib.load(handle)
            except tomllib.TOMLDecodeError as error:
                raise SpecError(f"malformed spec TOML: {error}") from None
        return Spec.from_json_dict(document)
    with open(path, "r", encoding="utf-8") as handle:
        return Spec.from_json(handle.read())


# --------------------------------------------------------------------- diff
def diff(base: Any, target: Any) -> Spec:
    """The spec that turns world ``base`` into world ``target``.

    Both arguments may be :class:`~repro.sim.scenarios.ScenarioSpec`
    objects (described with the default policy) or pre-built
    :class:`~repro.spec.info.ScenarioInfo` views.  The result satisfies
    ``apply(base, diff(base, target)) == target`` for any two describable
    worlds; its require part is empty (a diff states facts, not
    preconditions).

    Pars present in ``base`` but absent from ``target`` are ignored — a
    par is total on any described world, so a *partial* target info diffs
    only the pars it mentions.
    """
    base_info = base if isinstance(base, ScenarioInfo) else describe(base)
    target_info = target if isinstance(target, ScenarioInfo) else describe(target)
    remove_sets: Dict[str, list] = {}
    add_sets: Dict[str, list] = {}
    names = {name for name, _ in base_info.sets} | {name for name, _ in target_info.sets}
    for name in sorted(names):
        have = {canonical_text(e): e for e in base_info.set(name)}
        want = {canonical_text(e): e for e in target_info.set(name)}
        gone = [have[text] for text in sorted(have.keys() - want.keys())]
        new = [want[text] for text in sorted(want.keys() - have.keys())]
        if gone:
            remove_sets[name] = gone
        if new:
            add_sets[name] = new
    base_pars = base_info.pars_dict
    add_pars = {
        name: value
        for name, value in target_info.pars
        if name not in base_pars or base_pars[name] != value
    }
    return Spec(
        remove=ScenarioInfo(sets=remove_sets),
        add=ScenarioInfo(sets=add_sets, pars=add_pars),
    )


# -------------------------------------------------------------- application
def _apply_datacenter_delta(base, removes, adds):
    """Fold datacenter-set deltas into (removed_dcs, extra_dcs) fields."""
    from repro.sim.scenarios import GOOGLE_DC_PLAN

    removed = set(base.removed_dcs)
    extra = list(base.extra_dcs)
    effective = {
        canonical_text(pair)
        for pair in list(GOOGLE_DC_PLAN) + extra
        if pair[0] not in removed
    }
    for element in removes:
        text = canonical_text(element)
        if text not in effective:
            raise SpecError(
                f"cannot remove datacenter {element!r}: not in the base plan"
            )
        effective.discard(text)
        if element in extra:
            extra.remove(element)
        else:
            removed.add(element[0])
    for element in adds:
        text = canonical_text(element)
        if text in effective:
            raise SpecError(f"datacenter {element!r} is already in the plan")
        effective.add(text)
        if element[0] in removed and element in GOOGLE_DC_PLAN:
            removed.discard(element[0])
        else:
            extra.append(tuple(element))
    return (
        tuple(sorted(removed)),
        tuple(sorted(extra, key=canonical_text)),
    )


def apply_to_scenario(base, spec: Spec, base_policy: str = "preferred"):
    """Apply a spec to a scenario spec, yielding a new scenario + policy.

    The application order follows the snippet pattern: **require** is
    checked against the base's :func:`~repro.spec.info.describe` view,
    **remove** elements are deleted (each must exist), **add** elements
    are appended in canonical order after the base's retained elements,
    and **add** pars are assigned.  Sets a spec does not touch are left
    exactly as the base had them, so the empty spec is the identity.

    Args:
        base: The base :class:`~repro.sim.scenarios.ScenarioSpec`.
        spec: The delta to apply.
        base_policy: Policy kind the base is considered built with (the
            ``"policy"`` par starts from this value).

    Returns:
        ``(scenario, policy_kind)`` — a fresh
        :class:`~repro.sim.scenarios.ScenarioSpec` and the selection
        policy for :func:`~repro.sim.scenarios.build_world`.

    Raises:
        SpecError: On require violations, removes of absent elements,
            duplicate adds, or unknown/untypeable pars.
    """
    from repro.sim.scenarios import SubnetSpec

    base_info = describe(base, policy=base_policy)

    # ---- require: the spec must be compatible with this base -------------
    for name, elements in spec.require.sets:
        have = {canonical_text(e) for e in base_info.set(name)}
        missing = [e for e in elements if canonical_text(e) not in have]
        if missing:
            raise SpecError(
                f"spec requires {name} elements the base lacks: {missing}"
            )
    base_pars = base_info.pars_dict
    for name, value in spec.require.pars:
        actual = base_pars.get(name)
        if actual != coerce_par(name, value) and actual != value:
            raise SpecError(
                f"spec requires {name}={value!r} but the base has {actual!r}"
            )

    # ---- remove / add, set by set ----------------------------------------
    changes: Dict[str, Any] = {}
    touched = {name for name, _ in spec.remove.sets} | {
        name for name, _ in spec.add.sets
    }
    for name in sorted(touched):
        removes = spec.remove.set(name)
        adds = spec.add.set(name)
        if name == "datacenter":
            removed_dcs, extra_dcs = _apply_datacenter_delta(base, removes, adds)
            changes["removed_dcs"] = removed_dcs
            changes["extra_dcs"] = extra_dcs
            continue
        current = list(base_info.set(name))
        have = {canonical_text(e) for e in current}
        for element in removes:
            text = canonical_text(element)
            if text not in have:
                raise SpecError(
                    f"cannot remove {name} element {element!r}: "
                    f"not present in the base"
                )
            have.discard(text)
            current = [e for e in current if canonical_text(e) != text]
        for element in adds:
            text = canonical_text(element)
            if text in have:
                raise SpecError(
                    f"{name} element {element!r} is already present in the base"
                )
            have.add(text)
            current.append(element)
        if name == "subnet":
            changes["subnets"] = tuple(
                SubnetSpec(
                    name=str(e[0]),
                    client_share=float(e[1]),
                    divergent_resolver=bool(e[2]),
                )
                for e in current
            )
        elif name == "detour":
            changes["detour_pins"] = tuple(
                (str(e[0]), float(e[1])) for e in current
            )

    # ---- pars -------------------------------------------------------------
    policy = base_policy
    for name, value in spec.add.pars:
        coerced = coerce_par(name, value)
        if name == "policy":
            policy = coerced
        else:
            changes[name] = coerced

    scenario = dataclasses.replace(base, **changes) if changes else base
    return scenario, policy


def apply_spec(
    base,
    spec: Spec,
    scale: float = 1.0,
    seed: int = 7,
    duration_s: Optional[float] = None,
    base_policy: str = "preferred",
):
    """Validate and compose a base + spec into a runnable world.

    Args:
        base: A :class:`~repro.sim.scenarios.ScenarioSpec`, or the name of
            a registry scenario (:mod:`repro.spec.registry`).
        spec: The delta to apply.
        scale: Traffic scale for the built world.
        seed: Master seed.
        duration_s: Simulation window (default one week).
        base_policy: Policy the ``"policy"`` par starts from.

    Returns:
        The built :class:`~repro.sim.scenarios.ScenarioWorld`.  Spec-built
        worlds are *always* canonically fingerprinted — ``policy_kind`` is
        set, ``build_config()`` is non-``None`` — so they participate in
        artifact caching unconditionally (see :mod:`repro.artifacts.keys`).

    Raises:
        SpecError: If the spec cannot apply to the base.
        KeyError: For unknown registry names.
    """
    from repro.sim.scenarios import build_world
    from repro.trace.records import WEEK_S

    if isinstance(base, str):
        from repro.spec.registry import scenario_spec

        base = scenario_spec(base)
    if duration_s is None:
        duration_s = WEEK_S
    with obs.span("spec/apply", base=base.name):
        scenario, policy = apply_to_scenario(base, spec, base_policy=base_policy)
        world = build_world(
            scenario, scale=scale, seed=seed, duration_s=duration_s,
            policy_kind=policy,
        )
    if world.policy_kind is None:  # pragma: no cover - build_world guarantees it
        raise AssertionError("apply_spec built a world without a fingerprint")
    return world
