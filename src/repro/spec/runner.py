"""Grid execution: enumerated points → warm rows + fanned-out cold runs.

Each grid point materialises to a ``(scenario, scale, seed, duration_s,
policy, label)`` task — the exact task shape what-if comparisons and
sweeps use — and resolves through
:func:`repro.whatif.metrics.resolve_metric_rows`: rows already in the
artifact store are read back without simulating, and only the cold
points fan out over the :class:`~repro.exec.executor.ParallelExecutor`.
Re-running an extended grid therefore simulates exactly the added
points, which ``scripts/grid_smoke.py`` asserts in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.exec.executor import ParallelExecutor, default_executor
from repro.spec.grid import GridPoint, GridSpec, enumerate_points
from repro.spec.model import apply_to_scenario
from repro.trace.records import WEEK_S
from repro.whatif.metrics import ScenarioMetrics, resolve_metric_rows


@dataclass
class GridRunResult:
    """Outcome of one grid run.

    Attributes:
        grid: The executed grid.
        points: The enumerated points, in enumeration order.
        rows: One metric row per point, parallel to ``points``.
        warm: Points whose rows were read from the artifact store.
        cold: Points that were simulated by this run.
    """

    grid: GridSpec
    points: Tuple[GridPoint, ...]
    rows: List[ScenarioMetrics] = field(default_factory=list)
    warm: int = 0
    cold: int = 0

    def row(self, label: str) -> ScenarioMetrics:
        """Row by point label.

        Raises:
            KeyError: For unknown labels.
        """
        for candidate in self.rows:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no grid row labelled {label!r}")


def materialize_point(
    point: GridPoint,
    base_policy: str = "preferred",
):
    """Apply a point's delta to its base scenario.

    Returns:
        ``(scenario, policy)`` ready for
        :func:`~repro.whatif.metrics.scenario_metrics`.

    Raises:
        SpecError: If the point's delta cannot apply to its base.
        KeyError: For unknown base names.
    """
    from repro.spec.registry import scenario_spec

    return apply_to_scenario(
        scenario_spec(point.base), point.delta, base_policy=base_policy
    )


def _point_tasks(
    points: Sequence[GridPoint],
    scale: float,
    seed: int,
    duration_s: float,
    base_policy: str,
) -> List[Tuple]:
    tasks = []
    for point in points:
        scenario, policy = materialize_point(point, base_policy=base_policy)
        tasks.append((scenario, scale, seed, duration_s, policy, point.label))
    return tasks


def _warm_flags(tasks: Sequence[Tuple]) -> List[bool]:
    """Which tasks' metric rows are already in the artifact store."""
    from repro.artifacts.store import default_store
    from repro.whatif.metrics import scenario_metrics

    store = default_store()
    if store is None:
        return [False] * len(tasks)
    miss = object()
    return [
        store.get(scenario_metrics.cache_key(*task), miss,
                  stage="whatif/metrics") is not miss
        for task in tasks
    ]


def plan_grid(
    grid: GridSpec,
    scale: float = 0.01,
    seed: int = 7,
    duration_s: float = WEEK_S,
    base_policy: str = "preferred",
) -> List[Dict[str, Any]]:
    """Per-point run plan: what would simulate, what is already warm.

    Returns:
        One dict per point — ``label``, ``base``, ``policy``, and
        ``warm`` (whether the artifact store already holds its row) — in
        enumeration order.  Nothing simulates.

    Raises:
        SpecError: For invalid grids or inapplicable deltas.
        KeyError: For unknown base/dataset names.
    """
    points = enumerate_points(grid)
    tasks = _point_tasks(points, scale, seed, duration_s, base_policy)
    flags = _warm_flags(tasks)
    return [
        {
            "label": point.label,
            "base": point.base,
            "policy": task[4],
            "warm": warm,
        }
        for point, task, warm in zip(points, tasks, flags)
    ]


def run_grid(
    grid: GridSpec,
    scale: float = 0.01,
    seed: int = 7,
    duration_s: float = WEEK_S,
    base_policy: str = "preferred",
    executor: Optional[ParallelExecutor] = None,
) -> GridRunResult:
    """Simulate every grid point and collect its metric row.

    Points are independent worlds sharing one master seed, so the cold
    ones fan out over the executor with byte-identical rows on every
    backend; warm rows load from the artifact store without simulating.

    Args:
        grid: The grid to run.
        scale: Traffic scale per point.
        seed: Shared master seed.
        duration_s: Simulation window per point.
        base_policy: Policy for points whose delta does not set the
            ``"policy"`` par.
        executor: Fan-out strategy; ``None`` reads ``REPRO_EXECUTOR``.

    Returns:
        The :class:`GridRunResult`, rows in enumeration order.

    Raises:
        SpecError: For invalid grids or inapplicable deltas.
        KeyError: For unknown base/dataset names.
    """
    points = enumerate_points(grid)
    tasks = _point_tasks(points, scale, seed, duration_s, base_policy)
    flags = _warm_flags(tasks)
    warm = sum(flags)
    executor = default_executor(executor)
    batches_before = len(executor.stats)
    with obs.span("grid/run", base=grid.base, points=len(points),
                  warm=warm, cold=len(points) - warm) as active:
        rows = resolve_metric_rows(
            tasks, [f"{task[0].name}/{task[-1]}" for task in tasks], executor
        )
        if active is not None:
            # Serialized payload traffic of this grid's map batches — the
            # term the shared-memory transport exists to remove.
            batches = executor.stats[batches_before:]
            active.attrs["dispatch_bytes"] = sum(s.dispatch_bytes for s in batches)
            active.attrs["result_bytes"] = sum(s.result_bytes for s in batches)
    return GridRunResult(
        grid=grid,
        points=points,
        rows=rows,
        warm=warm,
        cold=len(points) - warm,
    )
