""":class:`ScenarioInfo`: an immutable description of a scenario world.

A :class:`~repro.sim.scenarios.ScenarioSpec` is *imperative* raw material:
a dataclass that :func:`~repro.sim.scenarios.build_world` turns into a
runnable world.  A :class:`ScenarioInfo` is the *declarative* view of the
same world: named **sets** (subnets, detour pins, the data-center plan)
and scalar **pars** (everything else, including the selection policy).
Specs (:mod:`repro.spec.model`) are require/remove/add deltas expressed
over this view, so two worlds can be diffed, a delta can be validated
against a base, and a grid of thousands of scenario points reduces to a
grid of small declarative deltas.

Canonicalisation is strict and total: every element and par is reduced to
the same JSON-native form regardless of construction order, which is what
lets a :class:`ScenarioInfo` slot directly into
:func:`repro.artifacts.keys.stage_key` via ``cache_fingerprint()`` —
equal descriptions, however assembled, always produce equal cache keys.

The vantage point is deliberately *par*-shaped, not set-shaped: a
scenario world has exactly one vantage, so "move the vantage" is a par
assignment (``vantage_city``/``vantage_asn``/``access``), while subnets,
detours and data centers are true sets with element-wise deltas.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.artifacts.keys import canonicalize

#: Set names the spec layer understands, and the
#: :class:`~repro.sim.scenarios.ScenarioSpec` shape of their elements.
SET_NAMES: Tuple[str, ...] = ("datacenter", "detour", "subnet")

#: Element arity per set: ``subnet`` elements are (name, client_share,
#: divergent_resolver), ``detour`` elements are (dc_id, detour_ms) and
#: ``datacenter`` elements are (city, fleet_size).
SET_ARITY: Dict[str, int] = {"datacenter": 2, "detour": 2, "subnet": 3}

_SCALARS = (bool, int, float, str)


class SpecError(ValueError):
    """A scenario spec is malformed or incompatible with its base."""


def _freeze(value: Any) -> Any:
    """Recursively convert JSON-native containers to hashable tuples."""
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    raise SpecError(
        f"set elements must be scalars or sequences of scalars, got "
        f"{type(value).__name__!r}"
    )


def _thaw(value: Any) -> Any:
    """The JSON-native (list-based) form of a frozen element."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


def canonical_text(value: Any) -> str:
    """Deterministic JSON text of a canonicalisable value (sort key)."""
    return json.dumps(canonicalize(value), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True, init=False)
class ScenarioInfo:
    """Immutable sets + pars describing (part of) a scenario world.

    Instances normalise on construction: set elements are frozen,
    de-duplicated and sorted by canonical JSON text, empty sets are
    dropped, and pars are sorted by name.  Two infos that describe the
    same sets and pars therefore compare equal — and fingerprint equal —
    no matter how or in what order they were assembled.

    Attributes:
        sets: Sorted ``(name, elements)`` pairs; elements are tuples.
        pars: Sorted ``(name, value)`` pairs; values are scalars or None.
    """

    sets: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    pars: Tuple[Tuple[str, Any], ...]

    def __init__(
        self,
        sets: Optional[Union[Mapping[str, Iterable], Iterable[Tuple[str, Iterable]]]] = None,
        pars: Optional[Union[Mapping[str, Any], Iterable[Tuple[str, Any]]]] = None,
    ):
        norm_sets = []
        for name, elements in sorted(dict(sets or {}).items()):
            if not isinstance(name, str):
                raise SpecError(f"set names must be strings, got {name!r}")
            frozen = {}
            for element in elements:
                item = _freeze(element)
                frozen[canonical_text(item)] = item
            if frozen:
                norm_sets.append(
                    (name, tuple(frozen[text] for text in sorted(frozen)))
                )
        norm_pars = []
        for name, value in sorted(dict(pars or {}).items()):
            if not isinstance(name, str):
                raise SpecError(f"par names must be strings, got {name!r}")
            if value is not None and not isinstance(value, _SCALARS):
                raise SpecError(
                    f"par {name!r} must be a scalar or None, got "
                    f"{type(value).__name__!r}"
                )
            norm_pars.append((name, value))
        object.__setattr__(self, "sets", tuple(norm_sets))
        object.__setattr__(self, "pars", tuple(norm_pars))

    # ------------------------------------------------------------- accessors
    def set(self, name: str) -> Tuple[Any, ...]:
        """Elements of one set (empty tuple when absent)."""
        for set_name, elements in self.sets:
            if set_name == name:
                return elements
        return ()

    @property
    def sets_dict(self) -> Dict[str, Tuple[Any, ...]]:
        """The sets as a plain dict."""
        return dict(self.sets)

    @property
    def pars_dict(self) -> Dict[str, Any]:
        """The pars as a plain dict."""
        return dict(self.pars)

    @property
    def is_empty(self) -> bool:
        """True when the info carries no sets and no pars."""
        return not self.sets and not self.pars

    # ------------------------------------------------------------------ algebra
    def merge(self, other: "ScenarioInfo") -> "ScenarioInfo":
        """Union of sets; pars of ``other`` override this info's."""
        sets: Dict[str, list] = {name: list(elements) for name, elements in self.sets}
        for name, elements in other.sets:
            sets.setdefault(name, []).extend(elements)
        pars = self.pars_dict
        pars.update(other.pars_dict)
        return ScenarioInfo(sets=sets, pars=pars)

    def without_elements(self, other: "ScenarioInfo") -> "ScenarioInfo":
        """This info minus ``other``'s set elements (pars untouched)."""
        drop = {
            name: {canonical_text(e) for e in elements}
            for name, elements in other.sets
        }
        sets = {
            name: [e for e in elements if canonical_text(e) not in drop.get(name, ())]
            for name, elements in self.sets
        }
        return ScenarioInfo(sets=sets, pars=self.pars_dict)

    def without_pars(self, names: Iterable[str]) -> "ScenarioInfo":
        """This info minus the named pars (sets untouched)."""
        dropped = set(names)
        return ScenarioInfo(
            sets=self.sets_dict,
            pars={k: v for k, v in self.pars if k not in dropped},
        )

    # ------------------------------------------------------------- identity
    def cache_fingerprint(self) -> Dict[str, Any]:
        """Canonical identity — hooks into :func:`canonicalize`."""
        return {"sets": dict(self.sets), "pars": dict(self.pars)}

    # ---------------------------------------------------------------- codecs
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-native form: nested lists, name-sorted mappings."""
        document: Dict[str, Any] = {}
        if self.sets:
            document["sets"] = {
                name: [_thaw(e) for e in elements] for name, elements in self.sets
            }
        if self.pars:
            document["pars"] = dict(self.pars)
        return document

    @classmethod
    def from_json_dict(cls, document: Mapping[str, Any]) -> "ScenarioInfo":
        """Parse the :meth:`to_json_dict` form.

        Raises:
            SpecError: For unknown keys or malformed sets/pars.
        """
        unknown = set(document) - {"sets", "pars"}
        if unknown:
            raise SpecError(f"unknown ScenarioInfo keys: {sorted(unknown)}")
        sets = document.get("sets") or {}
        pars = document.get("pars") or {}
        if not isinstance(sets, Mapping) or not isinstance(pars, Mapping):
            raise SpecError("'sets' and 'pars' must be mappings")
        return cls(sets=sets, pars=pars)


#: The empty description (identity for :meth:`ScenarioInfo.merge`).
EMPTY_INFO = ScenarioInfo()


def describe(scenario, policy: str = "preferred") -> ScenarioInfo:
    """The declarative view of a :class:`~repro.sim.scenarios.ScenarioSpec`.

    Every scalar field becomes a par (the ``access`` enum by member name,
    the selection policy under the ``"policy"`` par); ``subnets``,
    ``detour_pins`` and the *effective* Google data-center plan (the
    shared :data:`~repro.sim.scenarios.GOOGLE_DC_PLAN` minus
    ``removed_dcs`` plus ``extra_dcs``) become sets.

    Args:
        scenario: The scenario spec to describe.
        policy: The selection-policy kind the world would be built with.

    Returns:
        The complete :class:`ScenarioInfo` — ``apply`` of a
        :func:`~repro.spec.model.diff` between two describes round-trips.
    """
    import dataclasses

    from repro.sim.scenarios import GOOGLE_DC_PLAN, ScenarioSpec

    if not isinstance(scenario, ScenarioSpec):
        raise SpecError(f"cannot describe {type(scenario).__name__!r}")
    pars: Dict[str, Any] = {"policy": policy}
    for field in dataclasses.fields(ScenarioSpec):
        if field.name in ("subnets", "detour_pins", "extra_dcs", "removed_dcs"):
            continue
        value = getattr(scenario, field.name)
        pars[field.name] = value.name if field.name == "access" else value
    removed = set(scenario.removed_dcs)
    plan = [pair for pair in GOOGLE_DC_PLAN if pair[0] not in removed]
    plan.extend(scenario.extra_dcs)
    sets = {
        "subnet": [
            (s.name, s.client_share, s.divergent_resolver) for s in scenario.subnets
        ],
        "detour": list(scenario.detour_pins),
        "datacenter": plan,
    }
    return ScenarioInfo(sets=sets, pars=pars)
