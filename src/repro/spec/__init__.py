"""Declarative scenario specs, composition, and grid enumeration.

The subsystem has four layers:

- :mod:`repro.spec.info` — :class:`ScenarioInfo`, the immutable sets/pars
  description of a scenario world, and :func:`describe`.
- :mod:`repro.spec.model` — :class:`Spec` (require/remove/add deltas),
  :func:`apply_spec`, :func:`diff`, composition, JSON/TOML codecs.
- :mod:`repro.spec.registry` — the paper's datasets as named specs.
- :mod:`repro.spec.grid` / :mod:`repro.spec.runner` — :class:`GridSpec`
  axis enumeration and cached, parallel grid execution.
"""

from repro.spec.grid import (
    GridAxis,
    GridPoint,
    GridSpec,
    diff_grids,
    enumerate_points,
    load_grid,
)
from repro.spec.info import EMPTY_INFO, ScenarioInfo, SpecError, describe
from repro.spec.model import (
    EMPTY_SPEC,
    Spec,
    apply_spec,
    apply_to_scenario,
    compose_all,
    diff,
    load_spec,
    par_delta,
)
from repro.spec.registry import (
    BARE_BASE,
    DATASET_SPECS,
    named_spec,
    paper_scenarios,
    register_spec,
    scenario_spec,
    spec_names,
    unregister_spec,
)
from repro.spec.runner import GridRunResult, materialize_point, plan_grid, run_grid

__all__ = [
    "BARE_BASE",
    "DATASET_SPECS",
    "EMPTY_INFO",
    "EMPTY_SPEC",
    "GridAxis",
    "GridPoint",
    "GridRunResult",
    "GridSpec",
    "ScenarioInfo",
    "Spec",
    "SpecError",
    "apply_spec",
    "apply_to_scenario",
    "compose_all",
    "describe",
    "diff",
    "diff_grids",
    "enumerate_points",
    "load_grid",
    "load_spec",
    "materialize_point",
    "named_spec",
    "paper_scenarios",
    "par_delta",
    "plan_grid",
    "register_spec",
    "run_grid",
    "scenario_spec",
    "spec_names",
    "unregister_spec",
]
