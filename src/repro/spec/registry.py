"""Named scenario specs: the paper's datasets as declarative deltas.

The five Table-I datasets — and the February-2011 follow-up — are each a
:class:`~repro.spec.model.Spec` applied to one :data:`BARE_BASE`
skeleton.  :data:`~repro.sim.scenarios.PAPER_SCENARIOS` and
:func:`~repro.sim.scenarios.february_2011_us_campus` are thin wrappers
over this module, so the materialised scenarios are value-identical to
the historical hand-written constructors (byte-identical study digests),
while every dataset is now diffable, composable and grid-extensible like
any other spec.

Registering a new named spec (:func:`register_spec`) immediately makes it
addressable as a grid base or a ``dataset`` axis value
(:mod:`repro.spec.grid`).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.latency import AccessTechnology
from repro.sim.scenarios import DATASET_NAMES, ScenarioSpec, SubnetSpec
from repro.spec.info import ScenarioInfo, SpecError
from repro.spec.model import Spec, apply_to_scenario

#: The skeleton every named dataset delta applies to: one vantage, one
#: subnet, default knobs.  Its values are deliberately boring — every
#: dataset spec overrides all identity pars — but it must be a *valid*
#: buildable scenario so partial deltas (grids, tests) apply cleanly.
BARE_BASE = ScenarioSpec(
    name="bare-base",
    vantage_city="Turin",
    access=AccessTechnology.CAMPUS,
    egress_ms=5.0,
    vantage_asn=64512,
    subnets=(SubnetSpec("Net-1", 1.0),),
    num_clients=1000,
    requests_per_day=10000.0,
    residential=False,
    spill_probability=0.02,
)

#: :data:`BARE_BASE`'s single subnet, in set-element form.
_BARE_SUBNET = ("Net-1", 1.0, False)

_ISP_ASN_EU2 = 3352  # the EU2 host ISP's AS (hosts the in-ISP data center)


def _dataset_spec(*, subnets, detours=(), **pars) -> Spec:
    """A Table-I dataset as a delta: swap the subnet plan, add detour
    pins, assign identity/volume pars."""
    return Spec(
        remove=ScenarioInfo(sets={"subnet": [_BARE_SUBNET]}),
        add=ScenarioInfo(sets={"subnet": subnets, "detour": detours}, pars=pars),
    )


#: The five datasets of Table I as specs.  Request volumes are derived
#: from the paper's weekly flow counts (flows ≈ 1.3 × requests).
DATASET_SPECS: Dict[str, Spec] = {
    "US-Campus": _dataset_spec(
        name="US-Campus",
        vantage_city="West Lafayette",
        access="CAMPUS",
        egress_ms=10.0,
        vantage_asn=17,
        subnets=[
            ("Net-1", 0.30, False),
            ("Net-2", 0.27, False),
            # Net-3's local DNS servers receive a *different* preferred
            # data center from YouTube's authoritative servers — the
            # Section VII-B mechanism behind Figure 12.
            ("Net-3", 0.04, True),
            ("Net-4", 0.22, False),
            ("Net-5", 0.17, False),
        ],
        # The five geographically closest data centers are reached over
        # congested transit, so the lowest-RTT data center is a far one —
        # the Figure 8 anomaly.
        detours=[
            ("dc-chicago", 25.0),
            ("dc-kansas-city", 25.0),
            ("dc-atlanta", 25.0),
            ("dc-ashburn", 25.0),
            ("dc-new-york", 25.0),
            ("dc-dallas", 0.0),
        ],
        num_clients=20443,
        client_block="128.210.0.0/15",
        requests_per_day=94600.0,
        residential=False,
        spill_probability=0.02,
    ),
    "EU1-Campus": _dataset_spec(
        name="EU1-Campus",
        vantage_city="Turin",
        access="CAMPUS",
        egress_ms=4.0,
        vantage_asn=137,
        subnets=[("Net-1", 0.55, False), ("Net-2", 0.45, False)],
        detours=[("dc-milan", 0.0)],
        num_clients=1113,
        client_block="130.192.0.0/15",
        requests_per_day=14600.0,
        residential=False,
        spill_probability=0.04,
    ),
    "EU1-ADSL": _dataset_spec(
        name="EU1-ADSL",
        vantage_city="Turin",
        access="ADSL",
        egress_ms=3.0,
        vantage_asn=3269,
        subnets=[
            ("Net-1", 0.40, False),
            ("Net-2", 0.35, False),
            ("Net-3", 0.25, False),
        ],
        detours=[("dc-milan", 0.0)],
        num_clients=8348,
        client_block="151.52.0.0/15",
        requests_per_day=94900.0,
        residential=True,
        spill_probability=0.04,
    ),
    "EU1-FTTH": _dataset_spec(
        name="EU1-FTTH",
        vantage_city="Turin",
        access="FTTH",
        egress_ms=2.0,
        vantage_asn=3269,
        subnets=[("Net-1", 0.60, False), ("Net-2", 0.40, False)],
        detours=[("dc-milan", 0.0)],
        num_clients=997,
        client_block="151.54.0.0/15",
        requests_per_day=9900.0,
        residential=True,
        spill_probability=0.04,
    ),
    "EU2": _dataset_spec(
        name="EU2",
        vantage_city="Madrid",
        access="ADSL",
        egress_ms=3.0,
        vantage_asn=_ISP_ASN_EU2,
        subnets=[
            ("Net-1", 0.40, False),
            ("Net-2", 0.35, False),
            ("Net-3", 0.25, False),
        ],
        num_clients=6552,
        client_block="81.32.0.0/15",
        requests_per_day=55500.0,
        residential=True,
        spill_probability=0.01,
        internal_dc=True,
        internal_dc_cap_of_mean=0.55,
        legacy_probability=0.22,
    ),
}

#: The paper's February-2011 follow-up, as a *delta on the US-Campus
#: spec*: "the majority of US-Campus video requests are directed to a
#: data center with an RTT of more than 100 ms and not to the closest
#: data center".  The re-assignment is modelled by overriding the
#: preferred data center to Mountain View over a detoured (+55 ms) path.
FEB_2011_DELTA = Spec(
    add=ScenarioInfo(
        sets={"detour": [("dc-mountain-view", 55.0)]},
        pars={
            "name": "US-Campus-Feb2011",
            "preferred_override": "dc-mountain-view",
        },
    )
)

_SPECS: Dict[str, Spec] = dict(DATASET_SPECS)
_SPECS["US-Campus-Feb2011"] = DATASET_SPECS["US-Campus"].compose(FEB_2011_DELTA)

_MATERIALIZED: Dict[str, ScenarioSpec] = {}


def spec_names() -> Tuple[str, ...]:
    """Every registered spec name (datasets first, then registrations)."""
    return tuple(_SPECS)


def named_spec(name: str) -> Spec:
    """The registered delta for ``name``.

    Raises:
        KeyError: For unknown names.
    """
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario spec {name!r}; expected one of {tuple(_SPECS)}"
        ) from None


def scenario_spec(name: str) -> ScenarioSpec:
    """The materialised :class:`ScenarioSpec` for a registered name.

    Materialisation applies the named delta to :data:`BARE_BASE` once and
    memoises the result, so repeated lookups (and the
    ``PAPER_SCENARIOS`` wrapper) return the identical object.

    Raises:
        KeyError: For unknown names.
    """
    delta = named_spec(name)
    if name not in _MATERIALIZED:
        scenario, _policy = apply_to_scenario(BARE_BASE, delta)
        _MATERIALIZED[name] = scenario
    return _MATERIALIZED[name]


def paper_scenarios() -> Dict[str, ScenarioSpec]:
    """The five Table-I scenarios, materialised, in the paper's order."""
    return {name: scenario_spec(name) for name in DATASET_NAMES}


def register_spec(name: str, spec: Spec) -> None:
    """Register a new named spec (grid bases, policy families, tests).

    Args:
        name: A fresh name; built-ins cannot be shadowed.
        spec: The delta to apply to :data:`BARE_BASE`.

    Raises:
        SpecError: If the name is taken or the spec is not a :class:`Spec`.
    """
    if not isinstance(spec, Spec):
        raise SpecError(f"register_spec needs a Spec, got {type(spec).__name__!r}")
    if name in _SPECS:
        raise SpecError(f"scenario spec {name!r} is already registered")
    _SPECS[name] = spec


def unregister_spec(name: str) -> None:
    """Remove a previously registered spec (tests clean up with this).

    Raises:
        SpecError: For built-in dataset names or unknown names.
    """
    if name in DATASET_SPECS or name == "US-Campus-Feb2011":
        raise SpecError(f"cannot unregister built-in spec {name!r}")
    if name not in _SPECS:
        raise SpecError(f"scenario spec {name!r} is not registered")
    del _SPECS[name]
    _MATERIALIZED.pop(name, None)
