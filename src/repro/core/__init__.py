"""The paper's analysis pipeline — the primary contribution.

Everything in this package consumes only what the authors had: flow-level
logs (:mod:`repro.trace`), active RTT measurements, whois lookups and CBG
results.  Nothing reads the simulator's ground truth, so every regenerated
table and figure is a genuine inference test of the methodology.

Module map (paper section → module):

* §VI-A flow types and sessions → :mod:`repro.core.flows`,
  :mod:`repro.core.sessions`
* §III-B Table I → :mod:`repro.core.summary`
* §IV Table II → :mod:`repro.core.asmap`
* §V Table III, Figures 2-3 → :mod:`repro.core.geography`
* §VI-B Figures 7-9 → :mod:`repro.core.preferred`,
  :mod:`repro.core.nonpreferred`
* §VI-C Figure 10 → :mod:`repro.core.nonpreferred`
* §VII-A Figure 11 → :mod:`repro.core.loadbalance`
* §VII-B Figure 12 → :mod:`repro.core.subnets`
* §VII-C Figures 13-16 → :mod:`repro.core.hotspots`
* end-to-end orchestration → :mod:`repro.core.pipeline`
"""

from repro.core.flows import (
    CONTROL_FLOW_THRESHOLD_BYTES,
    FlowClasses,
    classify_flows,
    flow_size_cdf,
    is_video_flow,
)
from repro.core.sessions import (
    Session,
    build_sessions,
    flows_per_session_histogram,
    multi_flow_fraction,
)
from repro.core.summary import DatasetSummary, summarize
from repro.core.asmap import AsBreakdown, breakdown_by_as, google_focus_ips
from repro.core.preferred import DataCenterView, PreferredDcReport, analyze_preferred
from repro.core.nonpreferred import (
    MultiFlowBreakdown,
    SessionPattern,
    hourly_nonpreferred_cdf,
    multi_flow_breakdown,
    one_flow_breakdown,
    two_flow_breakdown,
)
from repro.core.characterize import TraceProfile, characterize
from repro.core.evolution import EpochDiff, compare_epochs
from repro.core.peering import AsTraffic, PeeringReport, analyze_peering
from repro.core.confidence import ConfidenceInterval, bootstrap_interval, fraction_interval
from repro.core.report import render_study_report
from repro.core.pipeline import StudyPipeline, StudyResults

__all__ = [
    "CONTROL_FLOW_THRESHOLD_BYTES",
    "FlowClasses",
    "classify_flows",
    "flow_size_cdf",
    "is_video_flow",
    "Session",
    "build_sessions",
    "flows_per_session_histogram",
    "multi_flow_fraction",
    "DatasetSummary",
    "summarize",
    "AsBreakdown",
    "breakdown_by_as",
    "google_focus_ips",
    "DataCenterView",
    "PreferredDcReport",
    "analyze_preferred",
    "MultiFlowBreakdown",
    "SessionPattern",
    "hourly_nonpreferred_cdf",
    "multi_flow_breakdown",
    "one_flow_breakdown",
    "two_flow_breakdown",
    "TraceProfile",
    "characterize",
    "EpochDiff",
    "compare_epochs",
    "AsTraffic",
    "PeeringReport",
    "analyze_peering",
    "ConfidenceInterval",
    "bootstrap_interval",
    "fraction_interval",
    "render_study_report",
    "StudyPipeline",
    "StudyResults",
]
