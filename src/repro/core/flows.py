"""Control-flow vs. video-flow classification (Section VI-A).

"We separate flows into two groups according to their size: flows smaller
than 1000 bytes, which correspond to control flows, and the rest of the
flows, which corresponds to video flows."  The threshold sits in the kink
of the flow-size CDF (Figure 4); :func:`flow_size_cdf` regenerates that
CDF and :func:`detect_size_threshold` re-derives the kink from the data
as a sanity check on the hard-coded 1000.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Union

from repro.reporting.series import Cdf
from repro.trace.columnar import FlowTable, active_table, as_records
from repro.trace.records import FlowRecord

#: The paper's control/video size threshold, bytes.
CONTROL_FLOW_THRESHOLD_BYTES = 1000


def is_video_flow(record: FlowRecord, threshold: int = CONTROL_FLOW_THRESHOLD_BYTES) -> bool:
    """Whether a flow carries video (by the size heuristic)."""
    return record.num_bytes >= threshold


@dataclass
class FlowClasses:
    """The two flow populations of a dataset.

    Attributes:
        control: Flows below the threshold (signalling).
        video: Flows at or above the threshold (content).
    """

    control: List[FlowRecord] = field(default_factory=list)
    video: List[FlowRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        """All classified flows."""
        return len(self.control) + len(self.video)

    @property
    def control_fraction(self) -> float:
        """Share of control flows.

        Raises:
            ValueError: On an empty dataset.
        """
        if self.total == 0:
            raise ValueError("no flows classified")
        return len(self.control) / self.total


def classify_flows(
    records: Union[Iterable[FlowRecord], FlowTable],
    threshold: int = CONTROL_FLOW_THRESHOLD_BYTES,
) -> FlowClasses:
    """Split flows into control and video populations."""
    table = active_table(records)
    if table is not None:
        import numpy as np

        mask = table.columns().num_bytes >= threshold
        recs = table.records
        return FlowClasses(
            control=[recs[i] for i in np.flatnonzero(~mask).tolist()],
            video=[recs[i] for i in np.flatnonzero(mask).tolist()],
        )
    classes = FlowClasses()
    for record in as_records(records):
        if record.num_bytes >= threshold:
            classes.video.append(record)
        else:
            classes.control.append(record)
    return classes


def flow_size_cdf(records: Union[Sequence[FlowRecord], FlowTable]) -> Cdf:
    """The CDF of flow sizes (Figure 4).

    Raises:
        ValueError: On an empty dataset.
    """
    table = active_table(records)
    if table is not None:
        return Cdf(table.columns().num_bytes)
    return Cdf(r.num_bytes for r in records)


def detect_size_threshold(
    records: Sequence[FlowRecord],
    low: float = 100.0,
    high: float = 1e6,
    bins_per_decade: int = 8,
) -> int:
    """Re-derive the control/video kink from the size distribution.

    Finds the sparsest log-spaced bin between ``low`` and ``high`` — the
    valley between the control-message mode and the video-payload mode —
    and returns its left edge.  The paper picked 1000 bytes by inspecting
    Figure 4; this automates the same judgement.

    Raises:
        ValueError: With fewer than 10 flows.
    """
    sizes = sorted(r.num_bytes for r in records if r.num_bytes > 0)
    if len(sizes) < 10:
        raise ValueError("need at least 10 flows to detect a threshold")
    log_low, log_high = math.log10(low), math.log10(high)
    num_bins = int((log_high - log_low) * bins_per_decade)
    counts = [0] * num_bins
    for size in sizes:
        position = (math.log10(size) - log_low) / (log_high - log_low)
        if 0.0 <= position < 1.0:
            counts[int(position * num_bins)] += 1
    # The valley: the emptiest bin between the two modes.
    first_nonzero = next((i for i, c in enumerate(counts) if c > 0), 0)
    last_nonzero = next(
        (num_bins - 1 - i for i, c in enumerate(reversed(counts)) if c > 0), num_bins - 1
    )
    if first_nonzero >= last_nonzero:
        return CONTROL_FLOW_THRESHOLD_BYTES
    valley = min(range(first_nonzero, last_nonzero + 1), key=lambda i: counts[i])
    edge = 10 ** (log_low + valley * (log_high - log_low) / num_bins)
    return int(edge)
