"""Longitudinal comparison: did the CDN's mapping change between epochs?

The paper itself is a snapshot, but it flags the question (Section VI-B):
between September 2010 and February 2011, US-Campus's preferred data
center moved from a ~30 ms one to one over 100 ms away.  Given two
preferred-data-center reports for the *same vantage point* from different
collection windows, this module answers: did the preferred data center
change, what did it cost in RTT, and how did the traffic concentration
move?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.preferred import PreferredDcReport


@dataclass(frozen=True)
class EpochDiff:
    """The mapping change between two epochs of one vantage point.

    Attributes:
        vantage_name: Dataset/vantage the epochs belong to.
        old_preferred: Earlier epoch's preferred data center.
        new_preferred: Later epoch's preferred data center.
        old_rtt_ms: Min RTT to the earlier preferred data center.
        new_rtt_ms: Min RTT to the later preferred data center.
        old_share: Byte share of the earlier preferred data center.
        new_share: Byte share of the later preferred data center.
    """

    vantage_name: str
    old_preferred: str
    new_preferred: str
    old_rtt_ms: float
    new_rtt_ms: float
    old_share: float
    new_share: float

    @property
    def preferred_changed(self) -> bool:
        """Whether the preferred data center moved."""
        return self.old_preferred != self.new_preferred

    @property
    def rtt_delta_ms(self) -> float:
        """RTT cost (positive = the new mapping is farther)."""
        return self.new_rtt_ms - self.old_rtt_ms

    @property
    def left_rtt_optimum(self) -> bool:
        """Whether the new epoch's mapping abandoned the RTT optimum
        by a clear margin (the paper's February-2011 situation)."""
        return self.preferred_changed and self.rtt_delta_ms > 10.0

    def render(self) -> str:
        """One-paragraph text summary."""
        if not self.preferred_changed:
            return (
                f"{self.vantage_name}: preferred data center unchanged "
                f"({self.old_preferred}, {self.old_rtt_ms:.0f} ms, "
                f"{self.old_share:.0%} of bytes in both epochs)"
            )
        return (
            f"{self.vantage_name}: preferred data center moved "
            f"{self.old_preferred} ({self.old_rtt_ms:.0f} ms, {self.old_share:.0%}) "
            f"-> {self.new_preferred} ({self.new_rtt_ms:.0f} ms, {self.new_share:.0%}); "
            f"RTT delta {self.rtt_delta_ms:+.0f} ms"
            + (" — the mapping left the RTT optimum" if self.left_rtt_optimum else "")
        )


def compare_epochs(old: PreferredDcReport, new: PreferredDcReport) -> EpochDiff:
    """Diff two epochs of the same vantage point.

    Args:
        old: The earlier collection window's report.
        new: The later one's.

    Returns:
        The :class:`EpochDiff`.

    Raises:
        ValueError: If the reports describe different vantage points (a
            dataset-name prefix match is required: ``"US-Campus"`` and
            ``"US-Campus-Feb2011"`` are the same vantage).
    """
    prefix = old.dataset_name.split("-Feb")[0].split("-Sep")[0]
    if not new.dataset_name.startswith(prefix):
        raise ValueError(
            f"cannot compare epochs of different vantage points: "
            f"{old.dataset_name!r} vs {new.dataset_name!r}"
        )
    return EpochDiff(
        vantage_name=prefix,
        old_preferred=old.preferred_id,
        new_preferred=new.preferred_id,
        old_rtt_ms=old.preferred.min_rtt_ms,
        new_rtt_ms=new.preferred.min_rtt_ms,
        old_share=old.byte_share(old.preferred_id),
        new_share=new.byte_share(new.preferred_id),
    )
