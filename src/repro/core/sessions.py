"""Video-session construction (Section VI-A).

"A video session aggregates all flows that i) have the same source IP
address and VideoID, and ii) are overlapped in time.  In particular, we
consider two flows to overlap in time if the end of the first flow and the
beginning of the second flow are separated by less than T seconds."

The paper's sensitivity analysis (Figure 5) sweeps T over
{1, 5, 10, 60, 300} seconds and settles on T = 1 s; Figure 6 then reports
the flows-per-session distribution at T = 1 s for every dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.trace.records import FlowRecord

#: The paper's chosen session gap.
DEFAULT_GAP_S = 1.0

#: The gap values swept in Figure 5.
PAPER_GAP_SWEEP_S = (1.0, 5.0, 10.0, 60.0, 300.0)

#: Figure 5/6 bucket labels: 1..9 flows, then ">9".
HISTOGRAM_BUCKETS = tuple(str(i) for i in range(1, 10)) + (">9",)


@dataclass
class Session:
    """A group of related flows: one user's attempt to watch one video.

    Attributes:
        client_ip: The client address.
        video_id: The requested VideoID.
        flows: Member flows ordered by start time.
    """

    client_ip: int
    video_id: str
    flows: List[FlowRecord] = field(default_factory=list)

    @property
    def num_flows(self) -> int:
        """Number of member flows."""
        return len(self.flows)

    @property
    def t_start(self) -> float:
        """Start of the first flow."""
        return self.flows[0].t_start

    @property
    def hour(self) -> int:
        """Trace hour the session started in."""
        return int(self.t_start // 3600.0)

    @property
    def first_flow(self) -> FlowRecord:
        """The session's first flow (DNS landing point)."""
        return self.flows[0]

    @property
    def last_flow(self) -> FlowRecord:
        """The session's last flow (normally the video transfer)."""
        return self.flows[-1]

    @property
    def total_bytes(self) -> int:
        """Bytes over all member flows."""
        return sum(f.num_bytes for f in self.flows)


def build_sessions(records: Iterable[FlowRecord], gap_s: float = DEFAULT_GAP_S) -> List[Session]:
    """Group flows into video sessions.

    Args:
        records: Flow records (any order).
        gap_s: The session gap T.

    Returns:
        Sessions ordered by (client, video, start time).

    Raises:
        ValueError: For a non-positive gap.
    """
    if gap_s <= 0:
        raise ValueError("gap_s must be positive")
    by_key: Dict[Tuple[int, str], List[FlowRecord]] = {}
    for record in records:
        by_key.setdefault((record.src_ip, record.video_id), []).append(record)

    sessions: List[Session] = []
    for (client_ip, video_id) in sorted(by_key):
        flows = sorted(by_key[(client_ip, video_id)], key=lambda f: (f.t_start, f.t_end))
        current = Session(client_ip=client_ip, video_id=video_id, flows=[flows[0]])
        # Track the latest end seen so an early long flow keeps covering
        # later short ones (flows genuinely overlap during redirects).
        horizon = flows[0].t_end
        for flow in flows[1:]:
            if flow.t_start - horizon < gap_s:
                current.flows.append(flow)
            else:
                sessions.append(current)
                current = Session(client_ip=client_ip, video_id=video_id, flows=[flow])
            horizon = max(horizon, flow.t_end)
        sessions.append(current)
    return sessions


def flows_per_session_histogram(sessions: Sequence[Session]) -> Dict[str, float]:
    """The Figure 5/6 histogram: fraction of sessions per flow-count bucket.

    Returns:
        Mapping bucket label (``"1"``..``"9"``, ``">9"``) → fraction.

    Raises:
        ValueError: With no sessions.
    """
    if not sessions:
        raise ValueError("no sessions")
    counts = {label: 0 for label in HISTOGRAM_BUCKETS}
    for session in sessions:
        n = session.num_flows
        label = str(n) if n <= 9 else ">9"
        counts[label] += 1
    total = len(sessions)
    return {label: counts[label] / total for label in HISTOGRAM_BUCKETS}


def multi_flow_fraction(sessions: Sequence[Session]) -> float:
    """Fraction of sessions with at least two flows.

    The paper reports 19.5-27.5 % at T = 1 s ("the use of application-layer
    redirection is not insignificant").

    Raises:
        ValueError: With no sessions.
    """
    if not sessions:
        raise ValueError("no sessions")
    return sum(1 for s in sessions if s.num_flows >= 2) / len(sessions)


def gap_sensitivity(
    records: Sequence[FlowRecord], gaps_s: Sequence[float] = PAPER_GAP_SWEEP_S
) -> Dict[float, Dict[str, float]]:
    """Figure 5: the flows-per-session histogram for each gap value."""
    return {gap: flows_per_session_histogram(build_sessions(records, gap)) for gap in gaps_s}
