"""Video-session construction (Section VI-A).

"A video session aggregates all flows that i) have the same source IP
address and VideoID, and ii) are overlapped in time.  In particular, we
consider two flows to overlap in time if the end of the first flow and the
beginning of the second flow are separated by less than T seconds."

The paper's sensitivity analysis (Figure 5) sweeps T over
{1, 5, 10, 60, 300} seconds and settles on T = 1 s; Figure 6 then reports
the flows-per-session distribution at T = 1 s for every dataset.

Two interchangeable implementations back :func:`build_sessions` and
:func:`gap_sensitivity` (see ``REPRO_KERNELS`` in
:mod:`repro.trace.columnar`): the record-at-a-time Python spec below, and
a columnar kernel — one stable lexsort on (client, video, t_start, t_end)
plus a group-wise running-max horizon — that produces the identical
session lists.  Either way the Figure 5 sweep shares a single sorted
pass: only the gap comparison is re-evaluated per T.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.trace.columnar import (
    FlowTable,
    active_table,
    as_records,
    histogram_from_sizes,
)
from repro.trace.records import FlowRecord

#: The paper's chosen session gap.
DEFAULT_GAP_S = 1.0

#: The gap values swept in Figure 5.
PAPER_GAP_SWEEP_S = (1.0, 5.0, 10.0, 60.0, 300.0)

#: Figure 5/6 bucket labels: 1..9 flows, then ">9".
HISTOGRAM_BUCKETS = tuple(str(i) for i in range(1, 10)) + (">9",)


@dataclass
class Session:
    """A group of related flows: one user's attempt to watch one video.

    Attributes:
        client_ip: The client address.
        video_id: The requested VideoID.
        flows: Member flows ordered by start time.
    """

    client_ip: int
    video_id: str
    flows: List[FlowRecord] = field(default_factory=list)

    @property
    def num_flows(self) -> int:
        """Number of member flows."""
        return len(self.flows)

    @property
    def t_start(self) -> float:
        """Start of the first flow."""
        return self.flows[0].t_start

    @property
    def hour(self) -> int:
        """Trace hour the session started in."""
        return int(self.t_start // 3600.0)

    @property
    def first_flow(self) -> FlowRecord:
        """The session's first flow (DNS landing point)."""
        return self.flows[0]

    @property
    def last_flow(self) -> FlowRecord:
        """The session's last flow (normally the video transfer)."""
        return self.flows[-1]

    @property
    def total_bytes(self) -> int:
        """Bytes over all member flows."""
        return sum(f.num_bytes for f in self.flows)


def _sorted_groups(records: Iterable[FlowRecord]) -> List[List[FlowRecord]]:
    """Flows grouped by (client, video), groups and members in spec order."""
    by_key: Dict[Tuple[int, str], List[FlowRecord]] = {}
    for record in records:
        by_key.setdefault((record.src_ip, record.video_id), []).append(record)
    return [
        sorted(by_key[key], key=lambda f: (f.t_start, f.t_end)) for key in sorted(by_key)
    ]


def _group_session_sizes(flows: Sequence[FlowRecord], gap_s: float) -> List[int]:
    """Session sizes of one sorted (client, video) group."""
    sizes: List[int] = []
    size = 1
    # Track the latest end seen so an early long flow keeps covering
    # later short ones (flows genuinely overlap during redirects).
    horizon = flows[0].t_end
    for flow in flows[1:]:
        if flow.t_start - horizon < gap_s:
            size += 1
        else:
            sizes.append(size)
            size = 1
        horizon = max(horizon, flow.t_end)
    sizes.append(size)
    return sizes


def _build_sessions_python(
    records: Iterable[FlowRecord], gap_s: float
) -> List[Session]:
    sessions: List[Session] = []
    for flows in _sorted_groups(records):
        first = flows[0]
        current = Session(client_ip=first.src_ip, video_id=first.video_id, flows=[first])
        horizon = first.t_end
        for flow in flows[1:]:
            if flow.t_start - horizon < gap_s:
                current.flows.append(flow)
            else:
                sessions.append(current)
                current = Session(
                    client_ip=flow.src_ip, video_id=flow.video_id, flows=[flow]
                )
            horizon = max(horizon, flow.t_end)
        sessions.append(current)
    return sessions


def _build_sessions_numpy(table: FlowTable, gap_s: float) -> List[Session]:
    index = table.session_index()
    n = len(index.order)
    if n == 0:
        return []
    records = table.records
    ordered = [records[i] for i in index.order.tolist()]
    # Pull each session's key from the columns instead of the first record:
    # 75k attribute lookups cost more than three vectorised gathers.
    cols = table.columns()
    first_rows = index.session_starts(gap_s).nonzero()[0]
    client_ips = cols.src_ip[index.order[first_rows]].tolist()
    video_codes = cols.video_code[index.order[first_rows]].tolist()
    video_ids = cols.video_ids.tolist()  # built-in str, not numpy str_
    bounds = first_rows.tolist()
    bounds.append(n)
    flow_lists = [ordered[start:end] for start, end in zip(bounds, bounds[1:])]
    return list(
        map(Session, client_ips, map(video_ids.__getitem__, video_codes), flow_lists)
    )


def build_sessions(
    records: Union[Iterable[FlowRecord], FlowTable], gap_s: float = DEFAULT_GAP_S
) -> List[Session]:
    """Group flows into video sessions.

    Args:
        records: Flow records (any order), or a
            :class:`~repro.trace.columnar.FlowTable` over them.
        gap_s: The session gap T.

    Returns:
        Sessions ordered by (client, video, start time) — identical on
        either kernel backend.

    Raises:
        ValueError: For a non-positive gap.
    """
    if gap_s <= 0:
        raise ValueError("gap_s must be positive")
    table = active_table(records)
    if table is not None:
        return _build_sessions_numpy(table, gap_s)
    return _build_sessions_python(as_records(records), gap_s)


def _histogram_from_counts(sizes: Sequence[int]) -> Dict[str, float]:
    if not sizes:
        raise ValueError("no sessions")
    counts = {label: 0 for label in HISTOGRAM_BUCKETS}
    for n in sizes:
        counts[str(n) if n <= 9 else ">9"] += 1
    total = len(sizes)
    return {label: counts[label] / total for label in HISTOGRAM_BUCKETS}


def flows_per_session_histogram(sessions: Sequence[Session]) -> Dict[str, float]:
    """The Figure 5/6 histogram: fraction of sessions per flow-count bucket.

    Returns:
        Mapping bucket label (``"1"``..``"9"``, ``">9"``) → fraction.

    Raises:
        ValueError: With no sessions.
    """
    return _histogram_from_counts([session.num_flows for session in sessions])


def multi_flow_fraction(sessions: Sequence[Session]) -> float:
    """Fraction of sessions with at least two flows.

    The paper reports 19.5-27.5 % at T = 1 s ("the use of application-layer
    redirection is not insignificant").

    Raises:
        ValueError: With no sessions.
    """
    if not sessions:
        raise ValueError("no sessions")
    return sum(1 for s in sessions if s.num_flows >= 2) / len(sessions)


def gap_sensitivity(
    records: Union[Sequence[FlowRecord], FlowTable],
    gaps_s: Sequence[float] = PAPER_GAP_SWEEP_S,
) -> Dict[float, Dict[str, float]]:
    """Figure 5: the flows-per-session histogram for each gap value.

    The grouping and sorting work is shared across the sweep on both
    backends — only the gap-break comparison is re-evaluated per T.

    Raises:
        ValueError: For a non-positive gap, or with no sessions.
    """
    for gap in gaps_s:
        if gap <= 0:
            raise ValueError("gap_s must be positive")
    table = active_table(records)
    if table is not None:
        index = table.session_index()
        return {
            gap: histogram_from_sizes(index.session_sizes(gap)) for gap in gaps_s
        }
    groups = _sorted_groups(as_records(records))
    out: Dict[float, Dict[str, float]] = {}
    for gap in gaps_s:
        sizes: List[int] = []
        for flows in groups:
            sizes.extend(_group_session_sizes(flows, gap))
        out[gap] = _histogram_from_counts(sizes)
    return out
