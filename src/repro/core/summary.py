"""Dataset traffic summary (Table I)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.reporting.tables import TextTable, format_bytes
from repro.trace.columnar import use_numpy
from repro.trace.records import Dataset


@dataclass(frozen=True)
class DatasetSummary:
    """One Table I row.

    Attributes:
        name: Dataset name.
        flows: Total YouTube flows.
        volume_bytes: Total downloaded bytes.
        num_servers: Distinct server addresses.
        num_clients: Distinct client addresses.
    """

    name: str
    flows: int
    volume_bytes: int
    num_servers: int
    num_clients: int

    @property
    def volume_gb(self) -> float:
        """Volume in gigabytes (Table I's unit)."""
        return self.volume_bytes / 1e9

    @property
    def mean_flow_bytes(self) -> float:
        """Mean bytes per flow (diagnostic; not in the paper's table).

        Raises:
            ValueError: With no flows.
        """
        if self.flows == 0:
            raise ValueError("no flows")
        return self.volume_bytes / self.flows


def summarize(dataset: Dataset) -> DatasetSummary:
    """Compute the Table I row for one dataset."""
    if use_numpy():
        import numpy as np

        cols = dataset.columnar().columns()
        return DatasetSummary(
            name=dataset.name,
            flows=len(dataset),
            volume_bytes=int(cols.num_bytes.sum()),
            num_servers=int(np.unique(cols.dst_ip).size),
            num_clients=int(np.unique(cols.src_ip).size),
        )
    return DatasetSummary(
        name=dataset.name,
        flows=len(dataset),
        volume_bytes=dataset.total_bytes,
        num_servers=len(dataset.server_ips),
        num_clients=len(dataset.client_ips),
    )


def render_table1(summaries: Iterable[DatasetSummary]) -> str:
    """Render Table I for a set of datasets."""
    table = TextTable(
        ["Dataset", "YouTube flows", "Volume [GB]", "#Servers", "#Clients"],
        title="TABLE I — TRAFFIC SUMMARY FOR THE DATASETS",
    )
    for s in summaries:
        table.add_row(s.name, s.flows, format_bytes(s.volume_bytes), s.num_servers, s.num_clients)
    return table.render()
