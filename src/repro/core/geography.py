"""Server geography analyses (Section V: Figures 2, 3; Table III)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.geo.regions import Continent
from repro.geoloc.clustering import ServerMap
from repro.geoloc.probing import RttProber
from repro.net.latency import Site
from repro.reporting.series import Cdf
from repro.reporting.tables import TextTable
from repro.trace.records import Dataset

#: Table III column order.
TABLE3_BUCKETS = ("N. America", "Europe", "Others")


def vantage_rtt_campaign(
    dataset: Dataset,
    prober: RttProber,
    site_of_ip: Callable[[int], Optional[Site]],
) -> Dict[int, float]:
    """Ping every server seen in a dataset from its vantage point (Figure 2).

    Args:
        dataset: The dataset whose servers to probe.
        prober: Measurement plumbing.
        site_of_ip: Physical reachability: IP → pingable site (None for
            unreachable/filtered addresses).

    Returns:
        Mapping server IP → measured min RTT (ms).
    """
    origin = dataset.vantage.probe_site
    rtts: Dict[int, float] = {}
    for ip in dataset.server_ips:
        target = site_of_ip(ip)
        if target is None:
            continue
        rtts[ip] = prober.measure_ms(origin, target)
    return rtts


def rtt_cdf(rtts: Mapping[int, float]) -> Cdf:
    """CDF of per-server minimum RTTs (one Figure 2 curve).

    Raises:
        ValueError: With no measurements.
    """
    return Cdf(rtts.values())


def confidence_radius_cdfs(server_map: ServerMap) -> Dict[str, Cdf]:
    """Figure 3: CDFs of the CBG confidence radius, split US vs Europe.

    One sample per geolocated /24 representative, bucketed by the continent
    of the inferred location.
    """
    samples: Dict[str, List[float]] = {"US": [], "Europe": []}
    slash24_cluster: Dict[int, Continent] = {}
    for cluster in server_map.clusters:
        for ip in cluster.server_ips:
            slash24_cluster[ip & 0xFFFFFF00] = cluster.continent
    for net24, result in server_map.results_by_slash24.items():
        continent = slash24_cluster.get(net24)
        if continent is Continent.NORTH_AMERICA:
            samples["US"].append(result.confidence_radius_km)
        elif continent is Continent.EUROPE:
            samples["Europe"].append(result.confidence_radius_km)
    return {region: Cdf(values) for region, values in samples.items() if values}


@dataclass(frozen=True)
class ContinentRow:
    """One Table III row."""

    name: str
    counts: Dict[str, int]

    @property
    def total(self) -> int:
        """Total geolocated servers for the dataset."""
        return sum(self.counts.values())


def continent_table(
    datasets: Iterable[Dataset],
    server_map: ServerMap,
    focus_ips: Mapping[str, Sequence[int]],
) -> List[ContinentRow]:
    """Table III: Google servers per continent for each dataset.

    Args:
        datasets: The datasets, in presentation order.
        server_map: The CBG clustering result over all servers.
        focus_ips: Per-dataset Google-focus server lists (Section IV).
    """
    rows: List[ContinentRow] = []
    for dataset in datasets:
        counts = server_map.continent_counts(focus_ips[dataset.name])
        rows.append(ContinentRow(name=dataset.name, counts=counts))
    return rows


def render_table3(rows: Iterable[ContinentRow]) -> str:
    """Render Table III."""
    table = TextTable(
        ["Dataset", *TABLE3_BUCKETS],
        title="TABLE III — GOOGLE SERVERS PER CONTINENT ON EACH DATASET",
    )
    for row in rows:
        table.add_row(row.name, *(row.counts.get(b, 0) for b in TABLE3_BUCKETS))
    return table.render()
