"""Full study report: every regenerated artifact in one document.

Renders the complete output of a :class:`~repro.core.pipeline.StudyPipeline`
— Tables I-III and the data behind Figures 2-16 — into a single plain-text
report, section by paper section.  The CLI's ``study`` command and the
examples use it; it is also handy as a regression artifact (diff two
reports to see what a change moved).
"""

from __future__ import annotations

from typing import List

from repro.core.asmap import render_table2
from repro.core.geography import render_table3
from repro.core.hotspots import exactly_once_fraction, nonpreferred_requests_per_video
from repro.core.nonpreferred import SessionPattern
from repro.core.pipeline import StudyPipeline
from repro.core.summary import render_table1
from repro.reporting.tables import TextTable, format_fraction


def _section(title: str) -> List[str]:
    bar = "=" * len(title)
    return ["", title, bar]


def render_study_report(pipeline: StudyPipeline, hot_dataset: str = "EU1-ADSL") -> str:
    """Render the full study report.

    Args:
        pipeline: A pipeline over the simulated (or collected) datasets.
        hot_dataset: The dataset used for the hot-spot deep dive
            (Figures 13-16); the paper uses EU1-ADSL.

    Returns:
        The report text.

    Raises:
        KeyError: If ``hot_dataset`` is not one of the pipeline's datasets.
    """
    if hot_dataset not in pipeline.dataset_names:
        raise KeyError(f"unknown dataset {hot_dataset!r}")
    lines: List[str] = ["YOUTUBE CDN SERVER-SELECTION STUDY — FULL REPORT"]

    lines += _section("Datasets (Table I)")
    lines.append(render_table1(pipeline.summaries.values()))

    lines += _section("AS location of servers (Table II)")
    lines.append(render_table2(pipeline.as_breakdowns.values()))

    lines += _section("Server geolocation (Table III, Figures 2-3)")
    lines.append(render_table3(pipeline.table3_rows))
    lines.append("")
    for name in pipeline.dataset_names:
        lines.append(pipeline.rtt_cdf(name).render(f"RTT ms — {name}"))
    lines.append("")
    for region, cdf in pipeline.fig3_cdfs.items():
        lines.append(cdf.render(f"CBG confidence km — {region}"))

    lines += _section("Flows and sessions (Figures 4-6)")
    table = TextTable(["Dataset", "flows", "control%", "1-flow sess%", ">=2-flow sess%"])
    for name in pipeline.dataset_names:
        histogram = pipeline.session_histogram(name)
        size_cdf = pipeline.flow_size_cdf(name)
        table.add_row(
            name,
            len(pipeline.dataset(name).records),
            format_fraction(size_cdf.fraction_below(1000)),
            format_fraction(histogram["1"]),
            format_fraction(1.0 - histogram["1"]),
        )
    lines.append(table.render())

    lines += _section("Preferred data centers (Figures 7-9)")
    table = TextTable(
        [
            "Dataset", "preferred DC", "byte share%", "min RTT [ms]",
            "closest-5 share%", "non-preferred%",
        ]
    )
    for name in pipeline.dataset_names:
        report = pipeline.preferred_reports[name]
        table.add_row(
            name,
            report.preferred_id,
            format_fraction(report.byte_share(report.preferred_id)),
            f"{report.preferred.min_rtt_ms:.1f}",
            format_fraction(report.closest_k_share(5)),
            format_fraction(pipeline.nonpreferred_fraction(name)),
        )
    lines.append(table.render())

    lines += _section("DNS vs. application-layer redirection (Figure 10)")
    table = TextTable(
        [
            "Dataset", "1-flow pref%", "1-flow nonpref%",
            "2f P,P%", "2f P,N%", "2f N,P%", "2f N,N%", "DNS-caused%",
        ]
    )
    for name in pipeline.dataset_names:
        one = pipeline.one_flow_breakdown(name)
        two = pipeline.two_flow_breakdown(name)
        causes = pipeline.dns_vs_redirection(name)
        table.add_row(
            name,
            format_fraction(one.preferred_fraction),
            format_fraction(one.nonpreferred_fraction),
            format_fraction(two[SessionPattern.PREFERRED_PREFERRED]),
            format_fraction(two[SessionPattern.PREFERRED_NONPREFERRED]),
            format_fraction(two[SessionPattern.NONPREFERRED_PREFERRED]),
            format_fraction(two[SessionPattern.NONPREFERRED_NONPREFERRED]),
            format_fraction(causes["dns"]),
        )
    lines.append(table.render())
    lines.append("")
    for name in pipeline.dataset_names:
        multi = pipeline.multi_flow_breakdown(name)
        lines.append(
            f"{name:12s} >2-flow sessions: {multi.share_of_all_sessions:5.1%} of all "
            f"(first-preferred-then-mixed {multi.fraction(multi.first_preferred_rest_mixed):.0%}, "
            f"first-non-preferred {multi.fraction(multi.first_nonpreferred):.0%})"
        )

    lines += _section("DNS-level load balancing (Figure 11)")
    for name in pipeline.dataset_names:
        lb = pipeline.load_balance(name)
        try:
            quiet, busy = lb.night_day_split()
            lines.append(
                f"{name:12s} quiet-hours local {quiet:5.1%}   "
                f"busy-hours local {busy:5.1%}   "
                f"correlation {lb.correlation():+.2f}"
            )
        except ValueError:
            lines.append(f"{name:12s} (not enough hours to split)")

    lines += _section("Subnet divergence (Figure 12)")
    for name in pipeline.dataset_names:
        shares = pipeline.subnet_shares(name)
        cells = "  ".join(
            f"{s.subnet_name}:{s.nonpreferred_share:.0%}/{s.all_share:.0%}"
            for s in shares
        )
        lines.append(f"{name:12s} (nonpref share / all share)  {cells}")

    lines += _section(f"Hot spots and cold content (Figures 13-16, {hot_dataset})")
    counts = nonpreferred_requests_per_video(
        pipeline.focus_records[hot_dataset],
        pipeline.preferred_reports[hot_dataset],
        pipeline.server_map,
    )
    lines.append(
        f"videos with non-preferred downloads: {len(counts)} "
        f"(exactly once: {exactly_once_fraction(counts):.1%}, "
        f"max: {max(counts.values())})"
    )
    for video in pipeline.hot_videos(hot_dataset):
        lines.append(
            f"  hot video {video.video_id}: peak hour {video.peak_hour()}, "
            f"{video.spike_concentration():.0%} of requests in one day, "
            f"{sum(video.nonpreferred_requests.ys):.0f} served non-preferred"
        )
    load = pipeline.server_load(hot_dataset)
    lines.append(f"preferred-DC server load: peak max/avg ratio {load.peak_ratio():.1f}")

    lines += _section("Peering ingress (capacity planning)")
    for name in pipeline.dataset_names:
        peering = pipeline.peering(name)
        top = peering.per_as[0]
        lines.append(
            f"{name:12s} top origin AS{top.asn} ({top.name}): "
            f"{top.total_bytes / 1e9:.1f} GB, p95 {top.p95_mbps():.1f} Mbps; "
            f"on-net share {peering.on_net_fraction:.0%}"
        )

    return "\n".join(lines)
