"""DNS-level load balancing over time (Section VII-A, Figure 11).

For EU2, the fraction of video flows served by the (in-ISP) preferred data
center tracks the diurnal load inversely: ~100 % at night, ~30 % at the
daily peak — "strong evidence that adaptive DNS-level load balancing
mechanisms are in place".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import math

from repro.core.nonpreferred import preference_masks, video_flow_preference
from repro.core.preferred import PreferredDcReport
from repro.geoloc.clustering import ServerMap
from repro.reporting.series import Series, hourly_counts
from repro.trace.columnar import FlowTable, active_table
from repro.trace.records import FlowRecord


@dataclass
class LoadBalanceReport:
    """Figure 11's two panels for one dataset.

    Attributes:
        dataset_name: Dataset described.
        local_fraction: Hour → fraction of video flows to the preferred
            data center (top panel); hours with no flows carry ``nan``.
        flows_per_hour: Hour → total video flows (bottom panel).
    """

    dataset_name: str
    local_fraction: Series
    flows_per_hour: Series

    def correlation(self) -> float:
        """Pearson correlation between load and the local fraction.

        The EU2 signature is a strongly *negative* value: the busier the
        hour, the smaller the share the internal data center can absorb.

        Raises:
            ValueError: With fewer than 3 usable hours.
        """
        pairs = [
            (load, frac)
            for load, frac in zip(self.flows_per_hour.ys, self.local_fraction.ys)
            if not math.isnan(frac)
        ]
        if len(pairs) < 3:
            raise ValueError("not enough hours to correlate")
        n = len(pairs)
        mean_x = sum(p[0] for p in pairs) / n
        mean_y = sum(p[1] for p in pairs) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
        var_x = sum((x - mean_x) ** 2 for x, _ in pairs)
        var_y = sum((y - mean_y) ** 2 for _, y in pairs)
        if var_x == 0 or var_y == 0:
            return 0.0
        return cov / math.sqrt(var_x * var_y)

    def night_day_split(self, threshold_fraction: float = 0.5) -> tuple:
        """Mean local fraction in quiet vs. busy hours.

        Hours are split at ``threshold_fraction`` of the peak hourly load.

        Returns:
            ``(quiet_mean, busy_mean)``.

        Raises:
            ValueError: If either side is empty.
        """
        peak = max(self.flows_per_hour.ys) if self.flows_per_hour.ys else 0
        quiet: List[float] = []
        busy: List[float] = []
        for load, frac in zip(self.flows_per_hour.ys, self.local_fraction.ys):
            if math.isnan(frac):
                continue
            (quiet if load < threshold_fraction * peak else busy).append(frac)
        if not quiet or not busy:
            raise ValueError("cannot split hours into quiet and busy")
        return (sum(quiet) / len(quiet), sum(busy) / len(busy))


def analyze_load_balance(
    records: Union[Sequence[FlowRecord], FlowTable],
    report: PreferredDcReport,
    server_map: ServerMap,
    num_hours: int,
) -> LoadBalanceReport:
    """Build Figure 11's series for one dataset."""
    table = active_table(records)
    if table is not None:
        is_video, verdict = preference_masks(table, report, server_map)
        hour = table.columns().hour
        local_hours = hourly_counts(hour[is_video & (verdict == 1)], num_hours)
        other_hours = hourly_counts(hour[is_video & (verdict == 0)], num_hours)
    else:
        split = video_flow_preference(records, report, server_map)
        local_hours = hourly_counts((f.hour for f in split[True]), num_hours)
        other_hours = hourly_counts((f.hour for f in split[False]), num_hours)

    local_fraction = Series(label=f"{report.dataset_name} local fraction")
    flows_per_hour = Series(label=f"{report.dataset_name} video flows/h")
    for hour in range(num_hours):
        total = local_hours[hour] + other_hours[hour]
        flows_per_hour.append(float(hour), float(total))
        local_fraction.append(
            float(hour), local_hours[hour] / total if total else float("nan")
        )
    return LoadBalanceReport(
        dataset_name=report.dataset_name,
        local_fraction=local_fraction,
        flows_per_hour=flows_per_hour,
    )
