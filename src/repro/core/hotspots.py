"""Hot-spot and cold-content analyses (Section VII-C: Figures 13-16).

Two ends of the popularity spectrum drive application-layer redirection:

* **hot videos** ("video of the day") overload their shard server in the
  preferred data center; overflow is shed to non-preferred data centers
  during the spike (Figures 14, 15, 16);
* **cold videos** are often absent from the preferred data center, so
  their *first* access is redirected — Figure 13's mass at exactly one
  non-preferred download.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.nonpreferred import preference_masks, video_flow_preference
from repro.core.preferred import PreferredDcReport
from repro.core.sessions import Session
from repro.geoloc.clustering import ServerMap
from repro.reporting.series import Cdf, Series, hourly_counts
from repro.trace.columnar import FlowTable, active_table
from repro.trace.records import FlowRecord


def nonpreferred_requests_per_video(
    records: Union[Sequence[FlowRecord], FlowTable],
    report: PreferredDcReport,
    server_map: ServerMap,
) -> Dict[str, int]:
    """Per-video count of video flows served by non-preferred data centers.

    Only videos downloaded at least once from a non-preferred data center
    appear (the Figure 13 population), keyed in first-download order.
    """
    table = active_table(records)
    if table is not None:
        import numpy as np

        is_video, verdict = preference_masks(table, report, server_map)
        cols = table.columns()
        nonpref_idx = np.flatnonzero(is_video & (verdict == 0))
        per_code = np.bincount(
            cols.video_code[nonpref_idx], minlength=len(cols.video_ids)
        )
        # np.unique's return_index gives the first occurrence, so sorting
        # by it reproduces the spec's dict-insertion (first-download) order
        # — sorted() ties on equal counts break on that order downstream.
        seen_codes, first = np.unique(
            cols.video_code[nonpref_idx], return_index=True
        )
        order = np.argsort(first, kind="stable")
        return {
            str(cols.video_ids[code]): int(per_code[code])
            for code in seen_codes[order].tolist()
        }
    split = video_flow_preference(records, report, server_map)
    counts: Dict[str, int] = {}
    for flow in split[False]:
        counts[flow.video_id] = counts.get(flow.video_id, 0) + 1
    return counts


def nonpreferred_video_cdf(
    records: Union[Sequence[FlowRecord], FlowTable],
    report: PreferredDcReport,
    server_map: ServerMap,
) -> Cdf:
    """Figure 13: CDF of the per-video non-preferred request count.

    Raises:
        ValueError: If no video was ever served from non-preferred.
    """
    counts = nonpreferred_requests_per_video(records, report, server_map)
    if not counts:
        raise ValueError("no non-preferred video downloads")
    return Cdf(counts.values())


def exactly_once_fraction(counts: Dict[str, int]) -> float:
    """Fraction of Figure 13's videos downloaded exactly once from
    non-preferred data centers (the paper reports ~85 % for EU1-Campus).

    Raises:
        ValueError: With no videos.
    """
    if not counts:
        raise ValueError("no videos")
    return sum(1 for c in counts.values() if c == 1) / len(counts)


@dataclass
class HotVideoSeries:
    """Figure 14: one hot video's request time line.

    Attributes:
        video_id: The video.
        all_requests: Hour → total video-flow requests.
        nonpreferred_requests: Hour → requests served from non-preferred.
    """

    video_id: str
    all_requests: Series
    nonpreferred_requests: Series

    def peak_hour(self) -> int:
        """The hour with the most requests."""
        ys = self.all_requests.ys
        return int(self.all_requests.xs[ys.index(max(ys))])

    def spike_concentration(self, window_h: int = 24) -> float:
        """Share of all requests falling in the busiest 24-hour window.

        The paper's hot videos are "the video of the day" for exactly 24
        hours, so this should approach 1.
        """
        ys = self.all_requests.ys
        total = sum(ys)
        if total == 0:
            return 0.0
        best = 0.0
        for start in range(0, max(1, len(ys) - window_h + 1)):
            best = max(best, sum(ys[start : start + window_h]))
        return best / total


def top_nonpreferred_videos(
    records: Union[Sequence[FlowRecord], FlowTable],
    report: PreferredDcReport,
    server_map: ServerMap,
    num_hours: int,
    top_k: int = 4,
) -> List[HotVideoSeries]:
    """Figure 14: time lines of the top-k non-preferred-download videos.

    One grouped pass accumulates every top video's hourly counts (the old
    implementation rescanned all flows once per video).

    Raises:
        ValueError: If no video was ever served from non-preferred.
    """
    counts = nonpreferred_requests_per_video(records, report, server_map)
    if not counts:
        raise ValueError("no non-preferred video downloads")
    top = sorted(counts, key=lambda v: -counts[v])[:top_k]

    table = active_table(records)
    if table is not None:
        import numpy as np

        is_video, verdict = preference_masks(table, report, server_map)
        cols = table.columns()
        # Grouped histogram: one bincount over (video rank, hour) pairs.
        rank = np.full(len(cols.video_ids), -1, dtype=np.int64)
        rank[np.searchsorted(cols.video_ids, np.asarray(top))] = np.arange(len(top))
        flow_rank = rank[cols.video_code]
        in_window = (cols.hour >= 0) & (cols.hour < num_hours)
        sel = is_video & (flow_rank >= 0) & in_window

        def grouped(mask) -> "np.ndarray":
            keys = flow_rank[mask] * num_hours + cols.hour[mask]
            return np.bincount(keys, minlength=len(top) * num_hours).reshape(
                len(top), num_hours
            )

        totals = grouped(sel & (verdict != -1))
        nonprefs = grouped(sel & (verdict == 0))
        total_by_video = {v: totals[i].tolist() for i, v in enumerate(top)}
        nonpref_by_video = {v: nonprefs[i].tolist() for i, v in enumerate(top)}
    else:
        split = video_flow_preference(records, report, server_map)
        top_set = set(top)
        total_by_video = {v: [0] * num_hours for v in top}
        nonpref_by_video = {v: [0] * num_hours for v in top}
        for preferred, flows in ((True, split[True]), (False, split[False])):
            for f in flows:
                if f.video_id not in top_set:
                    continue
                hour = f.hour
                if 0 <= hour < num_hours:
                    total_by_video[f.video_id][hour] += 1
                    if not preferred:
                        nonpref_by_video[f.video_id][hour] += 1

    series: List[HotVideoSeries] = []
    for video_id in top:
        total_hours = total_by_video[video_id]
        nonpref_hours = nonpref_by_video[video_id]
        all_series = Series(label=f"{video_id} all")
        nonpref_series = Series(label=f"{video_id} non-preferred")
        for hour in range(num_hours):
            all_series.append(float(hour), float(total_hours[hour]))
            nonpref_series.append(float(hour), float(nonpref_hours[hour]))
        series.append(
            HotVideoSeries(
                video_id=video_id,
                all_requests=all_series,
                nonpreferred_requests=nonpref_series,
            )
        )
    return series


@dataclass
class ServerLoadReport:
    """Figure 15: per-server hourly load inside the preferred data center.

    Attributes:
        avg_per_hour: Hour → mean requests per active server.
        max_per_hour: Hour → busiest server's requests.
    """

    avg_per_hour: Series
    max_per_hour: Series

    def peak_ratio(self) -> float:
        """max(max) / mean(avg): how far the hottest server diverges.

        Raises:
            ValueError: On empty series.
        """
        if not self.avg_per_hour.ys or not self.max_per_hour.ys:
            raise ValueError("empty load series")
        busy_avgs = [y for y in self.avg_per_hour.ys if y > 0]
        if not busy_avgs:
            raise ValueError("no active hours")
        return max(self.max_per_hour.ys) / (sum(busy_avgs) / len(busy_avgs))


def preferred_server_load(
    records: Union[Sequence[FlowRecord], FlowTable],
    report: PreferredDcReport,
    server_map: ServerMap,
    num_hours: int,
) -> ServerLoadReport:
    """Figure 15: average and maximum per-server requests over time.

    Counts every flow (control or video) towards a server's request load,
    since the trace measures "requests served by each server (identified by
    its IP address)".
    """
    avg_series = Series(label=f"{report.dataset_name} avg")
    max_series = Series(label=f"{report.dataset_name} max")

    table = active_table(records)
    if table is not None:
        import numpy as np

        # verdict == 1 is exactly "dst_ip clustered into the preferred
        # data center" — the preferred_ips set of the spec path.
        _, verdict = preference_masks(table, report, server_map)
        cols = table.columns()
        _, dst_code = table.dst_codes()
        num_servers = int(dst_code.max()) + 1 if len(dst_code) else 0
        if num_servers:
            sel = (verdict == 1) & (cols.hour >= 0) & (cols.hour < num_hours)
            keys = cols.hour[sel] * num_servers + dst_code[sel]
            matrix = np.bincount(keys, minlength=num_hours * num_servers).reshape(
                num_hours, num_servers
            )
        else:
            matrix = np.zeros((num_hours, 1), dtype=np.int64)
        sums = matrix.sum(axis=1)
        active = (matrix > 0).sum(axis=1)
        peaks = matrix.max(axis=1)
        for hour in range(num_hours):
            if active[hour]:
                avg_series.append(float(hour), int(sums[hour]) / int(active[hour]))
                max_series.append(float(hour), float(int(peaks[hour])))
            else:
                avg_series.append(float(hour), 0.0)
                max_series.append(float(hour), 0.0)
        return ServerLoadReport(avg_per_hour=avg_series, max_per_hour=max_series)

    preferred_ips = {
        ip
        for ip in server_map.by_ip
        if server_map.by_ip[ip].cluster_id == report.preferred_id
    }
    per_hour_server: Dict[int, Dict[int, int]] = {}
    for record in records:
        if record.dst_ip not in preferred_ips:
            continue
        bucket = per_hour_server.setdefault(record.hour, {})
        bucket[record.dst_ip] = bucket.get(record.dst_ip, 0) + 1

    for hour in range(num_hours):
        bucket = per_hour_server.get(hour, {})
        if bucket:
            loads = list(bucket.values())
            avg_series.append(float(hour), sum(loads) / len(loads))
            max_series.append(float(hour), float(max(loads)))
        else:
            avg_series.append(float(hour), 0.0)
            max_series.append(float(hour), 0.0)
    return ServerLoadReport(avg_per_hour=avg_series, max_per_hour=max_series)


@dataclass
class HotServerReport:
    """Figure 16: hourly sessions at the server handling a hot video.

    Attributes:
        server_ip: The examined server.
        all_preferred: Hour → sessions whose flows all hit preferred.
        first_preferred_rest_not: Hour → sessions redirected away after a
            preferred first contact.
        others: Hour → every other pattern.
    """

    server_ip: int
    all_preferred: Series
    first_preferred_rest_not: Series
    others: Series

    def total_sessions(self) -> int:
        """Sessions across all three groups."""
        return int(
            sum(self.all_preferred.ys)
            + sum(self.first_preferred_rest_not.ys)
            + sum(self.others.ys)
        )


def hot_server_sessions(
    sessions: Sequence[Session],
    video_id: str,
    report: PreferredDcReport,
    server_map: ServerMap,
    num_hours: int,
) -> HotServerReport:
    """Figure 16: the load story of the server handling one hot video.

    The examined server is the preferred-data-center server receiving the
    most first-contacts for the video.

    Raises:
        ValueError: If the video never hits the preferred data center.
    """
    first_contact_counts: Dict[int, int] = {}
    for session in sessions:
        if session.video_id != video_id:
            continue
        ip = session.first_flow.dst_ip
        cluster = server_map.by_ip.get(ip)
        if cluster is not None and cluster.cluster_id == report.preferred_id:
            first_contact_counts[ip] = first_contact_counts.get(ip, 0) + 1
    if not first_contact_counts:
        raise ValueError(f"video {video_id} never lands on the preferred data center")
    server_ip = max(first_contact_counts, key=lambda ip: first_contact_counts[ip])

    def is_preferred(ip: int) -> Optional[bool]:
        cluster = server_map.by_ip.get(ip)
        if cluster is None:
            return None
        return cluster.cluster_id == report.preferred_id

    buckets: Dict[str, List[int]] = {"all_pref": [], "first_pref": [], "others": []}
    for session in sessions:
        if not any(f.dst_ip == server_ip for f in session.flows):
            continue
        verdicts = [is_preferred(f.dst_ip) for f in session.flows]
        if any(v is None for v in verdicts):
            buckets["others"].append(session.hour)
        elif all(verdicts):
            buckets["all_pref"].append(session.hour)
        elif verdicts[0] and not all(verdicts[1:]):
            buckets["first_pref"].append(session.hour)
        else:
            buckets["others"].append(session.hour)

    def to_series(label: str, hours: List[int]) -> Series:
        counts = hourly_counts(hours, num_hours)
        series = Series(label=label)
        for hour in range(num_hours):
            series.append(float(hour), float(counts[hour]))
        return series

    return HotServerReport(
        server_ip=server_ip,
        all_preferred=to_series("all preferred flows", buckets["all_pref"]),
        first_preferred_rest_not=to_series(
            "only the first flow is preferred", buckets["first_pref"]
        ),
        others=to_series("others", buckets["others"]),
    )
