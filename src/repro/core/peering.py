"""Peering-traffic analysis: what the trace means for the ISP's links.

The paper's motivation: "Such insights can aid ISPs in their capacity
planning decisions given that YouTube is a large and rapidly growing share
of Internet video traffic today."  This module turns a flow log plus whois
into the numbers a peering coordinator actually uses:

* per-origin-AS hourly ingress volume (which interconnect carries the
  bytes),
* the 95th-percentile rate per AS — the standard transit-billing figure,
* peak-hour ingress and the share that stays on-net (the EU2 situation:
  an in-ISP data center keeps ~40 % of YouTube bytes off the peering edge).

Everything here is computed from observables (flow records + whois), so it
runs unchanged on real traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.asn import AsRegistry
from repro.reporting.series import Series
from repro.reporting.tables import TextTable
from repro.trace.records import Dataset


@dataclass
class AsTraffic:
    """One origin AS's contribution to the vantage point's ingress.

    Attributes:
        asn: Origin AS number (0 for unattributable addresses).
        name: Registry name.
        hourly_bytes: Bytes received per trace hour.
    """

    asn: int
    name: str
    hourly_bytes: List[int]

    @property
    def total_bytes(self) -> int:
        """Total bytes over the window."""
        return sum(self.hourly_bytes)

    @property
    def peak_hour_bytes(self) -> int:
        """Busiest hour's byte count."""
        return max(self.hourly_bytes) if self.hourly_bytes else 0

    def mbps_series(self) -> Series:
        """Average ingress rate per hour, in Mbit/s."""
        series = Series(label=f"AS{self.asn} Mbps")
        for hour, volume in enumerate(self.hourly_bytes):
            series.append(float(hour), volume * 8.0 / 3600.0 / 1e6)
        return series

    def p95_mbps(self) -> float:
        """The 95th-percentile hourly rate in Mbit/s — the billing figure.

        Standard transit billing samples the rate, discards the top 5 % of
        samples, and bills the maximum of the rest; with hourly bins that
        is the 95th-percentile hour.

        Raises:
            ValueError: With no hours.
        """
        if not self.hourly_bytes:
            raise ValueError("no hours to bill")
        ordered = sorted(self.hourly_bytes)
        # Discard the top 5 % of samples; bill the max of the rest.
        index = max(0, math.ceil(0.95 * len(ordered)) - 1)
        return ordered[index] * 8.0 / 3600.0 / 1e6


@dataclass
class PeeringReport:
    """The vantage point's ingress, by origin AS.

    Attributes:
        dataset_name: Trace described.
        per_as: Traffic rows, byte-descending.
        num_hours: Window length in hours.
        on_net_bytes: Bytes originated inside the vantage point's own AS
            (traffic that never crosses the peering edge).
    """

    dataset_name: str
    per_as: List[AsTraffic] = field(default_factory=list)
    num_hours: int = 0
    on_net_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """All ingress bytes (on-net included)."""
        return sum(row.total_bytes for row in self.per_as)

    @property
    def on_net_fraction(self) -> float:
        """Share of bytes that stay inside the host AS."""
        total = self.total_bytes
        return self.on_net_bytes / total if total else 0.0

    def row(self, asn: int) -> AsTraffic:
        """Traffic row for one AS.

        Raises:
            KeyError: If the AS carried no traffic here.
        """
        for candidate in self.per_as:
            if candidate.asn == asn:
                return candidate
        raise KeyError(f"AS{asn} carried no traffic in {self.dataset_name}")

    def render(self, top: int = 6) -> str:
        """Text table of the biggest origin ASes."""
        table = TextTable(
            ["origin AS", "name", "GB", "share%", "peak-hour GB", "p95 Mbps"],
            title=f"PEERING INGRESS — {self.dataset_name}",
        )
        total = max(1, self.total_bytes)
        for row in self.per_as[:top]:
            table.add_row(
                f"AS{row.asn}" if row.asn else "(none)",
                row.name,
                f"{row.total_bytes / 1e9:.2f}",
                f"{100.0 * row.total_bytes / total:.1f}",
                f"{row.peak_hour_bytes / 1e9:.3f}",
                f"{row.p95_mbps():.1f}",
            )
        return table.render()


def analyze_peering(dataset: Dataset, registry: AsRegistry) -> PeeringReport:
    """Build the peering report for one trace.

    Args:
        dataset: The flow-level trace.
        registry: whois (IP → origin AS).

    Returns:
        The :class:`PeeringReport`, ASes byte-descending.
    """
    num_hours = max(1, dataset.num_hours)
    buckets: Dict[int, List[int]] = {}
    names: Dict[int, str] = {}
    for record in dataset:
        system = registry.whois(record.dst_ip)
        asn = system.asn if system is not None else 0
        if asn not in buckets:
            buckets[asn] = [0] * num_hours
            names[asn] = system.name if system is not None else "unattributed"
        hour = min(record.hour, num_hours - 1)
        buckets[asn][hour] += record.num_bytes

    rows = [
        AsTraffic(asn=asn, name=names[asn], hourly_bytes=hours)
        for asn, hours in buckets.items()
    ]
    rows.sort(key=lambda r: -r.total_bytes)
    on_net = 0
    host_asn = dataset.vantage.asn
    for row in rows:
        if row.asn == host_asn:
            on_net = row.total_bytes
    return PeeringReport(
        dataset_name=dataset.name,
        per_as=rows,
        num_hours=num_hours,
        on_net_bytes=on_net,
    )
