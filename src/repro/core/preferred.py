"""Preferred-data-center analysis (Section VI-B: Figures 7, 8).

"We observe that except for EU2, in each dataset one data center provides
more than 85% of the traffic.  We refer to this primary data center as the
preferred data center ... At EU2, two data centers provide more than 95% of
the data ... We label the data center with the smallest RTT in EU2 as the
preferred one."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.geo.coords import GeoPoint, haversine_km
from repro.geoloc.clustering import DataCenterCluster, ServerMap
from repro.reporting.series import Series
from repro.trace.columnar import group_sum_int64, use_numpy
from repro.trace.records import Dataset

#: A data center must carry at least this byte share to be considered when
#: applying the paper's smallest-RTT tie-break (the EU2 rule).
MAJOR_SHARE_THRESHOLD = 0.15

#: A single data center above this share is the preferred one outright.
DOMINANT_SHARE_THRESHOLD = 0.50


@dataclass
class DataCenterView:
    """One inferred data center as seen from one vantage point.

    Attributes:
        cluster: The underlying server cluster.
        num_bytes: Bytes the vantage point downloaded from it.
        num_flows: Flows to it.
        min_rtt_ms: Smallest measured RTT to any of its servers.
        distance_km: Great-circle distance from the vantage point to the
            cluster's *estimated* position (the analysis does not know the
            true one).
    """

    cluster: DataCenterCluster
    num_bytes: int = 0
    num_flows: int = 0
    min_rtt_ms: float = float("inf")
    distance_km: float = 0.0

    @property
    def cluster_id(self) -> str:
        """Cluster identifier."""
        return self.cluster.cluster_id


@dataclass
class PreferredDcReport:
    """The per-dataset data-center ranking and preferred choice.

    Attributes:
        dataset_name: Dataset the report describes.
        views: All data centers with traffic, byte-descending.
        preferred_id: The preferred data center's cluster id.
        total_bytes: All bytes across views.
    """

    dataset_name: str
    views: List[DataCenterView]
    preferred_id: str
    total_bytes: int

    def view(self, cluster_id: str) -> DataCenterView:
        """View for a cluster id.

        Raises:
            KeyError: If the cluster carried no traffic here.
        """
        for v in self.views:
            if v.cluster_id == cluster_id:
                return v
        raise KeyError(f"no traffic from {cluster_id!r} in {self.dataset_name}")

    @property
    def preferred(self) -> DataCenterView:
        """The preferred data center's view."""
        return self.view(self.preferred_id)

    def byte_share(self, cluster_id: str) -> float:
        """Fraction of bytes served by a data center."""
        if self.total_bytes == 0:
            return 0.0
        return self.view(cluster_id).num_bytes / self.total_bytes

    def is_preferred_ip(self, server_ip: int, server_map: ServerMap) -> bool:
        """Whether a server address belongs to the preferred data center."""
        cluster = server_map.by_ip.get(server_ip)
        return cluster is not None and cluster.cluster_id == self.preferred_id

    # ------------------------------------------------------------- figures

    def cumulative_by_rtt(self) -> Series:
        """Figure 7: cumulative byte fraction vs. data-center RTT."""
        return self._cumulative(key=lambda v: v.min_rtt_ms)

    def cumulative_by_distance(self) -> Series:
        """Figure 8: cumulative byte fraction vs. data-center distance."""
        return self._cumulative(key=lambda v: v.distance_km)

    def _cumulative(self, key: Callable[[DataCenterView], float]) -> Series:
        series = Series(label=self.dataset_name)
        acc = 0
        for view in sorted(self.views, key=key):
            acc += view.num_bytes
            series.append(key(view), acc / max(1, self.total_bytes))
        return series

    def closest_k_share(self, k: int) -> float:
        """Byte share of the k geographically closest data centers.

        The paper's Figure 8 observation: for US-Campus "the five closest
        data centers provide less than 2% of all the traffic".
        """
        closest = sorted(self.views, key=lambda v: v.distance_km)[:k]
        return sum(v.num_bytes for v in closest) / max(1, self.total_bytes)


def analyze_preferred(
    dataset: Dataset,
    server_map: ServerMap,
    rtts_ms: Mapping[int, float],
    focus_ips: Optional[Sequence[int]] = None,
    vantage_point: Optional[GeoPoint] = None,
) -> PreferredDcReport:
    """Build the per-dataset preferred-data-center report.

    Args:
        dataset: The dataset to analyse.
        server_map: CBG clustering over all server addresses.
        rtts_ms: Measured min RTT per server address (Figure 2 campaign).
        focus_ips: Optional Google-focus filter (Section IV); defaults to
            every clustered server.
        vantage_point: Vantage-point coordinates (the authors know where
            their probe PC sits); defaults to the dataset's city.

    Returns:
        The :class:`PreferredDcReport`.

    Raises:
        ValueError: If no traffic survives the filter.
    """
    if vantage_point is None:
        vantage_point = dataset.vantage.city.point
    keep = set(focus_ips) if focus_ips is not None else None

    views: Dict[str, DataCenterView] = {}
    total_bytes = 0
    if use_numpy():
        # Columnar kernel: collapse the per-record loop to per-distinct-
        # server aggregates (bincount / reduceat), then replay the tiny
        # per-server loop in first-occurrence order so view creation
        # order, byte totals, and min-RTTs match the spec exactly.
        import numpy as np

        cols = dataset.columnar().columns()
        dst, num_bytes = cols.dst_ip, cols.num_bytes
        if keep is not None:
            mask = np.isin(dst, np.fromiter(keep, np.int64, count=len(keep)))
            dst, num_bytes = dst[mask], num_bytes[mask]
        uniq, first_idx, inverse = np.unique(
            dst, return_index=True, return_inverse=True
        )
        flows_per_ip = np.bincount(inverse, minlength=len(uniq))
        bytes_per_ip = group_sum_int64(inverse, num_bytes, len(uniq))
        for j in np.argsort(first_idx, kind="stable").tolist():
            ip = int(uniq[j])
            cluster = server_map.by_ip.get(ip)
            if cluster is None:
                continue
            view = views.get(cluster.cluster_id)
            if view is None:
                view = DataCenterView(
                    cluster=cluster,
                    distance_km=haversine_km(vantage_point, cluster.estimate),
                )
                views[cluster.cluster_id] = view
            view.num_bytes += int(bytes_per_ip[j])
            view.num_flows += int(flows_per_ip[j])
            total_bytes += int(bytes_per_ip[j])
            rtt = rtts_ms.get(ip)
            if rtt is not None and rtt < view.min_rtt_ms:
                view.min_rtt_ms = rtt
    else:
        for record in dataset:
            if keep is not None and record.dst_ip not in keep:
                continue
            cluster = server_map.by_ip.get(record.dst_ip)
            if cluster is None:
                continue
            view = views.get(cluster.cluster_id)
            if view is None:
                view = DataCenterView(
                    cluster=cluster,
                    distance_km=haversine_km(vantage_point, cluster.estimate),
                )
                views[cluster.cluster_id] = view
            view.num_bytes += record.num_bytes
            view.num_flows += 1
            total_bytes += record.num_bytes
            rtt = rtts_ms.get(record.dst_ip)
            if rtt is not None and rtt < view.min_rtt_ms:
                view.min_rtt_ms = rtt
    if not views:
        raise ValueError(f"no clustered traffic in {dataset.name}")

    ordered = sorted(views.values(), key=lambda v: -v.num_bytes)
    preferred_id = _pick_preferred(ordered, total_bytes)
    return PreferredDcReport(
        dataset_name=dataset.name,
        views=ordered,
        preferred_id=preferred_id,
        total_bytes=total_bytes,
    )


def _pick_preferred(ordered: Sequence[DataCenterView], total_bytes: int) -> str:
    """Apply the paper's preferred-data-center rule.

    Among the *major* byte providers (those above
    :data:`MAJOR_SHARE_THRESHOLD`), the smallest-RTT one is preferred.
    With a single dominant provider this is just "the data center with
    more than 85 % of the traffic"; with two majors — the EU2 situation —
    it implements "we label the data center with the smallest RTT in EU2
    as the preferred one".
    """
    majors = [
        v for v in ordered if v.num_bytes / max(1, total_bytes) >= MAJOR_SHARE_THRESHOLD
    ]
    if not majors:
        return ordered[0].cluster_id
    return min(majors, key=lambda v: v.min_rtt_ms).cluster_id
