"""Non-preferred data-center accesses (Sections VI-B/C: Figures 9, 10).

Two mechanisms can land a video flow on a non-preferred data center: the
DNS answer itself, or an application-layer redirect after a correct DNS
answer.  The session flow patterns disambiguate them:

* a single-flow session to a non-preferred data center, or a session whose
  *first* flow already targets one → the DNS did it;
* a session whose first flow targets the preferred data center but whose
  later flows do not → application-layer redirection did it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.flows import CONTROL_FLOW_THRESHOLD_BYTES, is_video_flow
from repro.core.preferred import PreferredDcReport
from repro.core.sessions import Session
from repro.geoloc.clustering import ServerMap
from repro.reporting.series import Cdf, hourly_fraction
from repro.trace.columnar import FlowTable, active_table, as_records
from repro.trace.records import FlowRecord


class SessionPattern(enum.Enum):
    """Figure 10(b)'s four two-flow patterns (first flow, second flow)."""

    PREFERRED_PREFERRED = "preferred, preferred"
    PREFERRED_NONPREFERRED = "preferred, non-preferred"
    NONPREFERRED_PREFERRED = "non-preferred, preferred"
    NONPREFERRED_NONPREFERRED = "non-preferred, non-preferred"


def _preferred_test(
    report: PreferredDcReport, server_map: ServerMap
) -> Callable[[int], Optional[bool]]:
    preferred_id = report.preferred_id

    def test(server_ip: int) -> Optional[bool]:
        cluster = server_map.by_ip.get(server_ip)
        if cluster is None:
            return None
        return cluster.cluster_id == preferred_id

    return test


def preference_masks(
    table: FlowTable, report: PreferredDcReport, server_map: ServerMap
) -> Tuple["object", "object"]:
    """Columnar flow classification shared by the Figure 9-16 kernels.

    Returns:
        ``(is_video, verdict)`` — per-flow boolean video mask (the size
        heuristic) and per-flow int8 verdict: ``1`` preferred, ``0``
        non-preferred, ``-1`` unclustered.  The verdict is resolved once
        per distinct server address, not once per flow.
    """
    import numpy as np

    cols = table.columns()
    dst_unique, dst_code = table.dst_codes()
    preferred_id = report.preferred_id
    by_ip = server_map.by_ip
    per_ip = np.empty(len(dst_unique), dtype=np.int8)
    for i, ip in enumerate(dst_unique.tolist()):
        cluster = by_ip.get(ip)
        if cluster is None:
            per_ip[i] = -1
        else:
            per_ip[i] = 1 if cluster.cluster_id == preferred_id else 0
    is_video = cols.num_bytes >= CONTROL_FLOW_THRESHOLD_BYTES
    return is_video, per_ip[dst_code]


def video_flow_preference(
    records: Union[Iterable[FlowRecord], FlowTable],
    report: PreferredDcReport,
    server_map: ServerMap,
) -> Dict[bool, List[FlowRecord]]:
    """Split video flows by whether they hit the preferred data center.

    Returns:
        ``{True: flows to preferred, False: flows to non-preferred}``;
        flows to unclustered servers are dropped.
    """
    table = active_table(records)
    if table is not None:
        import numpy as np

        is_video, verdict = preference_masks(table, report, server_map)
        recs = table.records
        return {
            True: [recs[i] for i in np.flatnonzero(is_video & (verdict == 1)).tolist()],
            False: [recs[i] for i in np.flatnonzero(is_video & (verdict == 0)).tolist()],
        }
    test = _preferred_test(report, server_map)
    split: Dict[bool, List[FlowRecord]] = {True: [], False: []}
    for record in as_records(records):
        if not is_video_flow(record):
            continue
        verdict = test(record.dst_ip)
        if verdict is None:
            continue
        split[verdict].append(record)
    return split


def hourly_nonpreferred_cdf(
    records: Union[Sequence[FlowRecord], FlowTable],
    report: PreferredDcReport,
    server_map: ServerMap,
    num_hours: int,
    min_flows_per_hour: int = 5,
) -> Cdf:
    """Figure 9: CDF of the hourly fraction of video flows to non-preferred.

    Args:
        records: The dataset's (focus-filtered) flow records.
        report: Preferred-data-center report.
        server_map: CBG clustering.
        num_hours: Hours in the collection window.
        min_flows_per_hour: Hours with fewer video flows are skipped.

    Raises:
        ValueError: If no hour has enough flows.
    """
    table = active_table(records)
    if table is not None:
        is_video, verdict = preference_masks(table, report, server_map)
        hour = table.columns().hour
        fractions = hourly_fraction(
            hour[is_video & (verdict == 0)],
            hour[is_video & (verdict != -1)],
            num_hours,
            min_denominator=min_flows_per_hour,
        )
    else:
        split = video_flow_preference(records, report, server_map)
        all_hours = [f.hour for f in split[True]] + [f.hour for f in split[False]]
        fractions = hourly_fraction(
            (f.hour for f in split[False]), all_hours, num_hours,
            min_denominator=min_flows_per_hour,
        )
    if not fractions:
        raise ValueError("no hour has enough video flows")
    return Cdf(fractions.values())


def nonpreferred_fraction(
    records: Union[Sequence[FlowRecord], FlowTable],
    report: PreferredDcReport,
    server_map: ServerMap,
) -> float:
    """Overall fraction of video flows served by non-preferred data centers.

    Raises:
        ValueError: With no classifiable video flows.
    """
    table = active_table(records)
    if table is not None:
        is_video, verdict = preference_masks(table, report, server_map)
        nonpref = int((is_video & (verdict == 0)).sum())
        total = nonpref + int((is_video & (verdict == 1)).sum())
    else:
        split = video_flow_preference(records, report, server_map)
        nonpref = len(split[False])
        total = len(split[True]) + nonpref
    if total == 0:
        raise ValueError("no classifiable video flows")
    return nonpref / total


@dataclass(frozen=True)
class OneFlowBreakdown:
    """Figure 10(a): single-flow sessions by destination preference.

    Attributes:
        dataset_name: Dataset the breakdown describes.
        total_sessions: All sessions (any flow count).
        preferred: Single-flow sessions to the preferred data center.
        nonpreferred: Single-flow sessions to a non-preferred one.
    """

    dataset_name: str
    total_sessions: int
    preferred: int
    nonpreferred: int

    @property
    def preferred_fraction(self) -> float:
        """Share of all sessions: one flow, preferred."""
        return self.preferred / max(1, self.total_sessions)

    @property
    def nonpreferred_fraction(self) -> float:
        """Share of all sessions: one flow, non-preferred."""
        return self.nonpreferred / max(1, self.total_sessions)

    @property
    def one_flow_fraction(self) -> float:
        """Share of all sessions that involve exactly one flow."""
        return (self.preferred + self.nonpreferred) / max(1, self.total_sessions)


def one_flow_breakdown(
    sessions: Sequence[Session],
    report: PreferredDcReport,
    server_map: ServerMap,
) -> OneFlowBreakdown:
    """Compute Figure 10(a)'s bar for one dataset."""
    test = _preferred_test(report, server_map)
    preferred = 0
    nonpreferred = 0
    for session in sessions:
        if session.num_flows != 1:
            continue
        verdict = test(session.first_flow.dst_ip)
        if verdict is None:
            continue
        if verdict:
            preferred += 1
        else:
            nonpreferred += 1
    return OneFlowBreakdown(
        dataset_name=report.dataset_name,
        total_sessions=len(sessions),
        preferred=preferred,
        nonpreferred=nonpreferred,
    )


def two_flow_breakdown(
    sessions: Sequence[Session],
    report: PreferredDcReport,
    server_map: ServerMap,
) -> Dict[SessionPattern, float]:
    """Figure 10(b): the four patterns among two-flow sessions.

    Returns:
        Mapping pattern → fraction of *two-flow* sessions (sums to 1 over
        classifiable sessions).

    Raises:
        ValueError: With no classifiable two-flow sessions.
    """
    test = _preferred_test(report, server_map)
    counts: Dict[SessionPattern, int] = {p: 0 for p in SessionPattern}
    total = 0
    for session in sessions:
        if session.num_flows != 2:
            continue
        first = test(session.flows[0].dst_ip)
        second = test(session.flows[1].dst_ip)
        if first is None or second is None:
            continue
        if first and second:
            pattern = SessionPattern.PREFERRED_PREFERRED
        elif first and not second:
            pattern = SessionPattern.PREFERRED_NONPREFERRED
        elif not first and second:
            pattern = SessionPattern.NONPREFERRED_PREFERRED
        else:
            pattern = SessionPattern.NONPREFERRED_NONPREFERRED
        counts[pattern] += 1
        total += 1
    if total == 0:
        raise ValueError("no classifiable two-flow sessions")
    return {pattern: counts[pattern] / total for pattern in SessionPattern}


@dataclass(frozen=True)
class MultiFlowBreakdown:
    """Sessions with more than two flows, by redirect pattern (Section VI-C).

    "We have also considered sessions with more than 2 flows.  They account
    for 5.18-10% of the total number of sessions, and they show similar
    trends to 2-flow sessions."

    Attributes:
        dataset_name: Dataset described.
        total_sessions: All sessions of the dataset.
        sessions: Sessions with ≥3 flows that could be classified.
        all_preferred: Every flow hits the preferred data center.
        first_preferred_rest_mixed: First flow preferred, at least one later
            flow non-preferred (the EU1 redirection signature).
        first_nonpreferred: The first flow already non-preferred (DNS).
    """

    dataset_name: str
    total_sessions: int
    sessions: int
    all_preferred: int
    first_preferred_rest_mixed: int
    first_nonpreferred: int

    @property
    def share_of_all_sessions(self) -> float:
        """Multi-flow sessions as a share of all sessions."""
        return self.sessions / max(1, self.total_sessions)

    def fraction(self, count: int) -> float:
        """A pattern count as a fraction of classified multi-flow sessions."""
        return count / max(1, self.sessions)


def multi_flow_breakdown(
    sessions: Sequence[Session],
    report: PreferredDcReport,
    server_map: ServerMap,
    min_flows: int = 3,
) -> MultiFlowBreakdown:
    """Classify sessions with ``min_flows`` or more flows.

    Raises:
        ValueError: For ``min_flows < 2``.
    """
    if min_flows < 2:
        raise ValueError("min_flows must be >= 2")
    test = _preferred_test(report, server_map)
    counted = all_pref = first_pref_mixed = first_nonpref = 0
    for session in sessions:
        if session.num_flows < min_flows:
            continue
        verdicts = [test(f.dst_ip) for f in session.flows]
        if any(v is None for v in verdicts):
            continue
        counted += 1
        if verdicts[0] is False:
            first_nonpref += 1
        elif all(verdicts):
            all_pref += 1
        else:
            first_pref_mixed += 1
    return MultiFlowBreakdown(
        dataset_name=report.dataset_name,
        total_sessions=len(sessions),
        sessions=counted,
        all_preferred=all_pref,
        first_preferred_rest_mixed=first_pref_mixed,
        first_nonpreferred=first_nonpref,
    )


#: Blind per-session verdict labels (shared vocabulary with the simulator
#: ground truth in :mod:`repro.sim.engine` — same strings by design, so
#: the attribution scorer's confusion matrix needs no translation).
VERDICT_PREFERRED = "preferred"
VERDICT_DNS = "dns"
VERDICT_REDIRECTION = "redirection"


def session_verdicts(
    sessions: Sequence[Session],
    report: PreferredDcReport,
    server_map: ServerMap,
) -> List[Optional[str]]:
    """Per-session blind attribution verdicts (the Figure 10 logic).

    For each session, using only what the measurement pipeline can see
    (cluster labels and the inferred preferred data center):

    * first flow to a non-preferred cluster → :data:`VERDICT_DNS`
      (the DNS answer itself sent the session away);
    * first flow preferred but a later flow non-preferred →
      :data:`VERDICT_REDIRECTION` (application-layer redirect);
    * every flow preferred → :data:`VERDICT_PREFERRED`;
    * ``None`` when the verdict is undecidable — the first flow's server
      is unclustered, or all later flows needed for the preferred verdict
      are unclustered.

    Returns:
        One verdict per session, parallel to ``sessions``.
    """
    test = _preferred_test(report, server_map)
    verdicts: List[Optional[str]] = []
    for session in sessions:
        first = test(session.first_flow.dst_ip)
        if first is None:
            verdicts.append(None)
            continue
        if first is False:
            verdicts.append(VERDICT_DNS)
            continue
        later = [test(flow.dst_ip) for flow in session.flows[1:]]
        if any(v is False for v in later):
            verdicts.append(VERDICT_REDIRECTION)
        elif any(v is None for v in later):
            verdicts.append(None)
        else:
            verdicts.append(VERDICT_PREFERRED)
    return verdicts


def dns_vs_redirection_shares(
    sessions: Sequence[Session],
    report: PreferredDcReport,
    server_map: ServerMap,
) -> Dict[str, float]:
    """Attribute non-preferred *video* flows to DNS vs. redirection.

    A session's video flows to non-preferred data centers are DNS-caused
    when the session's first flow already went to a non-preferred data
    center, redirection-caused when the first flow went to the preferred
    one.  Returns the share of each cause (sums to 1 when any
    non-preferred video flow exists).
    """
    test = _preferred_test(report, server_map)
    dns = 0
    redirection = 0
    for session in sessions:
        first = test(session.first_flow.dst_ip)
        if first is None:
            continue
        for flow in session.flows:
            if not is_video_flow(flow):
                continue
            verdict = test(flow.dst_ip)
            if verdict is not False:
                continue
            if first is False:
                dns += 1
            else:
                redirection += 1
    total = dns + redirection
    if total == 0:
        return {"dns": 0.0, "redirection": 0.0}
    return {"dns": dns / total, "redirection": redirection / total}
