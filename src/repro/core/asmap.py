"""AS-level breakdown of server traffic (Section IV, Table II).

"We employ the whois tool to map the server IP address to the corresponding
AS" — here the whois tool is the world's :class:`~repro.net.asn.AsRegistry`.
The four Table II groups: the Google AS (15169), the YouTube-EU AS (43515),
servers inside the *same AS* the dataset was collected in (the EU2 in-ISP
data center), and everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.net.asn import AsRegistry, GOOGLE_ASN, YOUTUBE_EU_ASN
from repro.reporting.tables import TextTable, format_fraction
from repro.trace.records import Dataset

#: Table II column groups, in the paper's order.
AS_GROUPS = ("google", "youtube_eu", "same_as", "others")


@dataclass(frozen=True)
class AsBreakdown:
    """One Table II row: per-group server and byte shares.

    Attributes:
        name: Dataset name.
        server_fractions: Group → fraction of distinct servers.
        byte_fractions: Group → fraction of bytes.
    """

    name: str
    server_fractions: Dict[str, float]
    byte_fractions: Dict[str, float]

    def share(self, group: str) -> Tuple[float, float]:
        """(server fraction, byte fraction) for a group.

        Raises:
            KeyError: For an unknown group name.
        """
        if group not in AS_GROUPS:
            raise KeyError(f"unknown AS group: {group!r}")
        return self.server_fractions[group], self.byte_fractions[group]


def _group_of(asn: int, vantage_asn: int) -> str:
    if asn == vantage_asn:
        # The paper's "Same AS" column takes precedence: the EU2 data
        # center lives inside the host ISP's AS, not in Google's.
        return "same_as"
    if asn == GOOGLE_ASN:
        return "google"
    if asn == YOUTUBE_EU_ASN:
        return "youtube_eu"
    return "others"


def breakdown_by_as(dataset: Dataset, registry: AsRegistry) -> AsBreakdown:
    """Compute the Table II row for one dataset.

    Raises:
        ValueError: On an empty dataset.
    """
    if len(dataset) == 0:
        raise ValueError(f"dataset {dataset.name} is empty")
    vantage_asn = dataset.vantage.asn
    server_groups: Dict[int, str] = {}
    for ip in dataset.server_ips:
        asn = registry.asn_of(ip)
        server_groups[ip] = _group_of(asn, vantage_asn) if asn is not None else "others"

    server_counts = {g: 0 for g in AS_GROUPS}
    for group in server_groups.values():
        server_counts[group] += 1
    byte_counts = {g: 0 for g in AS_GROUPS}
    for record in dataset:
        byte_counts[server_groups[record.dst_ip]] += record.num_bytes

    num_servers = len(server_groups)
    total_bytes = max(1, sum(byte_counts.values()))
    return AsBreakdown(
        name=dataset.name,
        server_fractions={g: server_counts[g] / num_servers for g in AS_GROUPS},
        byte_fractions={g: byte_counts[g] / total_bytes for g in AS_GROUPS},
    )


def google_focus_ips(dataset: Dataset, registry: AsRegistry) -> List[int]:
    """The server addresses the rest of the analysis focuses on.

    Section IV: "we only focus on accesses to video servers located in the
    Google AS.  For the EU2 dataset, we include accesses to the data center
    located inside the corresponding ISP."
    """
    vantage_asn = dataset.vantage.asn
    keep: List[int] = []
    for ip in dataset.server_ips:
        asn = registry.asn_of(ip)
        if asn == GOOGLE_ASN or (asn is not None and asn == vantage_asn):
            keep.append(ip)
    return keep


def render_table2(breakdowns: Iterable[AsBreakdown]) -> str:
    """Render Table II."""
    table = TextTable(
        [
            "Dataset",
            "Google srv%", "Google byte%",
            "YT-EU srv%", "YT-EU byte%",
            "SameAS srv%", "SameAS byte%",
            "Other srv%", "Other byte%",
        ],
        title="TABLE II — PERCENTAGE OF SERVERS AND BYTES RECEIVED PER AS",
    )
    for b in breakdowns:
        cells: List[str] = [b.name]
        for group in AS_GROUPS:
            srv, byt = b.share(group)
            cells.append(format_fraction(srv))
            cells.append(format_fraction(byt, 2))
        table.add_row(*cells)
    return table.render()
