"""Trace characterisation: the related-work lens on our datasets.

The paper's Section VIII contrasts itself with the characterisation studies
(Gill et al., Zink et al.): per-video popularity, flow sizes, day/night
volume.  Those statistics double as sanity checks on the generated
workload, so the module computes them from any flow log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.flows import is_video_flow
from repro.reporting.series import Cdf, Series, hourly_counts
from repro.trace.records import Dataset, FlowRecord


@dataclass(frozen=True)
class TraceProfile:
    """Headline characterisation of one trace.

    Attributes:
        name: Dataset name.
        distinct_videos: Videos requested at least once.
        singleton_video_fraction: Share of videos requested exactly once.
        top_percentile_share: Share of video-flow requests captured by the
            top 1 % of videos.
        median_flow_bytes: Median video-flow size.
        peak_to_trough: Peak hourly flow count over the minimum non-zero one.
    """

    name: str
    distinct_videos: int
    singleton_video_fraction: float
    top_percentile_share: float
    median_flow_bytes: float
    peak_to_trough: float


def video_popularity(records: Sequence[FlowRecord]) -> Dict[str, int]:
    """Video-flow request count per VideoID."""
    counts: Dict[str, int] = {}
    for record in records:
        if is_video_flow(record):
            counts[record.video_id] = counts.get(record.video_id, 0) + 1
    return counts


def popularity_cdf(records: Sequence[FlowRecord]) -> Cdf:
    """CDF of per-video request counts.

    Raises:
        ValueError: With no video flows.
    """
    counts = video_popularity(records)
    if not counts:
        raise ValueError("no video flows to characterise")
    return Cdf(counts.values())


def client_volume_cdf(records: Sequence[FlowRecord]) -> Cdf:
    """CDF of per-client downloaded bytes (the heavy-user skew).

    Raises:
        ValueError: With no flows.
    """
    volumes: Dict[int, int] = {}
    for record in records:
        volumes[record.src_ip] = volumes.get(record.src_ip, 0) + record.num_bytes
    if not volumes:
        raise ValueError("no flows to characterise")
    return Cdf(volumes.values())


def hourly_volume_series(dataset: Dataset) -> Series:
    """Flows per hour over the collection window (the day/night pattern)."""
    counts = hourly_counts((r.hour for r in dataset.records), dataset.num_hours)
    series = Series(label=f"{dataset.name} flows/h")
    for hour, count in enumerate(counts):
        series.append(float(hour), float(count))
    return series


def top_share(counts: Dict[str, int], percentile: float = 0.01) -> float:
    """Share of requests captured by the top ``percentile`` of videos.

    Raises:
        ValueError: With no videos or a bad percentile.
    """
    if not counts:
        raise ValueError("no videos")
    if not 0.0 < percentile <= 1.0:
        raise ValueError("percentile must be in (0, 1]")
    ordered = sorted(counts.values(), reverse=True)
    k = max(1, int(len(ordered) * percentile))
    return sum(ordered[:k]) / sum(ordered)


def characterize(dataset: Dataset) -> TraceProfile:
    """Compute the headline profile of one trace.

    Raises:
        ValueError: On an empty or video-free trace.
    """
    counts = video_popularity(dataset.records)
    if not counts:
        raise ValueError(f"no video flows in {dataset.name}")
    singletons = sum(1 for c in counts.values() if c == 1)
    video_sizes = Cdf(r.num_bytes for r in dataset.records if is_video_flow(r))
    hourly = [
        c for c in hourly_counts((r.hour for r in dataset.records), dataset.num_hours) if c > 0
    ]
    peak_to_trough = max(hourly) / min(hourly) if hourly else 0.0
    return TraceProfile(
        name=dataset.name,
        distinct_videos=len(counts),
        singleton_video_fraction=singletons / len(counts),
        top_percentile_share=top_share(counts, 0.01),
        median_flow_bytes=video_sizes.median,
        peak_to_trough=peak_to_trough,
    )
