"""Methodology validation: inference vs. ground truth.

A unique payoff of reproducing a measurement study on a *simulated* world:
the ground truth exists, so the methodology's error is measurable.  Did the
CBG-plus-clustering-plus-session pipeline infer the right preferred data
center?  How far off is the inferred non-preferred fraction from the true
one?  The authors could never ask these questions of their own techniques;
here every one has a number.

This module deliberately crosses the measurement/ground-truth firewall —
that is its entire purpose — and nothing in :mod:`repro.core` depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.pipeline import StudyPipeline
from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class ValidationRow:
    """Inference-vs-truth comparison for one dataset.

    Attributes:
        dataset_name: Dataset validated.
        inferred_preferred_cluster: The analysis pipeline's preferred
            data-center cluster.
        true_preferred_dc: The policy's actual top-ranked data center.
        preferred_matches: Whether the inferred cluster is dominated by the
            true preferred data center's servers.
        inferred_nonpreferred_fraction: The Figure 9 number the analysis
            reports.
        true_nonpreferred_fraction: Fraction of requests the simulator
            actually served from non-preferred data centers.
    """

    dataset_name: str
    inferred_preferred_cluster: str
    true_preferred_dc: str
    preferred_matches: bool
    inferred_nonpreferred_fraction: float
    true_nonpreferred_fraction: float

    @property
    def nonpreferred_error(self) -> float:
        """Absolute inference error on the non-preferred fraction."""
        return abs(
            self.inferred_nonpreferred_fraction - self.true_nonpreferred_fraction
        )


def _true_preferred_dc(result: SimulationResult) -> str:
    world = result.world
    resolver_id = f"{world.spec.name}/{world.spec.subnets[0].name}"
    try:
        return world.system.policy.ranking_for(resolver_id)[0]
    except KeyError:
        return max(result.served_dc_counts, key=result.served_dc_counts.get)


def _cluster_majority_dc(
    pipeline: StudyPipeline, result: SimulationResult, cluster_id: str
) -> Optional[str]:
    """The ground-truth data center owning most of a cluster's servers."""
    counts: Dict[str, int] = {}
    for cluster in pipeline.server_map.clusters:
        if cluster.cluster_id != cluster_id:
            continue
        for ip in cluster.server_ips:
            dc = result.world.system.directory.dc_of_server(ip)
            if dc is not None:
                counts[dc.dc_id] = counts.get(dc.dc_id, 0) + 1
    if not counts:
        return None
    return max(counts, key=counts.get)


def validate_dataset(
    pipeline: StudyPipeline, result: SimulationResult, name: str
) -> ValidationRow:
    """Validate the pipeline's inferences for one dataset.

    Args:
        pipeline: The analysis pipeline (inference side).
        result: The simulation result (ground-truth side).
        name: Dataset name.

    Returns:
        The :class:`ValidationRow`.
    """
    report = pipeline.preferred_reports[name]
    true_preferred = _true_preferred_dc(result)
    majority = _cluster_majority_dc(pipeline, result, report.preferred_id)

    # Ground-truth non-preferred fraction: requests served by any data
    # center other than the policy's top choice.
    served_preferred = result.served_dc_counts.get(true_preferred, 0)
    true_fraction = 1.0 - served_preferred / max(1, result.requests)

    return ValidationRow(
        dataset_name=name,
        inferred_preferred_cluster=report.preferred_id,
        true_preferred_dc=true_preferred,
        preferred_matches=(majority == true_preferred),
        inferred_nonpreferred_fraction=pipeline.nonpreferred_fraction(name),
        true_nonpreferred_fraction=true_fraction,
    )


def validate_study(
    pipeline: StudyPipeline, results: Dict[str, SimulationResult]
) -> Dict[str, ValidationRow]:
    """Validate every dataset of a study.

    Returns:
        Mapping dataset name → its validation row.
    """
    return {
        name: validate_dataset(pipeline, results[name], name)
        for name in pipeline.dataset_names
        if name in results
    }


def render_validation(rows: Dict[str, ValidationRow]) -> str:
    """Text summary of the methodology's measured accuracy."""
    lines = ["METHODOLOGY VALIDATION — inference vs. ground truth"]
    for name, row in rows.items():
        verdict = "MATCH" if row.preferred_matches else "MISMATCH"
        lines.append(
            f"{name:12s} preferred: {row.inferred_preferred_cluster} "
            f"vs {row.true_preferred_dc} [{verdict}]  "
            f"non-preferred: inferred {row.inferred_nonpreferred_fraction:.3f} "
            f"vs true {row.true_nonpreferred_fraction:.3f} "
            f"(err {row.nonpreferred_error:.3f})"
        )
    return "\n".join(lines)
