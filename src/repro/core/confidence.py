"""Bootstrap confidence intervals for trace-derived fractions.

A week-long trace is one sample of a stochastic system, and headline
numbers like "11.7 % of video flows hit non-preferred data centers" deserve
error bars.  This module provides a small, dependency-free bootstrap over
per-unit statistics (flows, sessions, hours) so analyses can report
intervals alongside point estimates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap interval for one statistic.

    Attributes:
        point: The statistic on the full sample.
        low: Lower bound.
        high: Upper bound.
        level: Coverage level (e.g. 0.95).
        resamples: Bootstrap resamples drawn.
    """

    point: float
    low: float
    high: float
    level: float
    resamples: int

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether a value lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.point:.4f} [{self.low:.4f}, {self.high:.4f}] @{self.level:.0%}"


def bootstrap_interval(
    items: Sequence[T],
    statistic: Callable[[Sequence[T]], float],
    level: float = 0.95,
    resamples: int = 500,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap interval for an arbitrary statistic.

    Args:
        items: The sample units (flows, sessions, hourly values, ...).
        statistic: Function from a sample to the statistic of interest.
        level: Coverage level in (0, 1).
        resamples: Number of bootstrap resamples.
        seed: RNG seed.

    Returns:
        The :class:`ConfidenceInterval`.

    Raises:
        ValueError: On an empty sample or bad parameters.
    """
    if not items:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    if resamples < 10:
        raise ValueError("need at least 10 resamples")
    rng = random.Random(seed)
    n = len(items)
    point = statistic(items)
    values: List[float] = []
    for _ in range(resamples):
        resample = [items[rng.randrange(n)] for _ in range(n)]
        values.append(statistic(resample))
    values.sort()
    alpha = (1.0 - level) / 2.0
    low_idx = max(0, int(alpha * resamples) - 1)
    high_idx = min(resamples - 1, int((1.0 - alpha) * resamples))
    return ConfidenceInterval(
        point=point,
        low=values[low_idx],
        high=values[high_idx],
        level=level,
        resamples=resamples,
    )


def fraction_interval(
    flags: Sequence[bool],
    level: float = 0.95,
    resamples: int = 500,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap interval for a simple fraction of boolean flags.

    Convenience wrapper for the most common case: "what share of units
    have property X" — e.g. flags = "this video flow hit a non-preferred
    data center" over all video flows.
    """
    return bootstrap_interval(
        flags,
        lambda sample: sum(1 for f in sample if f) / len(sample),
        level=level,
        resamples=resamples,
        seed=seed,
    )
