"""End-to-end study pipeline.

Orchestrates the paper's full methodology over a set of collected datasets:

1. Table I traffic summaries (raw traces).
2. whois / Table II AS breakdown, then the Google-focus filter (Section IV).
3. Active RTT campaigns from every vantage point (Figure 2).
4. CBG calibration and server→data-center clustering over the union of all
   datasets' servers (Section V; Figure 3, Table III).
5. Per-dataset session building and preferred-data-center analysis
   (Figures 4-10).
6. The cause analyses: DNS load balancing (Figure 11), subnet divergence
   (Figure 12), hot spots and cold content (Figures 13-16).

Every step is a cached property/method, so benchmarks can time one step
while sharing its prerequisites — the way the authors analysed one set of
traces many times.

The pipeline's inputs are measurement-shaped only: flow datasets, a whois
registry, the physical ability to ping an IP.  Simulator ground truth never
enters.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, List, Mapping, Optional

from repro import obs
from repro.core import asmap, flows, geography, hotspots, loadbalance, nonpreferred
from repro.core import peering as peering_mod
from repro.core import preferred as preferred_mod
from repro.core import sessions as sessions_mod
from repro.core import subnets as subnets_mod
from repro.core.summary import DatasetSummary, summarize
from repro.exec.executor import ParallelExecutor
from repro.faults import report as degradation
from repro.geo.landmarks import LandmarkSet, generate_landmarks
from repro.geoloc.cbg import CbgGeolocator
from repro.geoloc.clustering import ServerMap, cluster_servers
from repro.geoloc.probing import CampaignJob, RttProber, run_campaigns
from repro.net.latency import Site
from repro.reporting.series import Cdf, Series
from repro.reporting.timing import phase_timer
from repro.sim.engine import SimulationResult
from repro.sim.seeding import derive_seed
from repro.trace.columnar import FlowTable
from repro.trace.records import Dataset, FlowRecord


@dataclass
class StudyResults:
    """A bundle of everything the pipeline regenerates (for examples)."""

    summaries: Dict[str, DatasetSummary]
    as_breakdowns: Dict[str, asmap.AsBreakdown]
    table3_rows: List[geography.ContinentRow]
    preferred_reports: Dict[str, preferred_mod.PreferredDcReport]
    nonpreferred_fractions: Dict[str, float]
    one_flow: Dict[str, nonpreferred.OneFlowBreakdown]
    two_flow: Dict[str, Dict[nonpreferred.SessionPattern, float]]


class StudyPipeline:
    """The paper's analysis pipeline over a set of simulated datasets.

    Args:
        results: Mapping dataset name → simulation result (dataset + the
            physical world behind it, for active measurements).
        landmark_count: Landmark budget for CBG; ``None`` uses the paper's
            full 215-node set.  Tests pass a smaller number.
        probes_per_measurement: Pings per RTT measurement.
        seed: Measurement-noise seed (independent of the worlds' seeds).
        session_gap_s: The session gap T (the paper settles on 1 s).
        executor: Fan-out strategy for the per-vantage RTT campaigns;
            ``None`` reads ``REPRO_EXECUTOR``.  Results are backend-
            independent (each campaign owns a derived-seed prober).
    """

    def __init__(
        self,
        results: Mapping[str, SimulationResult],
        landmark_count: Optional[int] = None,
        probes_per_measurement: int = 6,
        seed: int = 11,
        session_gap_s: float = sessions_mod.DEFAULT_GAP_S,
        executor: Optional[ParallelExecutor] = None,
    ):
        if not results:
            raise ValueError("pipeline needs at least one dataset")
        self._results = dict(results)
        self._landmark_count = landmark_count
        self._probes = probes_per_measurement
        self._seed = seed
        self._gap_s = session_gap_s
        self._executor = executor

    # ------------------------------------------------------------ plumbing

    @property
    def dataset_names(self) -> List[str]:
        """Dataset names in insertion order."""
        return list(self._results)

    def dataset(self, name: str) -> Dataset:
        """One dataset's trace."""
        return self._results[name].dataset

    @cached_property
    def _site_of_ip(self) -> Callable[[int], Optional[Site]]:
        """Physical reachability: IP → pingable site, across all worlds."""
        worlds = [r.world for r in self._results.values()]

        def site_of_ip(ip: int) -> Optional[Site]:
            for world in worlds:
                site = world.site_of_server_ip(ip)
                if site is not None:
                    return site
            return None

        return site_of_ip

    def site_of_ip(self, ip: int) -> Optional[Site]:
        """Public probing hook: the pingable site behind a server address."""
        return self._site_of_ip(ip)

    @cached_property
    def _latency(self):
        # All worlds share one physical internet (same latency seed); any
        # world's model measures it.
        return next(iter(self._results.values())).world.latency

    def _prober(self, label: str) -> RttProber:
        return RttProber(
            self._latency,
            probes=self._probes,
            seed=derive_seed(self._seed, "prober", label),
        )

    # --------------------------------------------------------- T1, T2, focus

    @cached_property
    def summaries(self) -> Dict[str, DatasetSummary]:
        """Table I rows."""
        return {name: summarize(r.dataset) for name, r in self._results.items()}

    @cached_property
    def as_breakdowns(self) -> Dict[str, asmap.AsBreakdown]:
        """Table II rows."""
        return {
            name: asmap.breakdown_by_as(r.dataset, r.world.registry)
            for name, r in self._results.items()
        }

    @cached_property
    def focus_ips(self) -> Dict[str, List[int]]:
        """Per-dataset Google-focus server lists (Section IV)."""
        return {
            name: asmap.google_focus_ips(r.dataset, r.world.registry)
            for name, r in self._results.items()
        }

    @cached_property
    def focus_records(self) -> Dict[str, List[FlowRecord]]:
        """Per-dataset flow records restricted to the focus servers."""
        out: Dict[str, List[FlowRecord]] = {}
        for name, result in self._results.items():
            keep = set(self.focus_ips[name])
            out[name] = [r for r in result.dataset.records if r.dst_ip in keep]
        return out

    @cached_property
    def focus_tables(self) -> Dict[str, FlowTable]:
        """Columnar views over :attr:`focus_records` (one per dataset).

        The tables wrap the same record lists — they iterate identically
        under the pure-Python kernels — and materialise their numpy
        columns lazily, the first time a ``REPRO_KERNELS=numpy`` analysis
        touches them.  Every kernel-backed analysis method below hands
        these (not the raw lists) to the core modules, so the columnar
        work is done once per dataset, not once per figure.
        """
        return {name: FlowTable(records) for name, records in self.focus_records.items()}

    # ------------------------------------------------------------------- F2

    @cached_property
    def rtt_campaigns(self) -> Dict[str, Dict[int, float]]:
        """Figure 2: per-dataset server RTT campaigns.

        One campaign per vantage point, fanned out over the executor.
        Each job carries its own derived-seed prober and a pre-resolved
        target map, so it measures exactly what the serial path would:
        every reachable server of its dataset, in sorted-address order.
        """
        site_of_ip = self._site_of_ip
        jobs: List[CampaignJob] = []
        for name, result in self._results.items():
            dataset = result.dataset
            targets: Dict[object, Site] = {}
            for ip in dataset.server_ips:
                site = site_of_ip(ip)
                if site is not None:
                    targets[ip] = site
            jobs.append(
                CampaignJob(
                    label=f"campaign/{name}",
                    latency=self._latency,
                    origin=dataset.vantage.probe_site,
                    targets=targets,
                    probes=self._probes,
                    seed=derive_seed(self._seed, "prober", f"campaign/{name}"),
                )
            )
        with obs.span("pipeline/rtt_campaigns", campaigns=len(jobs)):
            measured = run_campaigns(jobs, executor=self._executor)
        degradation.stage_completed("pipeline/rtt_campaigns")
        return dict(zip(self._results, measured))

    def rtt_cdf(self, name: str) -> Cdf:
        """One Figure 2 curve."""
        return geography.rtt_cdf(self.rtt_campaigns[name])

    # ------------------------------------------------------- CBG (F3, T3)

    @cached_property
    def landmarks(self) -> LandmarkSet:
        """The CBG landmark population."""
        full = generate_landmarks(seed=derive_seed(self._seed, "landmarks"))
        if self._landmark_count is not None and self._landmark_count < len(full):
            return full.subsample(self._landmark_count, seed=self._seed)
        return full

    @cached_property
    def geolocator(self) -> CbgGeolocator:
        """The calibrated CBG instance."""
        return CbgGeolocator(self.landmarks, self._prober("cbg"))

    @cached_property
    def server_map(self) -> ServerMap:
        """CBG clustering over the union of all datasets' focus servers."""
        union: List[int] = sorted(
            {ip for ips in self.focus_ips.values() for ip in ips}
        )
        site_of_ip = self._site_of_ip

        def geolocate(ip: int):
            site = site_of_ip(ip)
            if site is None:
                raise LookupError(f"cannot reach server {ip} for probing")
            return self.geolocator.geolocate_target(site)

        with obs.span("pipeline/server_map", servers=len(union)):
            server_map = cluster_servers(union, geolocate)
        degradation.stage_completed("pipeline/server_map")
        return server_map

    @cached_property
    def fig3_cdfs(self) -> Dict[str, Cdf]:
        """Figure 3: confidence-radius CDFs (US vs Europe)."""
        return geography.confidence_radius_cdfs(self.server_map)

    @cached_property
    def table3_rows(self) -> List[geography.ContinentRow]:
        """Table III rows."""
        return geography.continent_table(
            [r.dataset for r in self._results.values()],
            self.server_map,
            self.focus_ips,
        )

    # ------------------------------------------------------- F4, F5, F6

    def flow_size_cdf(self, name: str) -> Cdf:
        """One Figure 4 curve."""
        return flows.flow_size_cdf(self.dataset(name).columnar())

    def gap_sensitivity(self, name: str) -> Dict[float, Dict[str, float]]:
        """Figure 5: flows-per-session vs. the gap T."""
        with phase_timer("analysis/gap_sweep"):
            return sessions_mod.gap_sensitivity(self.focus_tables[name])

    @cached_property
    def sessions(self) -> Dict[str, List[sessions_mod.Session]]:
        """Per-dataset video sessions at the configured gap."""
        with phase_timer("analysis/sessions"):
            built = {
                name: sessions_mod.build_sessions(self.focus_tables[name], self._gap_s)
                for name in self._results
            }
        degradation.stage_completed("pipeline/sessions")
        return built

    def session_histogram(self, name: str) -> Dict[str, float]:
        """One Figure 6 bar group."""
        return sessions_mod.flows_per_session_histogram(self.sessions[name])

    # ------------------------------------------------------- F7, F8

    @cached_property
    def preferred_reports(self) -> Dict[str, preferred_mod.PreferredDcReport]:
        """Per-dataset preferred-data-center reports."""
        with phase_timer("analysis/preferred"):
            reports: Dict[str, preferred_mod.PreferredDcReport] = {}
            for name, result in self._results.items():
                reports[name] = preferred_mod.analyze_preferred(
                    result.dataset,
                    self.server_map,
                    self.rtt_campaigns[name],
                    focus_ips=self.focus_ips[name],
                )
        degradation.stage_completed("pipeline/preferred")
        return reports

    # ------------------------------------------------------- F9, F10

    def fig9_cdf(self, name: str, min_flows_per_hour: int = 5) -> Cdf:
        """One Figure 9 curve."""
        return nonpreferred.hourly_nonpreferred_cdf(
            self.focus_tables[name],
            self.preferred_reports[name],
            self.server_map,
            self.dataset(name).num_hours,
            min_flows_per_hour=min_flows_per_hour,
        )

    def nonpreferred_fraction(self, name: str) -> float:
        """Overall non-preferred video-flow share for one dataset."""
        return nonpreferred.nonpreferred_fraction(
            self.focus_tables[name], self.preferred_reports[name], self.server_map
        )

    def one_flow_breakdown(self, name: str) -> nonpreferred.OneFlowBreakdown:
        """One Figure 10(a) bar."""
        return nonpreferred.one_flow_breakdown(
            self.sessions[name], self.preferred_reports[name], self.server_map
        )

    def two_flow_breakdown(self, name: str) -> Dict[nonpreferred.SessionPattern, float]:
        """One Figure 10(b) bar."""
        return nonpreferred.two_flow_breakdown(
            self.sessions[name], self.preferred_reports[name], self.server_map
        )

    def dns_vs_redirection(self, name: str) -> Dict[str, float]:
        """Cause shares of non-preferred video flows (Section VI-C)."""
        return nonpreferred.dns_vs_redirection_shares(
            self.sessions[name], self.preferred_reports[name], self.server_map
        )

    def session_verdicts(self, name: str) -> List[Optional[str]]:
        """Blind per-session attribution verdicts for one dataset.

        Parallel to :attr:`sessions` ``[name]``; what the ground-truth
        scorer (:mod:`repro.eval.attribution`) grades.  Uses measurement
        data only — simulator ground truth never enters the pipeline.
        """
        return nonpreferred.session_verdicts(
            self.sessions[name], self.preferred_reports[name], self.server_map
        )

    def multi_flow_breakdown(
        self, name: str, min_flows: int = 3
    ) -> nonpreferred.MultiFlowBreakdown:
        """Sessions with more than two flows (Section VI-C's closing note)."""
        return nonpreferred.multi_flow_breakdown(
            self.sessions[name],
            self.preferred_reports[name],
            self.server_map,
            min_flows=min_flows,
        )

    def peering(self, name: str) -> peering_mod.PeeringReport:
        """Peering-traffic breakdown for one dataset (capacity planning)."""
        result = self._results[name]
        return peering_mod.analyze_peering(result.dataset, result.world.registry)

    # ---------------------------------------------------- F11, F12

    def load_balance(self, name: str) -> loadbalance.LoadBalanceReport:
        """One dataset's Figure 11 panels."""
        return loadbalance.analyze_load_balance(
            self.focus_tables[name],
            self.preferred_reports[name],
            self.server_map,
            self.dataset(name).num_hours,
        )

    def subnet_shares(self, name: str) -> List[subnets_mod.SubnetShare]:
        """One dataset's Figure 12 bars."""
        return subnets_mod.subnet_shares(
            self.dataset(name),
            self.preferred_reports[name],
            self.server_map,
            records=self.focus_records[name],
        )

    # ------------------------------------------------- F13, F14, F15, F16

    def fig13_cdf(self, name: str) -> Cdf:
        """One Figure 13 curve."""
        with phase_timer("analysis/hotspots"):
            return hotspots.nonpreferred_video_cdf(
                self.focus_tables[name], self.preferred_reports[name], self.server_map
            )

    def hot_videos(self, name: str, top_k: int = 4) -> List[hotspots.HotVideoSeries]:
        """Figure 14's hot-video time lines."""
        with phase_timer("analysis/hotspots"):
            return hotspots.top_nonpreferred_videos(
                self.focus_tables[name],
                self.preferred_reports[name],
                self.server_map,
                self.dataset(name).num_hours,
                top_k=top_k,
            )

    def server_load(self, name: str) -> hotspots.ServerLoadReport:
        """Figure 15's load panels."""
        with phase_timer("analysis/hotspots"):
            return hotspots.preferred_server_load(
                self.focus_tables[name],
                self.preferred_reports[name],
                self.server_map,
                self.dataset(name).num_hours,
            )

    def hot_server(self, name: str, video_id: Optional[str] = None) -> hotspots.HotServerReport:
        """Figure 16: the hot video's server, with session-pattern split.

        Args:
            name: Dataset name.
            video_id: The video to follow; defaults to the dataset's top
                non-preferred video ("video1" in the paper).
        """
        if video_id is None:
            video_id = self.hot_videos(name, top_k=1)[0].video_id
        return hotspots.hot_server_sessions(
            self.sessions[name],
            video_id,
            self.preferred_reports[name],
            self.server_map,
            self.dataset(name).num_hours,
        )

    # ---------------------------------------------------------------- bundle

    def run(self) -> StudyResults:
        """Compute the headline results for every dataset."""
        return StudyResults(
            summaries=self.summaries,
            as_breakdowns=self.as_breakdowns,
            table3_rows=self.table3_rows,
            preferred_reports=self.preferred_reports,
            nonpreferred_fractions={
                name: self.nonpreferred_fraction(name) for name in self._results
            },
            one_flow={name: self.one_flow_breakdown(name) for name in self._results},
            two_flow={name: self.two_flow_breakdown(name) for name in self._results},
        )
