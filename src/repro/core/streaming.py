"""Online hot-spot and load-balance detectors over sealed windows.

The batch analyses in :mod:`repro.core.hotspots` and
:mod:`repro.core.loadbalance` need the whole trace (Figures 11, 13-16);
these detectors are their incremental siblings for the streaming path:
they fold each sealed :class:`~repro.stream.events.StreamWindow` into
per-entity running state and raise events *as the stream progresses*.

* :class:`HotSpotDetector` flags "video of the day" spikes — a window
  whose per-video flow count jumps well above that video's EWMA baseline
  (the Section VII-C overload precondition for application-layer
  redirection).
* :class:`LoadBalanceDetector` watches how concentrated each window's
  bytes are on its single busiest server; sustained low concentration is
  the DNS-level load-spreading signature of Section VII-A.

Both are diagnostics layered on the stream — they never touch the study
tables, so the byte-parity guarantee is unaffected.  Memory is bounded
by distinct videos / windows, never by the flow count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.trace.columnar import group_sum_int64, use_numpy

if TYPE_CHECKING:  # import-time cycle: repro.stream imports this module
    from repro.stream.events import StreamWindow


@dataclass(frozen=True)
class HotSpotEvent:
    """One detected per-video request spike.

    Attributes:
        window_index: Window the spike happened in.
        video_id: The spiking video.
        flows: Its flow count in that window.
        baseline: Its EWMA flow count before the window.
    """

    window_index: int
    video_id: str
    flows: int
    baseline: float


class HotSpotDetector:
    """Flags windows where one video's demand jumps off its baseline.

    A video spikes when its window flow count reaches ``min_flows`` and
    exceeds ``spike_factor`` times its EWMA baseline (videos seen for the
    first time only set their baseline — a debut is not a spike).

    Args:
        min_flows: Absolute per-window floor below which nothing counts.
        spike_factor: Multiple of the baseline that constitutes a spike.
        ewma_alpha: Baseline smoothing factor in (0, 1].

    Attributes:
        events: Every spike detected so far, in detection order.
    """

    def __init__(
        self,
        min_flows: int = 16,
        spike_factor: float = 4.0,
        ewma_alpha: float = 0.3,
    ):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if spike_factor <= 1.0:
            raise ValueError("spike_factor must exceed 1")
        self._min_flows = min_flows
        self._spike_factor = spike_factor
        self._alpha = ewma_alpha
        self._baseline: Dict[str, float] = {}
        self.events: List[HotSpotEvent] = []

    def observe_window(self, window: StreamWindow) -> List[HotSpotEvent]:
        """Fold one sealed window in; return the spikes it triggered."""
        counts = _video_counts(window)
        fresh: List[HotSpotEvent] = []
        for video_id in sorted(counts):
            count = counts[video_id]
            baseline = self._baseline.get(video_id)
            if (
                baseline is not None
                and count >= self._min_flows
                and count >= self._spike_factor * baseline
            ):
                fresh.append(
                    HotSpotEvent(
                        window_index=window.index,
                        video_id=video_id,
                        flows=count,
                        baseline=baseline,
                    )
                )
            if baseline is None:
                self._baseline[video_id] = float(count)
            else:
                self._baseline[video_id] = (
                    self._alpha * count + (1.0 - self._alpha) * baseline
                )
        self.events.extend(fresh)
        return fresh


def _video_counts(window: StreamWindow) -> Dict[str, int]:
    """Per-video flow counts for one window."""
    if len(window) == 0:
        return {}
    if use_numpy():
        import numpy as np

        cols = window.table.columns()
        per_code = np.bincount(cols.video_code, minlength=len(cols.video_ids))
        return {
            str(video_id): int(count)
            for video_id, count in zip(cols.video_ids.tolist(), per_code.tolist())
            if count
        }
    counts: Dict[str, int] = {}
    for record in window.records:
        counts[record.video_id] = counts.get(record.video_id, 0) + 1
    return counts


@dataclass(frozen=True)
class LoadBalanceSample:
    """One window's byte-concentration measurement.

    Attributes:
        window_index: The window.
        top_share: Byte share of the window's single busiest server.
        num_servers: Distinct servers active in the window.
    """

    window_index: int
    top_share: float
    num_servers: int


class LoadBalanceDetector:
    """Tracks per-window byte concentration on the busiest server.

    A window is *spread* when its busiest server carries less than
    ``spread_threshold`` of its bytes — many servers sharing load, the
    adaptive DNS-balancing signature.  Empty windows are skipped.

    Args:
        spread_threshold: Top-server share below which a window counts
            as spread.

    Attributes:
        samples: One :class:`LoadBalanceSample` per non-empty window.
        spread_windows: Windows classified as spread so far.
    """

    def __init__(self, spread_threshold: float = 0.5):
        if not 0.0 < spread_threshold <= 1.0:
            raise ValueError("spread_threshold must be in (0, 1]")
        self._threshold = spread_threshold
        self.samples: List[LoadBalanceSample] = []
        self.spread_windows = 0

    def observe_window(self, window: StreamWindow) -> None:
        """Fold one sealed window in."""
        if len(window) == 0:
            return
        top_bytes, total_bytes, num_servers = _top_server_bytes(window)
        share = top_bytes / total_bytes if total_bytes else 0.0
        self.samples.append(
            LoadBalanceSample(
                window_index=window.index,
                top_share=share,
                num_servers=num_servers,
            )
        )
        if share < self._threshold:
            self.spread_windows += 1

    @property
    def spread_fraction(self) -> float:
        """Fraction of non-empty windows classified as spread."""
        if not self.samples:
            return 0.0
        return self.spread_windows / len(self.samples)


def _top_server_bytes(window: StreamWindow) -> Tuple[int, int, int]:
    """(busiest server's bytes, total bytes, distinct servers) for a window."""
    if use_numpy():
        import numpy as np

        cols = window.table.columns()
        uniq, inverse = np.unique(cols.dst_ip, return_inverse=True)
        per_server = group_sum_int64(inverse, cols.num_bytes, len(uniq))
        return int(per_server.max()), int(cols.num_bytes.sum()), len(uniq)
    per_server: Dict[int, int] = {}
    total = 0
    for record in window.records:
        per_server[record.dst_ip] = per_server.get(record.dst_ip, 0) + record.num_bytes
        total += record.num_bytes
    return max(per_server.values()), total, len(per_server)
