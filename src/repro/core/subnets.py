"""Per-subnet non-preferred access shares (Section VII-B, Figure 12).

"Each set of bars corresponds to an internal subnet at US-Campus.  The bars
... show the fraction of accesses to non-preferred data centers, and the
fraction of all accesses, which may be attributed to the subnet.  Net-3
shows a clear bias: though this subnet only accounts for around 4% of the
total video flows ... it accounts for almost 50% of all the flows served by
non-preferred data centers."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.nonpreferred import video_flow_preference
from repro.core.preferred import PreferredDcReport
from repro.geoloc.clustering import ServerMap
from repro.trace.records import Dataset, FlowRecord


@dataclass(frozen=True)
class SubnetShare:
    """One Figure 12 bar pair.

    Attributes:
        subnet_name: Internal subnet label.
        all_share: The subnet's share of all video flows.
        nonpreferred_share: Its share of the non-preferred video flows.
    """

    subnet_name: str
    all_share: float
    nonpreferred_share: float

    @property
    def bias(self) -> float:
        """How over-represented the subnet is among non-preferred flows."""
        if self.all_share == 0:
            return 0.0
        return self.nonpreferred_share / self.all_share


def subnet_shares(
    dataset: Dataset,
    report: PreferredDcReport,
    server_map: ServerMap,
    records: Optional[Sequence[FlowRecord]] = None,
) -> List[SubnetShare]:
    """Compute Figure 12's bars for a dataset.

    Args:
        dataset: The dataset (its subnet plan attributes client addresses).
        report: Preferred-data-center report.
        server_map: CBG clustering.
        records: Flow records to analyse (defaults to the dataset's own;
            pass the focus-filtered list to match the paper).

    Returns:
        One :class:`SubnetShare` per subnet, in the vantage point's order.

    Raises:
        ValueError: With no classifiable video flows.
    """
    if records is None:
        records = dataset.records
    split = video_flow_preference(records, report, server_map)
    all_flows = split[True] + split[False]
    if not all_flows:
        raise ValueError("no classifiable video flows")
    nonpref_flows = split[False]

    def count_by_subnet(flows: Sequence[FlowRecord]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for flow in flows:
            subnet = dataset.vantage.subnet_of(flow.src_ip)
            if subnet is None:
                continue
            counts[subnet.name] = counts.get(subnet.name, 0) + 1
        return counts

    all_counts = count_by_subnet(all_flows)
    nonpref_counts = count_by_subnet(nonpref_flows)
    total_all = max(1, sum(all_counts.values()))
    total_nonpref = max(1, sum(nonpref_counts.values()))

    shares: List[SubnetShare] = []
    for subnet in dataset.vantage.subnets:
        shares.append(
            SubnetShare(
                subnet_name=subnet.name,
                all_share=all_counts.get(subnet.name, 0) / total_all,
                nonpreferred_share=nonpref_counts.get(subnet.name, 0) / total_nonpref,
            )
        )
    return shares


def most_biased_subnet(shares: Sequence[SubnetShare]) -> SubnetShare:
    """The subnet most over-represented among non-preferred flows.

    Raises:
        ValueError: With no subnets.
    """
    if not shares:
        raise ValueError("no subnets")
    return max(shares, key=lambda s: s.bias)
