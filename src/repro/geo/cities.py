"""World city registry.

Cities serve three roles in the reproduction:

* anchors for the 33 YouTube data centers the paper finds (Section V);
* anchors for the five vantage points (Section III-B);
* the vocabulary the server-to-data-center clustering step uses when it
  groups geolocated server IPs "located in the same city" (Section V).

Coordinates are real; they only need to be accurate to a few kilometres
because the latency model and CBG operate at tens-of-kilometres resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.regions import Continent, continent_of_country


@dataclass(frozen=True)
class City:
    """A named city with coordinates.

    Attributes:
        name: Unique city name (``"Amsterdam"``).
        country: ISO-3166 alpha-2 country code.
        point: City-centre coordinates.
    """

    name: str
    country: str
    point: GeoPoint

    @property
    def continent(self) -> Continent:
        """Continent the city belongs to."""
        return continent_of_country(self.country)


# (name, country, lat, lon) — the working set of cities.  The first block
# hosts data centers; the second hosts vantage points and probing anchors.
_CITY_ROWS: Tuple[Tuple[str, str, float, float], ...] = (
    # --- United States (13 data-center anchors) ---
    ("Mountain View", "US", 37.386, -122.084),
    ("Los Angeles", "US", 34.052, -118.244),
    ("Seattle", "US", 47.606, -122.332),
    ("Denver", "US", 39.739, -104.990),
    ("Dallas", "US", 32.777, -96.797),
    ("Houston", "US", 29.760, -95.370),
    ("Chicago", "US", 41.878, -87.630),
    ("Atlanta", "US", 33.749, -84.388),
    ("Miami", "US", 25.762, -80.192),
    ("Ashburn", "US", 39.044, -77.487),
    ("New York", "US", 40.713, -74.006),
    ("Boston", "US", 42.360, -71.059),
    ("Kansas City", "US", 39.100, -94.578),
    # --- Europe (14 data-center anchors) ---
    ("Amsterdam", "NL", 52.370, 4.895),
    ("Frankfurt", "DE", 50.110, 8.682),
    ("London", "GB", 51.507, -0.128),
    ("Paris", "FR", 48.857, 2.352),
    ("Madrid", "ES", 40.417, -3.704),
    ("Milan", "IT", 45.464, 9.190),
    ("Stockholm", "SE", 59.329, 18.069),
    ("Dublin", "IE", 53.349, -6.260),
    ("Brussels", "BE", 50.850, 4.352),
    ("Zurich", "CH", 47.377, 8.541),
    ("Vienna", "AT", 48.208, 16.374),
    ("Munich", "DE", 48.135, 11.582),
    ("Hamburg", "DE", 53.551, 9.994),
    ("Warsaw", "PL", 52.230, 21.012),
    # --- Rest of world (6 data-center anchors) ---
    ("Tokyo", "JP", 35.677, 139.650),
    ("Singapore", "SG", 1.352, 103.820),
    ("Hong Kong", "HK", 22.319, 114.170),
    ("Sydney", "AU", -33.869, 151.209),
    ("Sao Paulo", "BR", -23.551, -46.633),
    ("Mumbai", "IN", 19.076, 72.878),
    # --- Vantage points and probing anchors ---
    ("West Lafayette", "US", 40.426, -86.908),
    ("Turin", "IT", 45.070, 7.687),
    ("Rome", "IT", 41.903, 12.496),
    ("Lisbon", "PT", 38.722, -9.139),
    ("Helsinki", "FI", 60.170, 24.938),
    ("Oslo", "NO", 59.913, 10.752),
    ("Copenhagen", "DK", 55.676, 12.568),
    ("Prague", "CZ", 50.075, 14.438),
    ("Budapest", "HU", 47.498, 19.040),
    ("Athens", "GR", 37.984, 23.727),
    ("Bucharest", "RO", 44.427, 26.103),
    ("Toronto", "CA", 43.651, -79.347),
    ("Montreal", "CA", 45.509, -73.554),
    ("Vancouver", "CA", 49.283, -123.121),
    ("Mexico City", "MX", 19.433, -99.133),
    ("Buenos Aires", "AR", -34.604, -58.382),
    ("Santiago", "CL", -33.449, -70.669),
    ("Bogota", "CO", 4.711, -74.072),
    ("Seoul", "KR", 37.566, 126.978),
    ("Taipei", "TW", 25.033, 121.565),
    ("Tel Aviv", "IL", 32.085, 34.782),
    ("Bangkok", "TH", 13.756, 100.502),
    ("Beijing", "CN", 39.904, 116.407),
    ("Auckland", "NZ", -36.848, 174.763),
    ("Cape Town", "ZA", -33.925, 18.424),
    ("Nairobi", "KE", -1.292, 36.822),
    ("Phoenix", "US", 33.448, -112.074),
    ("Minneapolis", "US", 44.978, -93.265),
    ("Salt Lake City", "US", 40.761, -111.891),
    ("Portland", "US", 45.505, -122.675),
    ("Philadelphia", "US", 39.953, -75.164),
    ("Detroit", "US", 42.331, -83.046),
    ("St. Louis", "US", 38.627, -90.199),
    ("Pittsburgh", "US", 40.441, -79.996),
    ("Raleigh", "US", 35.780, -78.639),
    ("Austin", "US", 30.267, -97.743),
    ("San Diego", "US", 32.716, -117.161),
    ("Lyon", "FR", 45.764, 4.836),
    ("Barcelona", "ES", 41.385, 2.173),
    ("Berlin", "DE", 52.520, 13.405),
    ("Manchester", "GB", 53.483, -2.244),
    ("Edinburgh", "GB", 55.953, -3.188),
    ("Gothenburg", "SE", 57.709, 11.975),
    ("Rotterdam", "NL", 51.924, 4.478),
    ("Geneva", "CH", 46.204, 6.143),
    ("Krakow", "PL", 50.065, 19.945),
    ("Porto", "PT", 41.158, -8.629),
    ("Osaka", "JP", 34.694, 135.502),
    ("Melbourne", "AU", -37.814, 144.963),
    ("Rio de Janeiro", "BR", -22.907, -43.173),
    ("Delhi", "IN", 28.704, 77.102),
)


class WorldAtlas:
    """Lookup table over the known cities.

    The atlas is immutable after construction and is shared across the
    project via :func:`default_atlas`.
    """

    def __init__(self, cities: Iterable[City]):
        self._cities: List[City] = list(cities)
        self._by_name: Dict[str, City] = {}
        for city in self._cities:
            if city.name in self._by_name:
                raise ValueError(f"duplicate city name: {city.name!r}")
            self._by_name[city.name] = city

    def __len__(self) -> int:
        return len(self._cities)

    def __iter__(self):
        return iter(self._cities)

    def get(self, name: str) -> City:
        """City by exact name.

        Raises:
            KeyError: If the city is not in the atlas.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown city: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def cities_in(self, continent: Continent) -> List[City]:
        """All cities on a given continent."""
        return [c for c in self._cities if c.continent is continent]

    def nearest(self, point: GeoPoint, max_km: Optional[float] = None) -> Optional[City]:
        """The city nearest to ``point``.

        Args:
            point: Query location.
            max_km: If given, return ``None`` when the nearest city is
                farther than this.

        Returns:
            The nearest :class:`City`, or ``None`` if ``max_km`` excludes it.
        """
        best: Optional[City] = None
        best_km = float("inf")
        for city in self._cities:
            d = haversine_km(point, city.point)
            if d < best_km:
                best, best_km = city, d
        if max_km is not None and best_km > max_km:
            return None
        return best


_DEFAULT: Optional[WorldAtlas] = None


def default_atlas() -> WorldAtlas:
    """The shared world atlas (built lazily, cached)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = WorldAtlas(
            City(name, country, GeoPoint(lat, lon)) for name, country, lat, lon in _CITY_ROWS
        )
    return _DEFAULT
