"""Geographic coordinates and great-circle math.

All distances are in kilometres and all angles in degrees unless noted.
The functions here are deliberately dependency-light; :func:`haversine_km_many`
is the only numpy-vectorised entry point and is what the CBG geolocator uses
on its hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Mean Earth radius used throughout the project (IUGG mean radius).
EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A point on the Earth's surface.

    Attributes:
        lat: Latitude in degrees, in ``[-90, 90]``.
        lon: Longitude in degrees, in ``[-180, 180]``.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat!r}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon!r}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)

    def __str__(self) -> str:
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"{abs(self.lat):.3f}{ns},{abs(self.lon):.3f}{ew}"


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres."""
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlat = lat2 - lat1
    dlon = math.radians(b.lon - a.lon)
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def haversine_km_many(origin: GeoPoint, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Great-circle distance from ``origin`` to many points at once.

    Args:
        origin: The common origin point.
        lats: Array of latitudes in degrees.
        lons: Array of longitudes in degrees (same shape as ``lats``).

    Returns:
        Array of distances in kilometres, same shape as the inputs.
    """
    lat1 = math.radians(origin.lat)
    lat2 = np.radians(lats)
    dlat = lat2 - lat1
    dlon = np.radians(lons - origin.lon)
    h = np.sin(dlat / 2.0) ** 2 + math.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(h)))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in degrees ``[0, 360)``."""
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlon = math.radians(b.lon - a.lon)
    x = math.sin(dlon) * math.cos(lat2)
    y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(dlon)
    return math.degrees(math.atan2(x, y)) % 360.0


def destination_point(origin: GeoPoint, bearing_deg: float, distance_km: float) -> GeoPoint:
    """The point ``distance_km`` away from ``origin`` along ``bearing_deg``.

    Used to scatter synthetic landmarks and servers around anchor cities, and
    by the CBG region sampler to lay candidate grids.
    """
    delta = distance_km / EARTH_RADIUS_KM
    theta = math.radians(bearing_deg)
    lat1 = math.radians(origin.lat)
    lon1 = math.radians(origin.lon)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(delta) + math.cos(lat1) * math.sin(delta) * math.cos(theta)
    )
    lon2 = lon1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(lat1),
        math.cos(delta) - math.sin(lat1) * math.sin(lat2),
    )
    lon2 = (lon2 + 3.0 * math.pi) % (2.0 * math.pi) - math.pi
    return GeoPoint(math.degrees(lat2), math.degrees(lon2))
