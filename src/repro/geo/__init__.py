"""Geography substrate: coordinates, spherical math, world cities, landmarks.

This package provides the physical-world model that everything else builds
on.  Distances drive the latency model (:mod:`repro.net.latency`), city
locations anchor data centers (:mod:`repro.cdn.datacenter`), and the landmark
set feeds constraint-based geolocation (:mod:`repro.geoloc.cbg`).
"""

from repro.geo.coords import (
    EARTH_RADIUS_KM,
    GeoPoint,
    destination_point,
    haversine_km,
    haversine_km_many,
    initial_bearing_deg,
)
from repro.geo.regions import Continent, continent_of_country
from repro.geo.cities import City, WorldAtlas, default_atlas
from repro.geo.landmarks import Landmark, LandmarkSet, generate_landmarks

__all__ = [
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "destination_point",
    "haversine_km",
    "haversine_km_many",
    "initial_bearing_deg",
    "Continent",
    "continent_of_country",
    "City",
    "WorldAtlas",
    "default_atlas",
    "Landmark",
    "LandmarkSet",
    "generate_landmarks",
]
