"""Synthetic PlanetLab-like landmark set.

The paper runs CBG with 215 PlanetLab landmarks: 97 in North America, 82 in
Europe, 24 in Asia, 8 in South America, 3 in Oceania and 1 in Africa
(Section V).  We regenerate a landmark population with the same continental
mix by scattering nodes around the atlas's cities — PlanetLab nodes live at
universities in metro areas, so "city plus a few tens of km of jitter" is the
right spatial texture.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.geo.cities import WorldAtlas, default_atlas
from repro.geo.coords import GeoPoint, destination_point
from repro.geo.regions import Continent

#: The paper's continental mix of the 215 PlanetLab landmarks.
PAPER_LANDMARK_MIX: Dict[Continent, int] = {
    Continent.NORTH_AMERICA: 97,
    Continent.EUROPE: 82,
    Continent.ASIA: 24,
    Continent.SOUTH_AMERICA: 8,
    Continent.OCEANIA: 3,
    Continent.AFRICA: 1,
}

#: Maximum scatter of a landmark around its anchor city, in km.
_MAX_SCATTER_KM = 40.0


@dataclass(frozen=True)
class Landmark:
    """A measurement vantage with a known location.

    Attributes:
        name: Unique landmark name, e.g. ``"planetlab-na-007"``.
        point: True location (known to the geolocator — landmarks are the
            reference points CBG calibrates against).
        continent: Continent the landmark is on.
        anchor_city: Name of the city the landmark was scattered around.
    """

    name: str
    point: GeoPoint
    continent: Continent
    anchor_city: str


class LandmarkSet:
    """An ordered, immutable collection of landmarks."""

    def __init__(self, landmarks: Sequence[Landmark]):
        self._landmarks: List[Landmark] = list(landmarks)
        names = [lm.name for lm in self._landmarks]
        if len(set(names)) != len(names):
            raise ValueError("duplicate landmark names")

    def __len__(self) -> int:
        return len(self._landmarks)

    def __iter__(self) -> Iterator[Landmark]:
        return iter(self._landmarks)

    def __getitem__(self, index: int) -> Landmark:
        return self._landmarks[index]

    def on_continent(self, continent: Continent) -> List[Landmark]:
        """Landmarks located on the given continent."""
        return [lm for lm in self._landmarks if lm.continent is continent]

    def subsample(self, count: int, seed: int = 0) -> "LandmarkSet":
        """A deterministic random subset preserving the continental balance.

        Useful for cheap test runs: CBG degrades gracefully with fewer
        landmarks, so tests can use e.g. 40 landmarks while benchmarks use
        the full 215.
        """
        if count >= len(self._landmarks):
            return self
        rng = random.Random(seed)
        by_continent: Dict[Continent, List[Landmark]] = {}
        for lm in self._landmarks:
            by_continent.setdefault(lm.continent, []).append(lm)
        chosen: List[Landmark] = []
        total = len(self._landmarks)
        for continent, members in sorted(by_continent.items(), key=lambda kv: kv[0].name):
            take = max(1, round(count * len(members) / total))
            chosen.extend(rng.sample(members, min(take, len(members))))
        rng.shuffle(chosen)
        return LandmarkSet(chosen[:count])


_CONTINENT_SLUG = {
    Continent.NORTH_AMERICA: "na",
    Continent.EUROPE: "eu",
    Continent.ASIA: "as",
    Continent.SOUTH_AMERICA: "sa",
    Continent.OCEANIA: "oc",
    Continent.AFRICA: "af",
}


def generate_landmarks(
    mix: Optional[Dict[Continent, int]] = None,
    seed: int = 42,
    atlas: Optional[WorldAtlas] = None,
) -> LandmarkSet:
    """Generate a landmark population with the requested continental mix.

    Args:
        mix: Number of landmarks per continent; defaults to the paper's
            215-node PlanetLab mix.
        seed: Seed for the deterministic scatter.
        atlas: City atlas to anchor landmarks to; defaults to the shared one.

    Returns:
        A :class:`LandmarkSet` of ``sum(mix.values())`` landmarks.
    """
    if mix is None:
        mix = PAPER_LANDMARK_MIX
    if atlas is None:
        atlas = default_atlas()
    rng = random.Random(seed)
    landmarks: List[Landmark] = []
    for continent in sorted(mix, key=lambda c: c.name):
        count = mix[continent]
        anchors = atlas.cities_in(continent)
        if not anchors:
            raise ValueError(f"no anchor cities on {continent.label}")
        for i in range(count):
            city = anchors[i % len(anchors)]
            bearing = rng.uniform(0.0, 360.0)
            scatter = rng.uniform(0.0, _MAX_SCATTER_KM)
            point = destination_point(city.point, bearing, scatter)
            landmarks.append(
                Landmark(
                    name=f"planetlab-{_CONTINENT_SLUG[continent]}-{i:03d}",
                    point=point,
                    continent=continent,
                    anchor_city=city.name,
                )
            )
    return LandmarkSet(landmarks)
