"""Continent taxonomy and country-to-continent mapping.

Table III of the paper buckets geolocated servers by continent
(North America / Europe / Others); this module is the authority for that
bucketing.
"""

from __future__ import annotations

import enum


class Continent(enum.Enum):
    """Continents used by the paper's Table III and the landmark mix."""

    NORTH_AMERICA = "N. America"
    SOUTH_AMERICA = "S. America"
    EUROPE = "Europe"
    ASIA = "Asia"
    OCEANIA = "Oceania"
    AFRICA = "Africa"

    @property
    def label(self) -> str:
        """Human-readable label, matching the paper's table headers."""
        return self.value

    def table3_bucket(self) -> str:
        """The Table III column this continent falls into."""
        if self is Continent.NORTH_AMERICA:
            return "N. America"
        if self is Continent.EUROPE:
            return "Europe"
        return "Others"


_COUNTRY_CONTINENT = {
    # North America
    "US": Continent.NORTH_AMERICA,
    "CA": Continent.NORTH_AMERICA,
    "MX": Continent.NORTH_AMERICA,
    # South America
    "BR": Continent.SOUTH_AMERICA,
    "AR": Continent.SOUTH_AMERICA,
    "CL": Continent.SOUTH_AMERICA,
    "CO": Continent.SOUTH_AMERICA,
    # Europe
    "IT": Continent.EUROPE,
    "FR": Continent.EUROPE,
    "DE": Continent.EUROPE,
    "GB": Continent.EUROPE,
    "NL": Continent.EUROPE,
    "ES": Continent.EUROPE,
    "SE": Continent.EUROPE,
    "IE": Continent.EUROPE,
    "BE": Continent.EUROPE,
    "CH": Continent.EUROPE,
    "AT": Continent.EUROPE,
    "PL": Continent.EUROPE,
    "PT": Continent.EUROPE,
    "FI": Continent.EUROPE,
    "NO": Continent.EUROPE,
    "DK": Continent.EUROPE,
    "CZ": Continent.EUROPE,
    "HU": Continent.EUROPE,
    "GR": Continent.EUROPE,
    "RO": Continent.EUROPE,
    # Asia
    "JP": Continent.ASIA,
    "SG": Continent.ASIA,
    "HK": Continent.ASIA,
    "KR": Continent.ASIA,
    "TW": Continent.ASIA,
    "IN": Continent.ASIA,
    "CN": Continent.ASIA,
    "IL": Continent.ASIA,
    "TH": Continent.ASIA,
    # Oceania
    "AU": Continent.OCEANIA,
    "NZ": Continent.OCEANIA,
    # Africa
    "ZA": Continent.AFRICA,
    "EG": Continent.AFRICA,
    "KE": Continent.AFRICA,
    "NG": Continent.AFRICA,
}


def continent_of_country(country_code: str) -> Continent:
    """Map an ISO-3166 alpha-2 country code to its continent.

    Raises:
        KeyError: If the country code is not in the registry.
    """
    try:
        return _COUNTRY_CONTINENT[country_code.upper()]
    except KeyError:
        raise KeyError(f"unknown country code: {country_code!r}") from None


def known_countries() -> frozenset:
    """All country codes the registry knows about."""
    return frozenset(_COUNTRY_CONTINENT)
