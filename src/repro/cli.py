"""Command-line interface.

Five subcommands cover the library's workflows::

    python -m repro simulate  --dataset EU1-ADSL --scale 0.02 --out flows.tsv
    python -m repro study     --scale 0.02 --landmarks 120
    python -m repro sessions  --flows flows.tsv --gaps 1,5,10,60,300
    python -m repro coldvideo --nodes 45 --samples 25
    python -m repro whatif    --dataset EU1-ADSL --variants old-policy,flash-crowd
    python -m repro grid      run --base EU1-FTTH --axis policy=preferred,geographic
    python -m repro monitor   --epochs 8 --epoch-s 86400
    python -m repro cache     stats

``simulate`` writes a Tstat-style flow log; ``sessions`` re-analyses any
such log (including ones you edit or generate elsewhere); the rest run the
paper's composite experiments end to end.  ``grid`` enumerates declarative
scenario-spec grids (axes × values over a registry base) and runs them
with per-point cache reuse; ``monitor`` watches an evolving world across
epochs and raises change-point alarms; ``cache`` inspects and manages the
stage-artifact store that makes warm re-runs of the above incremental.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro import obs
from repro.active.testvideo import TestVideoExperiment
from repro.core.asmap import render_table2
from repro.exec.executor import BACKENDS, ParallelExecutor
from repro.core.geography import render_table3
from repro.core.pipeline import StudyPipeline
from repro.core.sessions import flows_per_session_histogram, build_sessions
from repro.core.summary import render_table1
from repro.cdn.selection import registered_policy_kinds
from repro.monitor.detect import DEFAULT_THRESHOLD
from repro.monitor.run import (
    DEFAULT_EPOCHS as MONITOR_DEFAULT_EPOCHS,
    DEFAULT_EPOCH_S as MONITOR_DEFAULT_EPOCH_S,
)
from repro.sim.driver import run_all, run_scenario
from repro.trace.columnar import KERNELS_ENV
from repro.sim.scenarios import DATASET_NAMES, PAPER_SCENARIOS, build_world
from repro.trace.logio import read_flow_log, write_flow_log
from repro.whatif.compare import compare_variants, render_comparison
from repro.whatif.variants import standard_variants, variant_by_name


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="traffic scale relative to the paper (default 0.02)",
    )
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument(
        "--parallel", choices=BACKENDS, default=None,
        help="execution backend for independent runs "
        "(default: $REPRO_EXECUTOR, else serial; "
        "results are identical on every backend)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker bound for --parallel (default: CPU count)",
    )
    parser.add_argument(
        "--kernels", choices=("python", "numpy"), default=None,
        help="analysis kernel backend (default: $REPRO_KERNELS, "
        "else numpy when available; outputs are identical "
        "on both backends)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="deterministic fault-injection plan: a JSON object "
        "or a path to one (default: $REPRO_FAULTS; see "
        "docs/architecture.md). Faulted runs are exactly "
        "reproducible from (seed, plan)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="DIR",
        help="write this run's trace_<run>.jsonl into DIR "
        "(default: $REPRO_TRACE_DIR; inspect it with "
        "'repro trace'. Tracing never changes outputs; "
        "REPRO_TRACE=off disables it entirely)",
    )


def executor_from_args(args: argparse.Namespace) -> Optional[ParallelExecutor]:
    """The executor selected on the command line, or ``None`` for env/default.

    ``--parallel`` wins over ``REPRO_EXECUTOR``; ``--workers`` alone keeps
    the environment's backend but bounds its pool.
    """
    backend = getattr(args, "parallel", None)
    workers = getattr(args, "workers", None)
    if backend is None and workers is None:
        return None
    if backend is None:
        backend = ParallelExecutor.from_env().backend
    return ParallelExecutor(backend, max_workers=workers)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dissecting Video Server Selection "
        "Strategies in the YouTube CDN' (ICDCS 2011).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="simulate one dataset and write a flow log")
    p_sim.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    p_sim.add_argument("--out", required=True, help="output flow-log path (TSV)")
    p_sim.add_argument(
        "--policy", choices=registered_policy_kinds(), default="preferred",
        help="selection policy the simulated CDN runs (default preferred)",
    )
    p_sim.add_argument("--duration-days", type=float, default=7.0)
    _add_common(p_sim)

    p_study = sub.add_parser("study", help="run the full five-dataset study")
    p_study.add_argument(
        "--landmarks", type=int, default=120,
        help="CBG landmark budget (default 120; max 215)",
    )
    p_study.add_argument(
        "--policy", choices=registered_policy_kinds(), default="preferred",
        help="selection policy every simulated world runs "
        "(default preferred; batch path only)",
    )
    p_study.add_argument(
        "--shared", action="store_true",
        help="run all vantage points against one shared CDN "
        "(interleaved, interacting) instead of "
        "independent per-scenario worlds",
    )
    p_study.add_argument(
        "--full", action="store_true",
        help="print the full study report (every table and "
        "figure) instead of the summary",
    )
    p_study.add_argument(
        "--validate", action="store_true",
        help="also print the methodology-validation report "
        "(inference vs. simulator ground truth)",
    )
    p_study.add_argument(
        "--digests", action="store_true",
        help="append one 'digest <dataset> <sha256>' line per "
        "dataset (byte-identity checks across runs)",
    )
    p_study.add_argument(
        "--stream", action="store_true",
        help="event-driven ingestion: consume each week as a "
        "watermarked stream with bounded memory instead "
        "of materialising it; output is byte-identical "
        "to the batch path at any --window-s",
    )
    p_study.add_argument(
        "--window-s", type=float, default=3600.0,
        help="tumbling-window width for --stream, in seconds "
        "(default 3600; any positive value yields the "
        "same bytes)",
    )
    p_study.add_argument(
        "--sharded", action="store_true",
        help="sharded scale-out: partition each week into "
        "(vantage, time-window) shards analyzed over "
        "shared-memory columns and merged exactly; output "
        "is byte-identical to the batch path at any "
        "--shard-window-s",
    )
    p_study.add_argument(
        "--shard-window-s", type=float, default=86400.0,
        help="shard grain for --sharded, in seconds of trace "
        "per shard (default 86400; any positive value "
        "yields the same bytes)",
    )
    _add_common(p_study)

    p_eval = sub.add_parser(
        "eval",
        help="score the blind methodology against simulator ground truth",
    )
    p_eval.add_argument(
        "--policy", default="preferred", metavar="KIND[,KIND...]",
        help="comma-separated selection-policy kinds to evaluate "
        f"(registered: {', '.join(registered_policy_kinds())})",
    )
    p_eval.add_argument(
        "--landmarks", type=int, default=60,
        help="CBG landmark budget (default 60; max 215)",
    )
    p_eval.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable output (one JSON document over all policies)",
    )
    p_eval.add_argument(
        "--digests", action="store_true",
        help="append one 'digest <policy> <dataset> <sha256>' line per "
        "dataset (byte-identity checks across runs)",
    )
    _add_common(p_eval)

    p_sessions = sub.add_parser("sessions", help="session analysis of a flow log")
    p_sessions.add_argument("--flows", required=True, help="flow-log path")
    p_sessions.add_argument(
        "--gaps", default="1,5,10,60,300", help="comma-separated gap values in seconds"
    )
    p_sessions.add_argument(
        "--stream", action="store_true",
        help="replay the log as a watermarked stream and "
        "build sessions incrementally (byte-identical "
        "output, bounded memory)",
    )
    p_sessions.add_argument(
        "--window-s", type=float, default=3600.0,
        help="tumbling-window width for --stream (seconds)",
    )
    p_sessions.add_argument(
        "--lag-s", type=float, default=0.0,
        help="watermark lag for --stream: tolerate records "
        "up to this many seconds out of order "
        "(default 0; sorted logs need none)",
    )

    p_cold = sub.add_parser("coldvideo", help="run the PlanetLab cold-video experiment")
    p_cold.add_argument("--nodes", type=int, default=45)
    p_cold.add_argument("--samples", type=int, default=25)
    _add_common(p_cold)

    p_whatif = sub.add_parser("whatif", help="compare what-if variants of a scenario")
    p_whatif.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    p_whatif.add_argument(
        "--variants", default="",
        help="comma-separated variant names (default: the full standard set)",
    )
    _add_common(p_whatif)

    p_figures = sub.add_parser(
        "figures", help="export gnuplot-ready .dat/.gp files for the CDF figures"
    )
    p_figures.add_argument("--out-dir", required=True, help="output directory")
    p_figures.add_argument("--landmarks", type=int, default=120)
    _add_common(p_figures)

    p_anon = sub.add_parser(
        "anonymize",
        help="prefix-preserving anonymisation of a flow log (for sharing)",
    )
    p_anon.add_argument("--flows", required=True, help="input flow-log path")
    p_anon.add_argument("--out", required=True, help="output flow-log path")
    p_anon.add_argument("--key", required=True,
                        help="secret key (keep it to map future traces consistently)")

    p_sweep = sub.add_parser(
        "sweep", help="dose-response sweep of one scenario parameter"
    )
    p_sweep.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    p_sweep.add_argument("--parameter", required=True, help="ScenarioSpec field to vary")
    p_sweep.add_argument("--values", required=True, help="comma-separated grid values")
    p_sweep.add_argument(
        "--metrics", default="preferred_share,miss_rate,overload_rate",
        help="comma-separated ScenarioMetrics attributes to print",
    )
    _add_common(p_sweep)

    p_grid = sub.add_parser(
        "grid", help="enumerate, run and diff scenario-spec grids"
    )
    grid_sub = p_grid.add_subparsers(dest="grid_command", required=True)

    def _add_grid_shape(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--base", default="EU1-FTTH",
            help="registry scenario the grid perturbs (default EU1-FTTH)",
        )
        p.add_argument(
            "--axis", action="append", default=[], metavar="NAME=V1,V2",
            help="one grid axis: a ScenarioSpec field, 'policy', "
            "'variant', or 'dataset', with comma-separated values "
            "(repeatable; the product of all axes is the grid)",
        )
        p.add_argument(
            "--filter", action="append", default=[], metavar="A=X,B=Y",
            dest="filters",
            help="drop grid points matching every clause (repeatable)",
        )
        p.add_argument(
            "--grid", default=None, metavar="PATH",
            help="load the grid from a JSON file written by "
            "'grid plan --out' instead of --base/--axis/--filter",
        )

    p_grid_plan = grid_sub.add_parser(
        "plan", help="enumerate the grid and show per-point cache status"
    )
    _add_grid_shape(p_grid_plan)
    p_grid_plan.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the grid as a JSON document (diffable, "
        "re-runnable with --grid)",
    )
    p_grid_plan.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable plan",
    )
    _add_common(p_grid_plan)

    p_grid_run = grid_sub.add_parser(
        "run", help="simulate every grid point (warm points load from cache)"
    )
    _add_grid_shape(p_grid_run)
    p_grid_run.add_argument(
        "--metrics", default="preferred_share,miss_rate,overload_rate",
        help="comma-separated ScenarioMetrics attributes to print",
    )
    _add_common(p_grid_run)

    p_grid_diff = grid_sub.add_parser(
        "diff", help="point-level difference between two grid documents"
    )
    p_grid_diff.add_argument("grid_a", help="baseline grid JSON path")
    p_grid_diff.add_argument("grid_b", help="comparison grid JSON path")

    p_monitor = sub.add_parser(
        "monitor",
        help="longitudinal change monitoring: epoch snapshots, clustering, alarms",
    )
    p_monitor.add_argument(
        "--base", choices=DATASET_NAMES, default="EU1-ADSL",
        help="base scenario to monitor (default EU1-ADSL)",
    )
    p_monitor.add_argument(
        "--epochs", type=int, default=MONITOR_DEFAULT_EPOCHS,
        help=f"number of consecutive epochs (default {MONITOR_DEFAULT_EPOCHS})",
    )
    p_monitor.add_argument(
        "--epoch-s", type=float, default=MONITOR_DEFAULT_EPOCH_S,
        help="epoch length in seconds (default 86400 = one day)",
    )
    p_monitor.add_argument(
        "--plan", default=None, metavar="PATH",
        help="evolution-plan JSON file (the scheduled CDN changes; "
        "default: the built-in demo schedule)",
    )
    p_monitor.add_argument(
        "--static", action="store_true",
        help="monitor a never-changing world (zero ground-truth "
        "alarms; overrides --plan)",
    )
    p_monitor.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"alarm threshold on the pattern dissimilarity "
        f"(default {DEFAULT_THRESHOLD})",
    )
    p_monitor.add_argument(
        "--policy", choices=registered_policy_kinds(), default="preferred",
        help="selection policy the base scenario runs (default preferred)",
    )
    p_monitor.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable report (timeline, verdict, "
        "per-epoch cache/degradation counters)",
    )
    p_monitor.add_argument(
        "--digests", action="store_true",
        help="append one 'digest epochNN <sha256>' line per epoch "
        "(byte-identity checks across runs)",
    )
    _add_common(p_monitor)

    p_cache = sub.add_parser(
        "cache", help="inspect or manage the stage-artifact cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser(
        "stats", help="hit/miss/byte counters and the on-disk census"
    )
    p_cache_stats.add_argument(
        "--json", action="store_true", dest="as_json", help="machine-readable output"
    )
    cache_sub.add_parser("clear", help="delete every cached artifact")
    p_cache_gc = cache_sub.add_parser(
        "gc", help="evict least-recently-used artifacts down to a size budget"
    )
    p_cache_gc.add_argument("--max-size", required=True,
                            help="size budget, e.g. 750K, 500M, 2G, or bytes")

    p_trace = sub.add_parser(
        "trace", help="inspect trace_<run>.jsonl files from traced runs"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tr_summary = trace_sub.add_parser(
        "summary", help="span tree with inclusive/exclusive times and counters"
    )
    p_tr_summary.add_argument("trace_file", help="trace_<run>.jsonl path")
    p_tr_summary.add_argument(
        "--depth", type=int, default=None, help="limit the tree depth (default: unlimited)"
    )
    p_tr_summary.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable span tree (same tree and depth limit "
        "as the table, plus the metrics snapshot)",
    )
    p_tr_slowest = trace_sub.add_parser(
        "slowest", help="top spans by exclusive time (where the run went)"
    )
    p_tr_slowest.add_argument("trace_file", help="trace_<run>.jsonl path")
    p_tr_slowest.add_argument("--top", type=int, default=10)
    p_tr_export = trace_sub.add_parser(
        "export", help="convert a trace to another format"
    )
    p_tr_export.add_argument("trace_file", help="trace_<run>.jsonl path")
    p_tr_export.add_argument(
        "--format", choices=("chrome",), default="chrome",
        help="chrome: trace_event JSON for chrome://tracing / ui.perfetto.dev",
    )
    p_tr_export.add_argument("--out", required=True, help="output path")
    p_tr_diff = trace_sub.add_parser(
        "diff", help="per-span-name time deltas between two traces"
    )
    p_tr_diff.add_argument("trace_a", help="baseline trace_<run>.jsonl")
    p_tr_diff.add_argument("trace_b", help="comparison trace_<run>.jsonl")
    p_tr_diff.add_argument("--top", type=int, default=10)
    return parser


def cmd_simulate(args: argparse.Namespace, out) -> int:
    result = run_scenario(
        args.dataset,
        scale=args.scale,
        seed=args.seed,
        duration_s=args.duration_days * 86400.0,
        policy_kind=args.policy,
    )
    count = write_flow_log(result.dataset.records, args.out)
    print(
        f"wrote {count} flows ({result.dataset.total_bytes / 1e9:.2f} GB) to {args.out}",
        file=out,
    )
    return 0


def _render_study(args: argparse.Namespace):
    """Run the study and render its report.

    Returns:
        ``(text, digests)`` — the full report text and one
        :meth:`~repro.trace.records.Dataset.content_digest` per dataset.
    """
    import io

    buffer = io.StringIO()
    executor = executor_from_args(args)
    if args.shared:
        from repro.sim.multistudy import run_shared_study

        results = run_shared_study(scale=args.scale, seed=args.seed, executor=executor)
    else:
        results = run_all(
            scale=args.scale, seed=args.seed, executor=executor,
            policy_kind=getattr(args, "policy", "preferred"),
        )
    landmark_count = None if args.landmarks >= 215 else args.landmarks
    pipeline = StudyPipeline(results, landmark_count=landmark_count, executor=executor)
    if args.full:
        from repro.core.report import render_study_report

        print(render_study_report(pipeline), file=buffer)
    else:
        print(render_table1(pipeline.summaries.values()), file=buffer)
        print("", file=buffer)
        print(render_table2(pipeline.as_breakdowns.values()), file=buffer)
        print("", file=buffer)
        print(render_table3(pipeline.table3_rows), file=buffer)
        print("", file=buffer)
        for name in pipeline.dataset_names:
            report = pipeline.preferred_reports[name]
            print(
                f"{name:12s} preferred={report.preferred_id:24s} "
                f"share={report.byte_share(report.preferred_id):6.1%} "
                f"non-preferred flows={pipeline.nonpreferred_fraction(name):6.1%}",
                file=buffer,
            )
    if args.validate:
        from repro.core.validation import render_validation, validate_study

        print("", file=buffer)
        print(render_validation(validate_study(pipeline, results)), file=buffer)
    digests = {name: result.dataset.content_digest() for name, result in results.items()}
    return buffer.getvalue(), digests


def _render_stream_study(args: argparse.Namespace):
    """Run the study through the streaming path (see :mod:`repro.stream`).

    Returns:
        ``(text, digests)`` with exactly the bytes :func:`_render_study`
        produces for the same parameters.
    """
    from repro.stream.study import render_stream_report, run_streaming_study

    landmark_count = None if args.landmarks >= 215 else args.landmarks
    study = run_streaming_study(
        scale=args.scale,
        seed=args.seed,
        window_s=args.window_s,
        landmark_count=landmark_count,
        executor=executor_from_args(args),
    )
    stats_path = os.environ.get("REPRO_STREAM_STATS", "").strip()
    if stats_path:
        import json

        from repro.stream.study import peak_rss_kb

        payload = {
            "window_s": args.window_s,
            "peak_rss_kb": peak_rss_kb(),
            "datasets": study.stats(),
        }
        with open(stats_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return render_stream_report(study), study.digests()


def _render_sharded_study(args: argparse.Namespace):
    """Run the study through the sharded path (see :mod:`repro.shard`).

    Returns:
        ``(text, digests)`` with exactly the bytes :func:`_render_study`
        produces for the same parameters.
    """
    from repro.exec.executor import default_executor
    from repro.shard.study import run_sharded_study
    from repro.stream.study import peak_rss_kb, render_stream_report

    landmark_count = None if args.landmarks >= 215 else args.landmarks
    executor = default_executor(executor_from_args(args))
    study = run_sharded_study(
        scale=args.scale,
        seed=args.seed,
        shard_window_s=args.shard_window_s,
        landmark_count=landmark_count,
        executor=executor,
    )
    stats_path = os.environ.get("REPRO_SHARD_STATS", "").strip()
    if stats_path:
        import json

        payload = {
            "shard_window_s": args.shard_window_s,
            "peak_rss_kb": peak_rss_kb(),
            "datasets": study.stats(),
            "dispatch_bytes": sum(s.dispatch_bytes for s in executor.stats),
            "result_bytes": sum(s.result_bytes for s in executor.stats),
        }
        with open(stats_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return render_stream_report(study), study.digests()


def cmd_study(args: argparse.Namespace, out) -> int:
    from repro.artifacts.keys import stage_key
    from repro.artifacts.store import default_store

    if args.stream and args.sharded:
        print(
            "repro study --stream and --sharded are alternative execution "
            "strategies for the same byte-identical report; pick one.",
            file=sys.stderr,
        )
        return 2
    if args.policy != "preferred" and (args.stream or args.sharded or args.shared):
        # The streamed/sharded paths and the shared multi-study build their
        # worlds internally and run the baseline policy only; a non-default
        # --policy there would silently evaluate the wrong mechanism.
        print(
            f"repro study --policy {args.policy} requires the batch "
            "independent-worlds path; drop --stream/--sharded/--shared.",
            file=sys.stderr,
        )
        return 2
    strategy = "--stream" if args.stream else "--sharded" if args.sharded else None
    unsupported = [
        flag
        for flag, active in (
            ("--shared", args.shared), ("--full", args.full),
            ("--validate", args.validate),
        )
        if strategy is not None and active
    ]
    if unsupported:
        # Fail fast and name the way out: the streamed and sharded paths
        # render the summary report only (ROADMAP item 1 follow-up), so
        # these flags need the batch path.
        batch = "repro study " + " ".join(unsupported)
        verb = "requires" if len(unsupported) == 1 else "require"
        print(
            f"repro study {strategy} renders the summary report only; "
            f"{', '.join(unsupported)} {verb} the batch path. "
            f"Drop {strategy} and run the batch equivalent: {batch}",
            file=sys.stderr,
        )
        return 2
    # The rendered report is itself a stage artifact: on a warm cache the
    # whole study is one read, which is what makes re-runs startup-bound.
    # Keyed by everything the text depends on; --parallel/--workers change
    # only how the work is scheduled, never the bytes, so they stay out —
    # and so do --stream/--window-s and --sharded/--shard-window-s, which
    # are execution strategies under the same byte-parity contract (a
    # streamed, sharded or batch run fills and hits the same artifact).
    store = default_store()
    payload = None
    key = None
    if store is not None:
        key = stage_key("cli/study", {
            "scale": args.scale,
            "seed": args.seed,
            "landmarks": args.landmarks,
            "policy": args.policy,
            "shared": bool(args.shared),
            "full": bool(args.full),
            "validate": bool(args.validate),
        })
        payload = store.get(key, None, stage="cli/study")
    if payload is None:
        if args.stream:
            text, digests = _render_stream_study(args)
        elif args.sharded:
            text, digests = _render_sharded_study(args)
        else:
            text, digests = _render_study(args)
        payload = {"text": text, "digests": digests}
        if store is not None:
            store.put(key, payload, stage="cli/study")
    out.write(payload["text"])
    if args.digests:
        for name in sorted(payload["digests"]):
            print(f"digest {name} {payload['digests'][name]}", file=out)
    from repro.faults.plan import active_plan

    if active_plan() is not None:
        from repro.faults import report as degradation
        from repro.reporting.timing import render_degradation_table

        print("", file=out)
        print(render_degradation_table(degradation.collect()), file=out)
    return 0


def cmd_eval(args: argparse.Namespace, out) -> int:
    from repro.eval.attribution import evaluate_policy, render_attribution

    kinds = tuple(k.strip() for k in args.policy.split(",") if k.strip())
    if not kinds:
        print("repro eval: --policy names no policies", file=sys.stderr)
        return 2
    registered = registered_policy_kinds()
    unknown = [k for k in kinds if k not in registered]
    if unknown:
        # Fail before any five-week simulation starts.
        print(
            f"unknown policy {unknown[0]!r}; registered policies: "
            f"{', '.join(registered)}",
            file=sys.stderr,
        )
        return 2
    executor = executor_from_args(args)
    landmark_count = None if args.landmarks >= 215 else args.landmarks
    evaluations = [
        evaluate_policy(
            kind, scale=args.scale, seed=args.seed,
            landmark_count=landmark_count, executor=executor,
        )
        for kind in kinds
    ]
    if args.as_json:
        import json

        document = {ev.policy_kind: ev.as_dict() for ev in evaluations}
        print(json.dumps(document, sort_keys=True, indent=2), file=out)
    else:
        for index, evaluation in enumerate(evaluations):
            if index:
                print("", file=out)
            print(render_attribution(evaluation), file=out)
    if args.digests:
        for evaluation in evaluations:
            for name in sorted(evaluation.digests):
                print(
                    f"digest {evaluation.policy_kind} {name} "
                    f"{evaluation.digests[name]}",
                    file=out,
                )
    return 0


def cmd_sessions(args: argparse.Namespace, out) -> int:
    if args.stream:
        return _cmd_sessions_stream(args, out)
    records = read_flow_log(args.flows)
    if not records:
        print("flow log is empty", file=out)
        return 1
    gaps = [float(g) for g in args.gaps.split(",") if g.strip()]
    print(f"{len(records)} flows", file=out)
    for gap in gaps:
        sessions = build_sessions(records, gap_s=gap)
        histogram = flows_per_session_histogram(sessions)
        cells = " ".join(f"{k}:{histogram[k]:.3f}" for k in ("1", "2", "3", ">9"))
        print(f"T={gap:>6.1f}s sessions={len(sessions):7d}  {cells}", file=out)
    return 0


def _cmd_sessions_stream(args: argparse.Namespace, out) -> int:
    """Streamed ``sessions``: one replay pass per gap, bounded memory.

    Prints exactly the batch command's bytes for any time-sorted log (or
    any log whose disorder stays within ``--lag-s``).
    """
    from repro.stream.accumulators import SessionStatsAccumulator
    from repro.stream.events import FlowArrival
    from repro.stream.source import replay_flow_log
    from repro.stream.windows import TumblingWindower, WindowedSessionBuilder

    gaps = [float(g) for g in args.gaps.split(",") if g.strip()]
    if not gaps:
        flows = sum(
            1
            for event in replay_flow_log(args.flows, watermark_lag_s=args.lag_s)
            if isinstance(event, FlowArrival)
        )
        if flows == 0:
            print("flow log is empty", file=out)
            return 1
        print(f"{flows} flows", file=out)
        return 0
    lines = []
    flows = 0
    for gap in gaps:
        windower = TumblingWindower(args.window_s)
        builder = WindowedSessionBuilder(gap)
        stats = SessionStatsAccumulator()
        flows = 0
        last_boundary = float("-inf")
        for event in replay_flow_log(args.flows, watermark_lag_s=args.lag_s):
            for window in windower.push(event):
                flows += len(window)
                stats.add(builder.observe_window(window))
            boundary = windower.sealed_boundary_s
            if boundary > last_boundary:
                last_boundary = boundary
                stats.add(builder.advance(boundary))
        for window in windower.finish():
            flows += len(window)
            stats.add(builder.observe_window(window))
        stats.add(builder.finish())
        if flows == 0:
            print("flow log is empty", file=out)
            return 1
        histogram = stats.histogram()
        cells = " ".join(f"{k}:{histogram[k]:.3f}" for k in ("1", "2", "3", ">9"))
        lines.append(
            f"T={gap:>6.1f}s sessions={builder.sessions_closed:7d}  {cells}"
        )
    print(f"{flows} flows", file=out)
    for line in lines:
        print(line, file=out)
    return 0


def cmd_coldvideo(args: argparse.Namespace, out) -> int:
    world = build_world(PAPER_SCENARIOS["EU1-ADSL"], scale=0.002, seed=args.seed)
    experiment = TestVideoExperiment(world, num_nodes=args.nodes, seed=args.seed)
    report = experiment.run(num_samples=args.samples)
    cdf = report.ratio_cdf()
    exemplar = report.most_improved()
    print(f"test video {report.video_id} at {', '.join(report.origin_dcs)}", file=out)
    print(
        f"exemplar {exemplar.node.name}: "
        + " ".join(f"{r:.0f}" for r in exemplar.rtts_ms[:8])
        + " ms",
        file=out,
    )
    print(
        f"ratio>1.2: {1 - cdf.fraction_below(1.2):.1%}   "
        f"ratio>10: {1 - cdf.fraction_below(10.0):.1%}",
        file=out,
    )
    return 0


def cmd_whatif(args: argparse.Namespace, out) -> int:
    if args.variants.strip():
        variants = [variant_by_name(name.strip()) for name in args.variants.split(",")]
    else:
        variants = standard_variants()
    report = compare_variants(
        args.dataset, variants, scale=args.scale, seed=args.seed,
        executor=executor_from_args(args),
    )
    print(render_comparison(report), file=out)
    return 0


def cmd_figures(args: argparse.Namespace, out) -> int:
    from repro.reporting.gnuplot import export_figure_cdfs

    executor = executor_from_args(args)
    results = run_all(scale=args.scale, seed=args.seed, executor=executor)
    landmark_count = None if args.landmarks >= 215 else args.landmarks
    pipeline = StudyPipeline(results, landmark_count=landmark_count, executor=executor)

    written = []
    written.append(export_figure_cdfs(
        {name: pipeline.rtt_cdf(name) for name in pipeline.dataset_names},
        args.out_dir, "fig02_rtt", x_label="RTT [ms]",
    ))
    written.append(export_figure_cdfs(
        pipeline.fig3_cdfs, args.out_dir, "fig03_confidence",
        x_label="Radius [km]", logscale_x=True,
    ))
    written.append(export_figure_cdfs(
        {name: pipeline.flow_size_cdf(name) for name in pipeline.dataset_names},
        args.out_dir, "fig04_flow_sizes", x_label="Bytes", logscale_x=True,
    ))
    written.append(export_figure_cdfs(
        {name: pipeline.fig9_cdf(name) for name in pipeline.dataset_names},
        args.out_dir, "fig09_nonpreferred",
        x_label="Fraction of Video Flows to Non-preferred DC",
    ))
    written.append(export_figure_cdfs(
        {name: pipeline.fig13_cdf(name) for name in pipeline.dataset_names},
        args.out_dir, "fig13_per_video", x_label="Number of Requests",
        logscale_x=True,
    ))
    for path in written:
        print(f"wrote {path}", file=out)
    return 0


def cmd_anonymize(args: argparse.Namespace, out) -> int:
    from repro.trace.anonymize import PrefixPreservingAnonymizer

    records = read_flow_log(args.flows)
    anonymizer = PrefixPreservingAnonymizer(args.key.encode())
    count = write_flow_log(anonymizer.anonymize_records(records), args.out)
    print(
        f"anonymised {count} flows -> {args.out} "
        "(prefix structure preserved; addresses keyed)",
        file=out,
    )
    return 0


def cmd_sweep(args: argparse.Namespace, out) -> int:
    from repro.whatif.sweep import sweep_parameter

    values = [float(v) for v in args.values.split(",") if v.strip()]
    metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]
    sweep = sweep_parameter(
        args.dataset, args.parameter, values, scale=args.scale, seed=args.seed,
        executor=executor_from_args(args),
    )
    header = f"{args.parameter:>24s}  " + "  ".join(f"{m:>18s}" for m in metrics)
    print(header, file=out)
    for value, row in zip(sweep.values, sweep.metrics):
        cells = "  ".join(f"{getattr(row, m):18.4f}" for m in metrics)
        print(f"{value:24.4f}  {cells}", file=out)
    return 0


def _parse_axis_value(text: str):
    """A CLI axis value, typed: int, float, bool, or string."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text.strip()


def _grid_from_args(args: argparse.Namespace):
    """The grid a ``repro grid`` subcommand addresses.

    Raises:
        ValueError: For malformed --axis/--filter clauses or a --grid
            file combined with inline shape flags.
    """
    from repro.spec.grid import GridAxis, GridSpec, load_grid

    if args.grid:
        if args.axis or args.filters:
            raise ValueError("--grid already defines the shape; drop --axis/--filter")
        return load_grid(args.grid)
    axes = []
    for clause in args.axis:
        name, _, values = clause.partition("=")
        if not name or not values:
            raise ValueError(f"bad --axis {clause!r}; expected NAME=V1,V2,...")
        axes.append(
            GridAxis(name, tuple(_parse_axis_value(v) for v in values.split(",")))
        )
    filters = []
    for clause in args.filters:
        pairs = []
        for part in clause.split(","):
            axis, _, value = part.partition("=")
            if not axis or not value:
                raise ValueError(f"bad --filter {clause!r}; expected A=X,B=Y")
            pairs.append((axis, _parse_axis_value(value)))
        filters.append(tuple(pairs))
    return GridSpec(base=args.base, axes=axes, filters=filters)


def cmd_grid(args: argparse.Namespace, out) -> int:
    from repro.spec.grid import diff_grids, load_grid
    from repro.spec.info import SpecError

    if args.grid_command == "diff":
        try:
            difference = diff_grids(load_grid(args.grid_a), load_grid(args.grid_b))
        except (SpecError, KeyError, OSError) as error:
            print(f"cannot diff grids: {error}", file=sys.stderr)
            return 2
        for bucket in ("added", "removed"):
            for label in difference[bucket]:
                print(f"{bucket} {label}", file=out)
        print(f"common {len(difference['common'])} points", file=out)
        return 0

    try:
        grid = _grid_from_args(args)
    except (ValueError, OSError) as error:
        print(f"bad grid: {error}", file=sys.stderr)
        return 2

    if args.grid_command == "plan":
        from repro.spec.runner import plan_grid

        try:
            plan = plan_grid(grid, scale=args.scale, seed=args.seed)
        except (SpecError, KeyError) as error:
            print(f"cannot plan grid: {error}", file=sys.stderr)
            return 2
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(grid.to_json())
                handle.write("\n")
            print(f"wrote {args.out}", file=sys.stderr)
        if args.as_json:
            import json

            print(json.dumps({"base": grid.base, "points": plan},
                             indent=2, sort_keys=True), file=out)
            return 0
        warm = sum(1 for point in plan if point["warm"])
        print(
            f"grid base={grid.base} points={len(plan)} "
            f"(warm {warm}, cold {len(plan) - warm})",
            file=out,
        )
        for point in plan:
            state = "warm" if point["warm"] else "cold"
            print(
                f"  {state} {point['label']} "
                f"[base={point['base']} policy={point['policy']}]",
                file=out,
            )
        return 0

    if args.grid_command == "run":
        from repro.spec.runner import run_grid

        metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]
        try:
            result = run_grid(
                grid, scale=args.scale, seed=args.seed,
                executor=executor_from_args(args),
            )
        except (SpecError, KeyError) as error:
            print(f"cannot run grid: {error}", file=sys.stderr)
            return 2
        width = max(24, max(len(p.label) for p in result.points))
        header = f"{'point':>{width}s}  " + "  ".join(f"{m:>18s}" for m in metrics)
        print(header, file=out)
        for point, row in zip(result.points, result.rows):
            cells = "  ".join(f"{getattr(row, m):18.4f}" for m in metrics)
            print(f"{point.label:>{width}s}  {cells}", file=out)
        print(
            f"grid: {len(result.points)} points "
            f"({result.warm} warm, {result.cold} simulated)",
            file=out,
        )
        return 0

    raise AssertionError(f"unhandled grid command {args.grid_command!r}")


_SIZE_SUFFIXES = {"K": 1024, "M": 1024**2, "G": 1024**3, "T": 1024**4}


def parse_size(text: str) -> int:
    """Parse a human size string (``750K``, ``500M``, ``2G``, ``1048576``).

    Raises:
        ValueError: For malformed or negative sizes.
    """
    text = text.strip().upper()
    if not text:
        raise ValueError("empty size")
    multiplier = 1
    if text[-1] in _SIZE_SUFFIXES:
        multiplier = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    size = float(text) * multiplier
    if size < 0:
        raise ValueError("size must be >= 0")
    return int(size)


def cmd_cache(args: argparse.Namespace, out) -> int:
    # Management works on the configured directory even with REPRO_CACHE=off
    # (you should be able to clear a cache you have just disabled), hence a
    # direct ArtifactStore rather than default_store().
    from repro.artifacts.store import ArtifactStore

    store = ArtifactStore()
    if args.cache_command == "stats":
        from repro.trace.columnar import resident_columnar

        summary = store.stats_summary()
        summary["columnar"] = resident_columnar()
        if args.as_json:
            import json

            print(json.dumps(summary, indent=2, sort_keys=True), file=out)
        else:
            from repro.reporting.timing import render_cache_table

            print(render_cache_table(summary), file=out)
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}", file=out)
        return 0
    if args.cache_command == "gc":
        try:
            budget = parse_size(args.max_size)
        except ValueError as error:
            print(f"bad --max-size: {error}", file=out)
            return 2
        removed, freed = store.gc(budget)
        print(
            f"evicted {removed} artifacts ({freed / 1e6:.1f} MB) from {store.root}",
            file=out,
        )
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def cmd_monitor(args: argparse.Namespace, out) -> int:
    from repro.monitor import (
        STATIC_PLAN,
        load_evolution,
        render_timeline,
        run_monitor,
        standard_evolution,
    )
    from repro.spec.info import SpecError

    if args.static:
        plan = STATIC_PLAN
    elif args.plan:
        try:
            plan = load_evolution(args.plan)
        except (SpecError, OSError) as error:
            print(f"bad --plan: {error}", file=sys.stderr)
            return 2
    else:
        plan = standard_evolution()
    try:
        report = run_monitor(
            args.base,
            plan=plan,
            epochs=args.epochs,
            epoch_s=args.epoch_s,
            scale=args.scale,
            seed=args.seed,
            threshold=args.threshold,
            base_policy=args.policy,
            executor=executor_from_args(args),
        )
    except (SpecError, ValueError) as error:
        print(f"cannot monitor: {error}", file=sys.stderr)
        return 2
    if args.as_json:
        import json

        print(json.dumps(report.as_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(render_timeline(report), file=out)
    if args.digests:
        for line in report.digest_lines():
            print(line, file=out)
    return 0


def cmd_trace(args: argparse.Namespace, out) -> int:
    try:
        if args.trace_command == "diff":
            doc_a = obs.read_trace(args.trace_a)
            doc_b = obs.read_trace(args.trace_b)
        else:
            doc = obs.read_trace(args.trace_file)
    except (OSError, ValueError) as error:
        print(f"cannot read trace: {error}", file=out)
        return 2
    if args.trace_command == "summary":
        if args.as_json:
            import json

            print(
                json.dumps(
                    obs.summary_dict(doc, max_depth=args.depth),
                    indent=2, sort_keys=True,
                ),
                file=out,
            )
        else:
            print(obs.render_summary(doc, max_depth=args.depth), file=out)
        return 0
    if args.trace_command == "slowest":
        print(obs.render_slowest(doc, top=args.top), file=out)
        return 0
    if args.trace_command == "export":
        path = obs.write_chrome(doc, args.out)
        print(f"wrote {path} (open in chrome://tracing or ui.perfetto.dev)", file=out)
        return 0
    if args.trace_command == "diff":
        print(obs.render_diff(doc_a, doc_b, top=args.top), file=out)
        return 0
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


_COMMANDS = {
    "simulate": cmd_simulate,
    "study": cmd_study,
    "eval": cmd_eval,
    "sessions": cmd_sessions,
    "coldvideo": cmd_coldvideo,
    "whatif": cmd_whatif,
    "figures": cmd_figures,
    "anonymize": cmd_anonymize,
    "sweep": cmd_sweep,
    "grid": cmd_grid,
    "monitor": cmd_monitor,
    "cache": cmd_cache,
    "trace": cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point.

    Args:
        argv: Argument vector (defaults to ``sys.argv[1:]``).
        out: Output stream (defaults to stdout; tests pass a buffer).

    Returns:
        Process exit code.
    """
    if out is None:
        out = sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "kernels", None):
        # The backend never changes outputs, so it stays out of every
        # artifact-cache key (same contract as REPRO_EXECUTOR).
        os.environ[KERNELS_ENV] = args.kernels
    if getattr(args, "faults", None):
        from repro.faults import plan as faults_plan
        from repro.faults import report as degradation

        # Normalise the plan into REPRO_FAULTS so process-pool workers
        # inherit it, and start the degradation collector fresh — this
        # run's report must cover exactly this run.
        try:
            plan = faults_plan.FaultPlan.from_spec(args.faults)
        except (ValueError, OSError) as error:
            print(f"bad --faults plan: {error}", file=sys.stderr)
            return 2
        os.environ[faults_plan.ENV_FAULTS] = plan.to_json()
        faults_plan.clear_current_plan()
        degradation.reset()
    # One fresh run context per invocation: the tracer, metrics and
    # degradation counters all start empty, so sequential invocations in
    # one process (tests, notebooks) never bleed into each other.
    run = obs.new_run()
    with obs.span(f"cli/{args.command}"):
        code = _COMMANDS[args.command](args, out)
    trace_dir = (
        getattr(args, "trace", None)
        or os.environ.get(obs.ENV_TRACE_DIR, "").strip()
        or None
    )
    if trace_dir and obs.trace_enabled() and args.command != "trace":
        # stderr, not `out`: stdout must stay byte-identical whether or
        # not a trace is being written.
        path = obs.write_trace(run, trace_dir)
        print(f"trace: {path}", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
