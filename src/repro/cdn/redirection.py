"""Application-layer redirection at the content servers.

The paper's second selection mechanism (Section VI): "the server initially
contacted can redirect the client to another server in a possibly different
data center".  The engine decides, per request, the chain of servers the
client actually touches, driven by two conditions the paper identifies:

* **content miss** — the landing data center does not hold the video
  (cold-tail content, Section VII-C "Availability of unpopular videos"):
  redirect to the nearest holder, then pull the video through into the
  landing data center so later requests are served locally;
* **server overload** — the landing server exceeded its hourly serve
  capacity (hot videos pinned to one shard server, Section VII-C
  "Alleviating hot-spots"): mostly shed to the *same shard's* server in the
  next data center of the client's ranking (that server already caches the
  shard's content), occasionally to a sibling in the same data center.
  This is why the paper sees hot-video overflow served from *non-preferred*
  data centers (Figure 16) rather than absorbed locally.

A small baseline probability of intra-data-center rebalancing produces the
"preferred, preferred" two-flow sessions visible in Figure 10(b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cdn.catalog import Video
from repro.cdn.datacenter import ContentServer, DataCenter, DataCenterDirectory
from repro.cdn.store import ContentPlacement
from repro.geo.coords import haversine_km

#: Safety bound on redirection chains.
MAX_HOPS = 4

#: Hop causes recorded on a decision (ground truth for tests/diagnostics —
#: the analysis pipeline never sees these).
CAUSE_DIRECT = "direct"
CAUSE_MISS = "miss"
CAUSE_OVERLOAD_INTRA = "overload-intra"
CAUSE_OVERLOAD_INTER = "overload-inter"
CAUSE_REBALANCE = "rebalance"


@dataclass
class ServeDecision:
    """The outcome of routing one request through the content servers.

    Attributes:
        hops: Servers contacted in order; every hop but the last answers
            with a redirect (a control flow), the last serves the video.
        causes: Why each redirect happened, one entry per redirect
            (``len(causes) == len(hops) - 1``).
    """

    hops: List[ContentServer]
    causes: List[str] = field(default_factory=list)

    @property
    def serving_server(self) -> ContentServer:
        """The server that delivers the video."""
        return self.hops[-1]

    @property
    def redirected(self) -> bool:
        """Whether any redirect occurred."""
        return len(self.hops) > 1


class RedirectionEngine:
    """Routes requests through content servers, tracking per-server load.

    Args:
        directory: All data centers.
        placement: Content residency tracker.
        rebalance_probability: Baseline chance that a non-overloaded server
            still bounces the client to a sibling in the same data center.
        intra_shed_fraction: Fraction of overload events shed to a sibling
            (which must re-fetch the shard's content) instead of to the
            shard server of the next-ranked data center.
        origin_fetch_probability: On a content miss, chance the redirect
            targets the video's canonical *origin* copy — wherever in the
            world it is — instead of the nearest cached holder.  The lookup
            only knows where the video certainly exists; this is why edge
            traces see servers on other continents (Table III) and why a
            cold video can arrive from the Netherlands (Figure 17).
        seed: RNG seed.
    """

    def __init__(
        self,
        directory: DataCenterDirectory,
        placement: ContentPlacement,
        rebalance_probability: float = 0.08,
        intra_shed_fraction: float = 0.25,
        origin_fetch_probability: float = 0.35,
        seed: int = 0,
    ):
        if not 0.0 <= rebalance_probability < 1.0:
            raise ValueError("rebalance_probability must be in [0, 1)")
        if not 0.0 <= intra_shed_fraction <= 1.0:
            raise ValueError("intra_shed_fraction must be in [0, 1]")
        if not 0.0 <= origin_fetch_probability <= 1.0:
            raise ValueError("origin_fetch_probability must be in [0, 1]")
        self._directory = directory
        self._placement = placement
        self._rebalance_probability = rebalance_probability
        self._intra_shed_fraction = intra_shed_fraction
        self._origin_fetch_probability = origin_fetch_probability
        self._rng = random.Random(seed)
        # server_ip -> [hour_index, serves_this_hour]
        self._load: Dict[int, List[float]] = {}
        self.miss_redirects = 0
        self.overload_redirects = 0
        self.rebalances = 0

    # ------------------------------------------------------------------ load

    def _serves_this_hour(self, server_ip: int, now_s: float) -> float:
        hour = int(now_s // 3600.0)
        entry = self._load.get(server_ip)
        if entry is None or entry[0] != hour:
            return 0.0
        return entry[1]

    def _record_serve(self, server_ip: int, now_s: float) -> None:
        hour = int(now_s // 3600.0)
        entry = self._load.get(server_ip)
        if entry is None or entry[0] != hour:
            self._load[server_ip] = [hour, 1.0]
        else:
            entry[1] += 1.0

    def _is_overloaded(self, server: ContentServer, dc: DataCenter, now_s: float) -> bool:
        cap = dc.server_capacity_per_hour
        if cap is None:
            return False
        return self._serves_this_hour(server.ip, now_s) >= cap

    def server_load(self, server_ip: int, now_s: float) -> float:
        """Current-hour serve count of a server (diagnostics)."""
        return self._serves_this_hour(server_ip, now_s)

    # ------------------------------------------------------------ candidates

    def _sibling_with_headroom(
        self, dc: DataCenter, exclude_ip: int, now_s: float
    ) -> Optional[ContentServer]:
        """A random same-data-center server below capacity, if any."""
        cap = dc.server_capacity_per_hour
        candidates = [s for s in dc.servers if s.ip != exclude_ip]
        if not candidates:
            return None
        # Sample a handful rather than scanning the fleet: overflow events
        # are rare and a random probe finds headroom quickly unless the
        # whole data center is hot.
        for _ in range(min(8, len(candidates))):
            pick = candidates[self._rng.randrange(len(candidates))]
            if cap is None or self._serves_this_hour(pick.ip, now_s) < cap:
                return pick
        return None

    def _any_sibling(self, dc: DataCenter, exclude_ip: int) -> Optional[ContentServer]:
        candidates = [s for s in dc.servers if s.ip != exclude_ip]
        if not candidates:
            return None
        return candidates[self._rng.randrange(len(candidates))]

    def _server_in_dc(self, dc: DataCenter, now_s: float) -> ContentServer:
        """A lightly loaded random server in a (different) data center."""
        cap = dc.server_capacity_per_hour
        for _ in range(min(8, dc.size)):
            pick = dc.servers[self._rng.randrange(dc.size)]
            if cap is None or self._serves_this_hour(pick.ip, now_s) < cap:
                return pick
        return dc.servers[self._rng.randrange(dc.size)]

    def _nearest_holder(
        self, from_dc: DataCenter, video: Video, allowed: Optional[frozenset] = None
    ) -> Optional[DataCenter]:
        """The geographically nearest data center holding the video.

        Args:
            from_dc: The data center the request landed on.
            video: The requested video.
            allowed: If given, only these data centers are candidates —
                the client's eligible set (an in-ISP data center serves
                only the host ISP's customers).
        """
        best: Optional[DataCenter] = None
        best_km = float("inf")
        for dc_id in self._placement.holders(video):
            if dc_id == from_dc.dc_id:
                continue
            if allowed is not None and dc_id not in allowed:
                continue
            dc = self._directory.get(dc_id)
            d = haversine_km(from_dc.city.point, dc.city.point)
            if d < best_km:
                best, best_km = dc, d
        return best

    def _next_ranked_dc(
        self, ranking: Sequence[str], current_dc_id: str, video: Video
    ) -> Optional[DataCenter]:
        """The next data center in the client's ranking that holds the video."""
        seen_current = False
        for dc_id in ranking:
            if dc_id == current_dc_id:
                seen_current = True
                continue
            if not seen_current:
                continue
            if self._placement.is_resident(dc_id, video):
                return self._directory.get(dc_id)
        # Fall back to any other ranked holder.
        for dc_id in ranking:
            if dc_id != current_dc_id and self._placement.is_resident(dc_id, video):
                return self._directory.get(dc_id)
        return None

    # ----------------------------------------------------------------- route

    def route(
        self,
        first_server: ContentServer,
        video: Video,
        ranking: Sequence[str],
        now_s: float,
        shard: Optional[int] = None,
    ) -> ServeDecision:
        """Route one request starting at the DNS-chosen server.

        Args:
            first_server: The server the client's DNS answer pointed at.
            video: The requested video.
            ranking: The client's data-center preference order (used to pick
                overflow targets the way the real system keeps them close).
            now_s: Request time, seconds from trace start.
            shard: The video's name shard; overload overflow goes to this
                shard's server in the next-ranked data center (it caches the
                same content).  ``None`` falls back to random servers.

        Returns:
            The :class:`ServeDecision` with the full hop chain.
        """
        decision = ServeDecision(hops=[first_server])
        server = first_server
        # Data centers this client may be redirected to: wherever its DNS
        # ranking can reach, plus wherever it already landed.
        allowed = frozenset(ranking) | {first_server.dc_id}
        for _ in range(MAX_HOPS - 1):
            dc = self._directory.get(server.dc_id)
            if not self._placement.is_resident(dc.dc_id, video):
                holder = None
                if self._rng.random() < self._origin_fetch_probability:
                    origins = [
                        o for o in self._placement.origins(video)
                        if o != dc.dc_id and o in allowed
                    ]
                    if origins:
                        holder = self._directory.get(
                            origins[self._rng.randrange(len(origins))]
                        )
                if holder is None:
                    holder = self._nearest_holder(dc, video, allowed)
                if holder is None:
                    break  # nobody else has it; serve from here regardless
                # The landing data center fetches the content as well, so
                # subsequent requests are served locally (pull-through).
                self._placement.pull_through(dc.dc_id, video)
                server = self._server_in_dc(holder, now_s)
                decision.hops.append(server)
                decision.causes.append(CAUSE_MISS)
                self.miss_redirects += 1
                continue
            if self._is_overloaded(server, dc, now_s):
                shed_local = self._rng.random() < self._intra_shed_fraction
                sibling = (
                    self._sibling_with_headroom(dc, server.ip, now_s) if shed_local else None
                )
                if sibling is not None:
                    server = sibling
                    decision.hops.append(server)
                    decision.causes.append(CAUSE_OVERLOAD_INTRA)
                else:
                    target = self._next_ranked_dc(ranking, dc.dc_id, video)
                    if target is None:
                        sibling = self._sibling_with_headroom(dc, server.ip, now_s)
                        if sibling is None:
                            break
                        server = sibling
                        decision.hops.append(server)
                        decision.causes.append(CAUSE_OVERLOAD_INTRA)
                        self.overload_redirects += 1
                        continue
                    if shard is not None:
                        server = target.server_by_index(shard % target.size)
                    else:
                        server = self._server_in_dc(target, now_s)
                    decision.hops.append(server)
                    decision.causes.append(CAUSE_OVERLOAD_INTER)
                self.overload_redirects += 1
                continue
            if (
                len(decision.hops) == 1
                and self._rebalance_probability
                and self._rng.random() < self._rebalance_probability
            ):
                sibling = self._any_sibling(dc, server.ip)
                if sibling is not None:
                    server = sibling
                    decision.hops.append(server)
                    decision.causes.append(CAUSE_REBALANCE)
                    self.rebalances += 1
                    continue
            break
        self._record_serve(decision.serving_server.ip, now_s)
        return decision
