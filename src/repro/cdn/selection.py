"""DNS-level server selection policies.

This is the first of the paper's two selection mechanisms (Section VI):
"The first is based on DNS resolution which returns the server IP address in
a data center".  The policy sees *which local resolver* is asking and decides
which data center's server to hand back.

Two policies are provided:

* :class:`PreferredDcPolicy` — the "new" (2010) YouTube behaviour the paper
  infers: each resolver has a preferred (lowest-RTT) data center, but the
  answer can deviate because of (a) per-data-center DNS assignment caps that
  shed load during diurnal peaks (Section VII-A, Figure 11), (b) standing
  per-resolver overrides that send some resolvers to a different preferred
  data center (Section VII-B, Figure 12), and (c) a small background
  load-balancing spill (the ~5 % of single-flow sessions that land directly
  on a non-preferred data center in Figure 10a).

* :class:`ProportionalPolicy` — the "old" pre-Google behaviour reported by
  Adhikari et al.: requests go to data centers proportionally to data-center
  size, ignoring the client's location.  Kept as the ablation baseline.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional, Sequence

from repro.cdn.datacenter import ContentServer, DataCenterDirectory
from repro.net.dns import Answer

#: Short TTL so the authoritative policy keeps per-request control.
DEFAULT_TTL_S = 20.0


def parse_shard(hostname: str) -> int:
    """Extract the shard index from a ``v<k>.lscache...`` hostname.

    Raises:
        ValueError: If the hostname is not in the sharded form.
    """
    label = hostname.split(".", 1)[0]
    if not label.startswith("v") or not label[1:].isdigit():
        raise ValueError(f"not a sharded content hostname: {hostname!r}")
    return int(label[1:])


class SelectionPolicy(abc.ABC):
    """Base class: a :class:`repro.net.dns.NameMapper` over a data-center set.

    Subclasses own their randomness (seeded at construction) so that a
    simulated world is reproducible from its seed alone.
    """

    def __init__(self, directory: DataCenterDirectory, ttl_s: float = DEFAULT_TTL_S):
        self._directory = directory
        self._ttl_s = ttl_s
        #: Total answers handed out per data center (diagnostics only).
        self.assignments: Dict[str, int] = {}

    @abc.abstractmethod
    def select_dc(self, resolver_id: str, now_s: float) -> str:
        """Pick the data center for one query."""

    @abc.abstractmethod
    def ranking_for(self, resolver_id: str) -> List[str]:
        """The resolver's data-center preference order (best first)."""

    def server_for_shard(self, dc_id: str, shard: int) -> ContentServer:
        """The data center's server responsible for a name shard.

        The shard-to-server mapping is what concentrates a hot video's
        requests on a single machine per data center (Figure 15).
        """
        dc = self._directory.get(dc_id)
        return dc.server_by_index(shard % dc.size)

    def map_name(self, hostname: str, resolver_id: str, now_s: float) -> Answer:
        """Resolve a sharded content hostname for a querying resolver."""
        shard = parse_shard(hostname)
        dc_id = self.select_dc(resolver_id, now_s)
        self.assignments[dc_id] = self.assignments.get(dc_id, 0) + 1
        server = self.server_for_shard(dc_id, shard)
        return Answer(ip=server.ip, ttl_s=self._ttl_s)


class PreferredDcPolicy(SelectionPolicy):
    """Preferred-data-center selection with caps, overrides and spill.

    Args:
        directory: All data centers (only those in rankings are eligible).
        rankings: Per-resolver data-center preference order, best (lowest
            RTT) first.  Standing overrides — the Figure 12 mechanism — are
            expressed simply as a different ranking for that resolver.
        dns_capacity_per_hour: Optional per-data-center cap on DNS
            assignments per hour; when the preferred data center's budget is
            exhausted the answer falls through to the next ranked one (the
            Figure 11 mechanism).
        spill_probability: Background probability that an answer skips the
            preferred data center even with budget available.
        seed: RNG seed.
        ttl_s: TTL of the answers.
    """

    def __init__(
        self,
        directory: DataCenterDirectory,
        rankings: Dict[str, Sequence[str]],
        dns_capacity_per_hour: Optional[Dict[str, float]] = None,
        spill_probability: float = 0.0,
        seed: int = 0,
        ttl_s: float = DEFAULT_TTL_S,
    ):
        super().__init__(directory, ttl_s)
        if not rankings:
            raise ValueError("rankings must not be empty")
        for resolver_id, ranking in rankings.items():
            if len(ranking) < 2:
                raise ValueError(f"ranking for {resolver_id!r} needs >= 2 data centers")
        self._rankings: Dict[str, List[str]] = {r: list(v) for r, v in rankings.items()}
        if not 0.0 <= spill_probability < 1.0:
            raise ValueError("spill_probability must be in [0, 1)")
        self._capacity = dict(dns_capacity_per_hour or {})
        self._spill_probability = spill_probability
        self._rng = random.Random(seed)
        # dc_id -> [hour_index, assignments_this_hour]
        self._hour_counts: Dict[str, List[float]] = {}

    def ranking_for(self, resolver_id: str) -> List[str]:
        """Preference order for a resolver.

        Raises:
            KeyError: If the resolver has no configured ranking.
        """
        try:
            return list(self._rankings[resolver_id])
        except KeyError:
            raise KeyError(f"no ranking configured for resolver {resolver_id!r}") from None

    def preferred_dc(self, resolver_id: str) -> str:
        """The resolver's preferred data center."""
        return self.ranking_for(resolver_id)[0]

    def _budget_left(self, dc_id: str, now_s: float) -> bool:
        cap = self._capacity.get(dc_id)
        if cap is None:
            return True
        hour = int(now_s // 3600.0)
        entry = self._hour_counts.get(dc_id)
        if entry is None or entry[0] != hour:
            entry = [hour, 0.0]
            self._hour_counts[dc_id] = entry
        return entry[1] < cap

    def _consume_budget(self, dc_id: str, now_s: float) -> None:
        if dc_id in self._capacity:
            hour = int(now_s // 3600.0)
            entry = self._hour_counts.setdefault(dc_id, [hour, 0.0])
            if entry[0] != hour:
                entry[0] = hour
                entry[1] = 0.0
            entry[1] += 1.0

    def select_dc(self, resolver_id: str, now_s: float) -> str:
        """Pick the data center: preferred unless spilled or over budget."""
        ranking = self._rankings.get(resolver_id)
        if ranking is None:
            raise KeyError(f"no ranking configured for resolver {resolver_id!r}")
        start = 0
        if self._spill_probability and self._rng.random() < self._spill_probability:
            # Background load balancing: hand out a nearby alternate.
            start = 1 if len(ranking) < 3 or self._rng.random() < 0.75 else 2
        for dc_id in ranking[start:]:
            if self._budget_left(dc_id, now_s):
                self._consume_budget(dc_id, now_s)
                return dc_id
        # Every ranked data center is over budget: fall back to preferred.
        return ranking[start]


class ProportionalPolicy(SelectionPolicy):
    """Old-infrastructure baseline: pick data centers by size, not locality.

    Adhikari et al. (IMC 2010) found the pre-Google YouTube "does not
    consider geographical location of clients and ... requests are directed
    to data centers proportionally to the data center size".

    Args:
        directory: All data centers.
        eligible: Data centers participating (defaults to all).
        seed: RNG seed.
        ttl_s: Answer TTL.
    """

    def __init__(
        self,
        directory: DataCenterDirectory,
        eligible: Optional[Sequence[str]] = None,
        seed: int = 0,
        ttl_s: float = DEFAULT_TTL_S,
    ):
        super().__init__(directory, ttl_s)
        ids = list(eligible) if eligible is not None else directory.ids
        if not ids:
            raise ValueError("no eligible data centers")
        self._ids = ids
        weights = [float(directory.get(dc_id).size) for dc_id in ids]
        total = sum(weights)
        self._cum: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cum.append(acc)
        self._rng = random.Random(seed)
        # Size-descending order doubles as the "ranking" for redirection.
        self._by_size = sorted(ids, key=lambda d: -directory.get(d).size)

    def ranking_for(self, resolver_id: str) -> List[str]:
        """Size-descending order — the old policy has no locality."""
        return list(self._by_size)

    def select_dc(self, resolver_id: str, now_s: float) -> str:
        """Sample a data center proportionally to its size."""
        u = self._rng.random()
        for dc_id, threshold in zip(self._ids, self._cum):
            if u <= threshold:
                return dc_id
        return self._ids[-1]
