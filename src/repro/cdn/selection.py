"""DNS-level server selection policies and the pluggable policy registry.

This is the first of the paper's two selection mechanisms (Section VI):
"The first is based on DNS resolution which returns the server IP address in
a data center".  The policy sees *which local resolver* is asking and decides
which data center's server to hand back.

Two policies live here:

* :class:`PreferredDcPolicy` — the "new" (2010) YouTube behaviour the paper
  infers: each resolver has a preferred (lowest-RTT) data center, but the
  answer can deviate because of (a) per-data-center DNS assignment caps that
  shed load during diurnal peaks (Section VII-A, Figure 11), (b) standing
  per-resolver overrides that send some resolvers to a different preferred
  data center (Section VII-B, Figure 12), and (c) a small background
  load-balancing spill (the ~5 % of single-flow sessions that land directly
  on a non-preferred data center in Figure 10a).

* :class:`ProportionalPolicy` — the "old" pre-Google behaviour reported by
  Adhikari et al.: requests go to data centers proportionally to data-center
  size, ignoring the client's location.  Kept as the ablation baseline.

Selection strategies from the wider literature (Go-With-The-Winner, ISP
traffic engineering, routing-aware partitioning) live in
:mod:`repro.cdn.policies`.  All of them — including the two above — are
reachable through the **policy registry**: :func:`register_policy` binds a
kind string to a factory over a :class:`PolicyContext`, and
:func:`make_policy` is the single constructor every world builder goes
through.  :func:`registered_policy_kinds` is the authoritative list the
spec layer, the grid axis validation and the CLI all consult, so adding a
policy here makes it a first-class ``policy`` value everywhere at once.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cdn.datacenter import ContentServer, DataCenterDirectory
from repro.net.dns import Answer

#: Short TTL so the authoritative policy keeps per-request control.
DEFAULT_TTL_S = 20.0


def parse_shard(hostname: str) -> int:
    """Extract the shard index from a ``v<k>.lscache...`` hostname.

    Raises:
        ValueError: If the hostname is not in the sharded form.
    """
    label = hostname.split(".", 1)[0]
    if not label.startswith("v") or not label[1:].isdigit():
        raise ValueError(f"not a sharded content hostname: {hostname!r}")
    return int(label[1:])


class SelectionPolicy(abc.ABC):
    """Base class: a :class:`repro.net.dns.NameMapper` over a data-center set.

    Subclasses own their randomness (seeded at construction) so that a
    simulated world is reproducible from its seed alone.
    """

    def __init__(self, directory: DataCenterDirectory, ttl_s: float = DEFAULT_TTL_S):
        self._directory = directory
        self._ttl_s = ttl_s
        #: Total answers handed out per data center (diagnostics only).
        self.assignments: Dict[str, int] = {}

    @abc.abstractmethod
    def select_dc(self, resolver_id: str, now_s: float) -> str:
        """Pick the data center for one query."""

    @abc.abstractmethod
    def ranking_for(self, resolver_id: str) -> List[str]:
        """The resolver's data-center preference order (best first)."""

    def preferred_now(self, resolver_id: str, now_s: float) -> str:
        """The data center this policy *intends* for a resolver right now.

        This is the simulator-side ground truth the attribution scorer
        (:mod:`repro.eval.attribution`) compares the blind pipeline's
        preferred-DC inference against.  The default — the head of the
        resolver's ranking — is right for every ranking-driven policy;
        time-varying policies (the mid-week shift of
        :class:`repro.cdn.policies.IspTrafficEngineeringPolicy`) override
        it.  Implementations MUST NOT consume policy randomness: ground
        truth is an observation, and observing it must never change what
        a simulated week does.

        Raises:
            KeyError: If the resolver has no configured ranking.
        """
        return self.ranking_for(resolver_id)[0]

    def server_for_shard(self, dc_id: str, shard: int) -> ContentServer:
        """The data center's server responsible for a name shard.

        The shard-to-server mapping is what concentrates a hot video's
        requests on a single machine per data center (Figure 15).
        """
        dc = self._directory.get(dc_id)
        return dc.server_by_index(shard % dc.size)

    def map_name(self, hostname: str, resolver_id: str, now_s: float) -> Answer:
        """Resolve a sharded content hostname for a querying resolver."""
        shard = parse_shard(hostname)
        dc_id = self.select_dc(resolver_id, now_s)
        self.assignments[dc_id] = self.assignments.get(dc_id, 0) + 1
        server = self.server_for_shard(dc_id, shard)
        return Answer(ip=server.ip, ttl_s=self._ttl_s)


class PreferredDcPolicy(SelectionPolicy):
    """Preferred-data-center selection with caps, overrides and spill.

    Args:
        directory: All data centers (only those in rankings are eligible).
        rankings: Per-resolver data-center preference order, best (lowest
            RTT) first.  Standing overrides — the Figure 12 mechanism — are
            expressed simply as a different ranking for that resolver.
        dns_capacity_per_hour: Optional per-data-center cap on DNS
            assignments per hour; when the preferred data center's budget is
            exhausted the answer falls through to the next ranked one (the
            Figure 11 mechanism).
        spill_probability: Background probability that an answer skips the
            preferred data center even with budget available.
        seed: RNG seed.
        ttl_s: TTL of the answers.
    """

    def __init__(
        self,
        directory: DataCenterDirectory,
        rankings: Dict[str, Sequence[str]],
        dns_capacity_per_hour: Optional[Dict[str, float]] = None,
        spill_probability: float = 0.0,
        seed: int = 0,
        ttl_s: float = DEFAULT_TTL_S,
    ):
        super().__init__(directory, ttl_s)
        if not rankings:
            raise ValueError("rankings must not be empty")
        for resolver_id, ranking in rankings.items():
            if len(ranking) < 2:
                raise ValueError(f"ranking for {resolver_id!r} needs >= 2 data centers")
        self._rankings: Dict[str, List[str]] = {r: list(v) for r, v in rankings.items()}
        if not 0.0 <= spill_probability < 1.0:
            raise ValueError("spill_probability must be in [0, 1)")
        self._capacity = dict(dns_capacity_per_hour or {})
        self._spill_probability = spill_probability
        self._rng = random.Random(seed)
        # dc_id -> [hour_index, assignments_this_hour]
        self._hour_counts: Dict[str, List[float]] = {}

    def ranking_for(self, resolver_id: str) -> List[str]:
        """Preference order for a resolver.

        Raises:
            KeyError: If the resolver has no configured ranking.
        """
        try:
            return list(self._rankings[resolver_id])
        except KeyError:
            raise KeyError(f"no ranking configured for resolver {resolver_id!r}") from None

    def preferred_dc(self, resolver_id: str) -> str:
        """The resolver's preferred data center."""
        return self.ranking_for(resolver_id)[0]

    def preferred_now(self, resolver_id: str, now_s: float) -> str:
        """Head of the resolver's ranking (no copy — called per request)."""
        ranking = self._rankings.get(resolver_id)
        if ranking is None:
            raise KeyError(f"no ranking configured for resolver {resolver_id!r}")
        return ranking[0]

    def _budget_left(self, dc_id: str, now_s: float) -> bool:
        cap = self._capacity.get(dc_id)
        if cap is None:
            return True
        hour = int(now_s // 3600.0)
        entry = self._hour_counts.get(dc_id)
        if entry is None or entry[0] != hour:
            entry = [hour, 0.0]
            self._hour_counts[dc_id] = entry
        return entry[1] < cap

    def _consume_budget(self, dc_id: str, now_s: float) -> None:
        if dc_id in self._capacity:
            hour = int(now_s // 3600.0)
            entry = self._hour_counts.setdefault(dc_id, [hour, 0.0])
            if entry[0] != hour:
                entry[0] = hour
                entry[1] = 0.0
            entry[1] += 1.0

    def select_dc(self, resolver_id: str, now_s: float) -> str:
        """Pick the data center: preferred unless spilled or over budget."""
        ranking = self._rankings.get(resolver_id)
        if ranking is None:
            raise KeyError(f"no ranking configured for resolver {resolver_id!r}")
        start = 0
        if self._spill_probability and self._rng.random() < self._spill_probability:
            # Background load balancing: hand out a nearby alternate.
            start = 1 if len(ranking) < 3 or self._rng.random() < 0.75 else 2
        for dc_id in ranking[start:]:
            if self._budget_left(dc_id, now_s):
                self._consume_budget(dc_id, now_s)
                return dc_id
        # Every ranked data center is over budget: fall back to preferred.
        return ranking[start]


class ProportionalPolicy(SelectionPolicy):
    """Old-infrastructure baseline: pick data centers by size, not locality.

    Adhikari et al. (IMC 2010) found the pre-Google YouTube "does not
    consider geographical location of clients and ... requests are directed
    to data centers proportionally to the data center size".

    Args:
        directory: All data centers.
        eligible: Data centers participating (defaults to all).
        seed: RNG seed.
        ttl_s: Answer TTL.
    """

    def __init__(
        self,
        directory: DataCenterDirectory,
        eligible: Optional[Sequence[str]] = None,
        seed: int = 0,
        ttl_s: float = DEFAULT_TTL_S,
    ):
        super().__init__(directory, ttl_s)
        ids = list(eligible) if eligible is not None else directory.ids
        if not ids:
            raise ValueError("no eligible data centers")
        self._ids = ids
        weights = [float(directory.get(dc_id).size) for dc_id in ids]
        total = sum(weights)
        self._cum: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cum.append(acc)
        self._rng = random.Random(seed)
        # Size-descending order doubles as the "ranking" for redirection.
        self._by_size = sorted(ids, key=lambda d: -directory.get(d).size)

    def ranking_for(self, resolver_id: str) -> List[str]:
        """Size-descending order — the old policy has no locality."""
        return list(self._by_size)

    def preferred_now(self, resolver_id: str, now_s: float) -> str:
        """The largest data center (every resolver's ranking head)."""
        return self._by_size[0]

    def select_dc(self, resolver_id: str, now_s: float) -> str:
        """Sample a data center proportionally to its size."""
        u = self._rng.random()
        for dc_id, threshold in zip(self._ids, self._cum):
            if u <= threshold:
                return dc_id
        return self._ids[-1]


# --------------------------------------------------------------------------
# The policy registry
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyContext:
    """Everything a world builder hands a policy factory.

    One context serves every registered kind: factories pick the fields
    they need and ignore the rest, so adding a policy never changes the
    :func:`repro.sim.scenarios.build_world` call site.

    Attributes:
        directory: All data centers of the world.
        rankings: Per-resolver preference order, best first.  Already
            reflects the scenario's ranking basis (RTT, or distance for
            the ``"geographic"`` kind) and its divergent-resolver
            overrides.
        eligible: DNS-eligible data-center IDs (ranking universe).
        rtt_ms: Vantage-to-data-center floor RTTs — the link-cost signal
            racing and traffic-engineering policies steer on.
        dns_capacity_per_hour: Per-data-center hourly assignment caps.
        spill_probability: Background non-preferred spill probability.
        seed: Policy RNG seed (already derived per scenario).
        ttl_s: TTL of the policy's DNS answers.
        duration_s: Simulation window — lets time-varying policies place
            epoch boundaries (e.g. a mid-week steering shift).
    """

    directory: DataCenterDirectory
    rankings: Mapping[str, Sequence[str]]
    eligible: Tuple[str, ...]
    rtt_ms: Mapping[str, float] = field(default_factory=dict)
    dns_capacity_per_hour: Mapping[str, float] = field(default_factory=dict)
    spill_probability: float = 0.0
    seed: int = 0
    ttl_s: float = DEFAULT_TTL_S
    duration_s: float = 7 * 86400.0


PolicyFactory = Callable[[PolicyContext], SelectionPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}


class UnknownPolicyError(ValueError):
    """Raised for a policy kind no factory is registered under."""

    def __init__(self, kind: object):
        self.kind = kind
        super().__init__(
            f"unknown policy {kind!r}; registered policies: "
            f"{', '.join(registered_policy_kinds())}"
        )


def register_policy(kind: str) -> Callable[[PolicyFactory], PolicyFactory]:
    """Class/function decorator binding a kind string to a policy factory.

    Raises:
        ValueError: If the kind is empty or already registered.
    """
    if not kind or not isinstance(kind, str):
        raise ValueError(f"policy kind must be a non-empty string, got {kind!r}")

    def decorate(factory: PolicyFactory) -> PolicyFactory:
        if kind in _REGISTRY:
            raise ValueError(f"policy kind {kind!r} is already registered")
        _REGISTRY[kind] = factory
        return factory

    return decorate


def _ensure_builtin_policies() -> None:
    # The literature policies register on import; importing lazily keeps
    # this module cycle-free (policies.py subclasses PreferredDcPolicy).
    import repro.cdn.policies  # noqa: F401


def registered_policy_kinds() -> Tuple[str, ...]:
    """Every registered policy kind, sorted (the spec/CLI vocabulary)."""
    _ensure_builtin_policies()
    return tuple(sorted(_REGISTRY))


def make_policy(kind: str, context: PolicyContext) -> SelectionPolicy:
    """Construct a policy by registered kind.

    Raises:
        UnknownPolicyError: For unregistered kinds (a :class:`ValueError`;
            the message names every registered policy).
    """
    _ensure_builtin_policies()
    factory = _REGISTRY.get(kind)
    if factory is None:
        raise UnknownPolicyError(kind)
    return factory(context)


@register_policy("preferred")
def _make_preferred(context: PolicyContext) -> PreferredDcPolicy:
    """The paper's inferred policy (RTT-ranked rankings)."""
    return PreferredDcPolicy(
        directory=context.directory,
        rankings=dict(context.rankings),
        dns_capacity_per_hour=dict(context.dns_capacity_per_hour),
        spill_probability=context.spill_probability,
        seed=context.seed,
        ttl_s=context.ttl_s,
    )


@register_policy("geographic")
def _make_geographic(context: PolicyContext) -> PreferredDcPolicy:
    """Distance-ranked ablation: same mechanism, distance-ordered rankings.

    The ranking basis is chosen by the world builder (it computes the
    context's rankings from great-circle distance for this kind), so the
    factory is the preferred one under another name.
    """
    return _make_preferred(context)


@register_policy("proportional")
def _make_proportional(context: PolicyContext) -> ProportionalPolicy:
    """Old-infrastructure ablation (size-proportional, no locality)."""
    # Keeps the historical default TTL (not the scenario's) — the answers
    # of the pre-Google infrastructure were not under YouTube's control.
    return ProportionalPolicy(
        directory=context.directory,
        eligible=list(context.eligible),
        seed=context.seed,
    )
