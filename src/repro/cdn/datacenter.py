"""Data centers and content servers.

A data center is a city-anchored group of content servers whose addresses
live in dedicated /24s — matching the paper's observation that servers in
the same /24 always cluster into the same data center (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geo.cities import City
from repro.net.ip import IPv4Network, Ipv4Allocator, format_ip
from repro.net.latency import AccessTechnology, Site


@dataclass(frozen=True)
class ContentServer:
    """One content server.

    Attributes:
        ip: Server address (integer IPv4).
        dc_id: Identifier of the owning data center.
        index: Server index inside its data center.
    """

    ip: int
    dc_id: str
    index: int

    @property
    def ip_str(self) -> str:
        """Dotted-quad address."""
        return format_ip(self.ip)


@dataclass
class DataCenter:
    """A content data center.

    Attributes:
        dc_id: Stable identifier, e.g. ``"dc-amsterdam"``.
        city: Physical location.
        servers: Server fleet, in index order.
        networks: The /24s the fleet occupies.
        asn: AS originating the data center's prefixes (Google's 15169 for
            almost all; the EU2-internal data center sits in the host ISP's
            AS — the "Same AS" column of Table II).
        server_capacity_per_hour: Video serves one server sustains per hour
            before the redirection engine starts shedding load (Figure 15's
            ceiling).  ``None`` disables the limit.
    """

    dc_id: str
    city: City
    servers: List[ContentServer] = field(default_factory=list)
    networks: List[IPv4Network] = field(default_factory=list)
    asn: int = 0
    server_capacity_per_hour: Optional[float] = None

    @property
    def size(self) -> int:
        """Number of servers (the 'data center size' of the old policy)."""
        return len(self.servers)

    def server_site(self, server: ContentServer) -> Site:
        """Network position of one of this data center's servers."""
        if server.dc_id != self.dc_id:
            raise ValueError(f"server {server.ip_str} is not in {self.dc_id}")
        return Site(
            key=f"srv:{server.ip_str}",
            point=self.city.point,
            access=AccessTechnology.DATACENTER,
            group=self.dc_id,
        )

    def server_by_index(self, index: int) -> ContentServer:
        """Server at a given fleet index."""
        return self.servers[index]

    def __str__(self) -> str:
        return f"{self.dc_id}({self.city.name}, {self.size} servers)"


def build_datacenter(
    dc_id: str,
    city: City,
    num_servers: int,
    allocator: Ipv4Allocator,
    asn: int,
    server_capacity_per_hour: Optional[float] = None,
) -> DataCenter:
    """Construct a data center, allocating /24s for its fleet.

    Servers are packed into consecutive /24s (at most 254 usable hosts per
    /24 — .0 and .255 are skipped as a nod to convention).

    Args:
        dc_id: Identifier for the new data center.
        city: Anchor city.
        num_servers: Fleet size.
        allocator: Address allocator for the owning AS's pool.
        asn: Owning AS number.
        server_capacity_per_hour: Per-server serve capacity.

    Returns:
        The populated :class:`DataCenter`.
    """
    if num_servers < 1:
        raise ValueError("a data center needs at least one server")
    dc = DataCenter(
        dc_id=dc_id,
        city=city,
        asn=asn,
        server_capacity_per_hour=server_capacity_per_hour,
    )
    remaining = num_servers
    index = 0
    while remaining > 0:
        network = allocator.allocate_network(24)
        dc.networks.append(network)
        usable = [ip for ip in network.hosts()][1:-1]
        for ip in usable[:remaining]:
            dc.servers.append(ContentServer(ip=ip, dc_id=dc_id, index=index))
            index += 1
        remaining = num_servers - len(dc.servers)
    return dc


class DataCenterDirectory:
    """Index of all data centers and their servers by address."""

    def __init__(self, datacenters: List[DataCenter]):
        self._dcs: Dict[str, DataCenter] = {}
        self._server_dc: Dict[int, str] = {}
        self._servers: Dict[int, ContentServer] = {}
        for dc in datacenters:
            if dc.dc_id in self._dcs:
                raise ValueError(f"duplicate data center id: {dc.dc_id}")
            self._dcs[dc.dc_id] = dc
            for server in dc.servers:
                if server.ip in self._server_dc:
                    raise ValueError(f"duplicate server address: {server.ip_str}")
                self._server_dc[server.ip] = dc.dc_id
                self._servers[server.ip] = server

    def __iter__(self):
        return iter(self._dcs.values())

    def __len__(self) -> int:
        return len(self._dcs)

    def get(self, dc_id: str) -> DataCenter:
        """Data center by ID.

        Raises:
            KeyError: For unknown IDs.
        """
        try:
            return self._dcs[dc_id]
        except KeyError:
            raise KeyError(f"unknown data center: {dc_id!r}") from None

    def dc_of_server(self, server_ip: int) -> Optional[DataCenter]:
        """The data center owning an address, or ``None``."""
        dc_id = self._server_dc.get(server_ip)
        return None if dc_id is None else self._dcs[dc_id]

    def server_at(self, server_ip: int) -> Optional[ContentServer]:
        """The server object at an address, or ``None``."""
        return self._servers.get(server_ip)

    @property
    def ids(self) -> List[str]:
        """All data center IDs, in insertion order."""
        return list(self._dcs)
