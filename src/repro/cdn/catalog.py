"""Video catalog: identifiers, popularity, sizes, featured videos.

The catalog drives the workload's popularity structure, which in turn drives
two of the paper's four non-preferred-access causes: "video of the day"
hot-spots (Section VII-C, Figures 13-16) and the cold tail of videos accessed
exactly once (Figures 13, 17, 18).
"""

from __future__ import annotations

import enum
import math
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

#: YouTube video identifiers are 11 characters of this alphabet.
_VIDEO_ID_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_"
VIDEO_ID_LENGTH = 11

#: Number of content-server name shards (``v<k>.lscache...``).  A video's
#: shard pins it to a specific server inside whichever data center DNS
#: picks, which is what lets one hot video overload one server (Figure 15).
DEFAULT_NUM_SHARDS = 192


class Resolution(enum.Enum):
    """Playback resolutions with their nominal stream bitrates (2010-era)."""

    R240 = 240
    R360 = 360
    R480 = 480
    R720 = 720

    @property
    def bitrate_kbps(self) -> int:
        """Nominal video bitrate for the resolution, kbit/s."""
        return _BITRATES_KBPS[self]

    @property
    def label(self) -> str:
        """Short label, e.g. ``"360p"``."""
        return f"{self.value}p"


_BITRATES_KBPS = {
    Resolution.R240: 300,
    Resolution.R360: 550,
    Resolution.R480: 900,
    Resolution.R720: 1800,
}


def encode_video_id(index: int) -> str:
    """Deterministically encode a catalog index as an 11-char YouTube-style ID.

    Bijective on the catalog range, so IDs are unique by construction.  A
    multiplicative scramble keeps consecutive indices from producing
    near-identical strings.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    # Scramble with a fixed odd multiplier modulo 64^11 (bijective).
    space = len(_VIDEO_ID_ALPHABET) ** VIDEO_ID_LENGTH
    scrambled = (index * 6364136223846793005 + 1442695040888963407) % space
    chars = []
    for _ in range(VIDEO_ID_LENGTH):
        scrambled, digit = divmod(scrambled, len(_VIDEO_ID_ALPHABET))
        chars.append(_VIDEO_ID_ALPHABET[digit])
    return "".join(chars)


def shard_of(video_id: str, num_shards: int = DEFAULT_NUM_SHARDS) -> int:
    """The name shard a video belongs to (stable hash of its ID)."""
    return zlib.crc32(video_id.encode()) % num_shards


def hostname_for_video(video_id: str, num_shards: int = DEFAULT_NUM_SHARDS) -> str:
    """The content-server hostname embedded in the video page (Section II).

    Mirrors the real system's sharded ``v<k>.lscache<m>.c.youtube.com``
    scheme: the name identifies a shard, and the authoritative DNS decides
    which data center's server for that shard the client should use.
    """
    return f"v{shard_of(video_id, num_shards)}.lscache.youtube.sim"


@dataclass(frozen=True)
class Video:
    """One catalog entry.

    Attributes:
        video_id: 11-character identifier.
        rank: Popularity rank (0 = most popular).
        duration_s: Playback duration in seconds.
        weight: Unnormalised popularity weight (Zipf in rank).
    """

    video_id: str
    rank: int
    duration_s: float
    weight: float

    def size_bytes(self, resolution: Resolution) -> int:
        """Encoded file size at a given resolution."""
        return int(self.duration_s * resolution.bitrate_kbps * 1000 / 8)


class VideoCatalog:
    """A Zipf-popularity catalog with per-day featured videos.

    Popularity follows a Zipf-Mandelbrot law, ``weight ∝ (rank + q)^-α``.
    The shift ``q`` flattens the head the way a scaled-down catalog needs:
    with pure Zipf over a few thousand titles the single top video would
    absorb ~10 % of all requests, which no real edge trace shows; the shift
    keeps individual steady-state videos below a fraction of a percent so
    that only the *featured* mechanism can create true hot-spots.

    Args:
        size: Number of videos.
        zipf_alpha: Zipf exponent for the popularity weights.
        seed: Seed for durations and featured-video choice.
        num_featured_days: Number of simulated days that get a featured
            "video of the day" (the paper observes exactly-24-hour features).
        featured_share: Fraction of request traffic captured by the day's
            featured video during its feature window.
        mandelbrot_shift: The shift ``q``; defaults to ``size / 100``.
    """

    def __init__(
        self,
        size: int,
        zipf_alpha: float = 1.0,
        seed: int = 0,
        num_featured_days: int = 7,
        featured_share: float = 0.05,
        mandelbrot_shift: Optional[float] = None,
    ):
        if size < 10:
            raise ValueError("catalog needs at least 10 videos")
        if not 0.0 <= featured_share < 1.0:
            raise ValueError("featured_share must be in [0, 1)")
        self._size = size
        self._alpha = zipf_alpha
        self._featured_share = featured_share
        rng = np.random.default_rng(seed)

        if mandelbrot_shift is None:
            mandelbrot_shift = max(4.0, size / 100.0)
        if mandelbrot_shift < 0:
            raise ValueError("mandelbrot_shift must be non-negative")
        self._shift = mandelbrot_shift
        ranks = np.arange(1, size + 1, dtype=np.float64)
        weights = (ranks + mandelbrot_shift) ** (-zipf_alpha)
        self._cumulative = np.cumsum(weights)
        self._total_weight = float(self._cumulative[-1])

        # Log-normal durations: median ~2 minutes, long tail, clipped to
        # [20 s, 45 min] — the 2010-era user-generated-content mix.
        durations = np.clip(rng.lognormal(mean=math.log(120.0), sigma=0.7, size=size), 20.0, 2700.0)
        self._videos: List[Video] = [
            Video(
                video_id=encode_video_id(i),
                rank=i,
                duration_s=float(durations[i]),
                weight=float(weights[i]),
            )
            for i in range(size)
        ]
        self._by_id: Dict[str, Video] = {v.video_id: v for v in self._videos}

        # Featured videos: drawn from deep in the tail, so that essentially
        # all of their traffic comes from the 24-hour feature window — the
        # paper's hot videos show day-long spikes and near-silence otherwise
        # (Figure 14).
        band_lo, band_hi = size // 3, max(size // 3 + num_featured_days, size // 2)
        picks = rng.choice(np.arange(band_lo, band_hi), size=num_featured_days, replace=False)
        self._featured_by_day: Dict[int, Video] = {
            day: self._videos[int(idx)] for day, idx in enumerate(sorted(picks))
        }

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        return iter(self._videos)

    def get(self, video_id: str) -> Video:
        """Video by ID.

        Raises:
            KeyError: For unknown IDs.
        """
        try:
            return self._by_id[video_id]
        except KeyError:
            raise KeyError(f"unknown video: {video_id!r}") from None

    def by_rank(self, rank: int) -> Video:
        """Video at a popularity rank (0 = hottest)."""
        return self._videos[rank]

    def featured_on_day(self, day: int) -> Optional[Video]:
        """The "video of the day" for a simulated day index, if any."""
        return self._featured_by_day.get(day)

    @property
    def featured_videos(self) -> List[Video]:
        """All featured videos in day order."""
        return [self._featured_by_day[d] for d in sorted(self._featured_by_day)]

    def sample(self, u: float, t_s: Optional[float] = None) -> Video:
        """Sample a video from the popularity distribution.

        Args:
            u: A uniform ``[0, 1)`` variate supplied by the caller (keeps
                the catalog stateless so every workload stream owns its RNG).
            t_s: Simulation time in seconds; when it falls inside a feature
                window, the featured video absorbs ``featured_share`` of the
                probability mass (the paper's videos were "played by default
                when accessing the www.youtube.com web page for exactly 24
                hours").

        Returns:
            The sampled :class:`Video`.
        """
        if not 0.0 <= u < 1.0:
            raise ValueError(f"u out of [0,1): {u}")
        if t_s is not None:
            featured = self._featured_by_day.get(int(t_s // 86400.0))
            if featured is not None:
                if u < self._featured_share:
                    return featured
                u = (u - self._featured_share) / (1.0 - self._featured_share)
        target = u * self._total_weight
        index = int(np.searchsorted(self._cumulative, target, side="right"))
        return self._videos[min(index, self._size - 1)]

    def popularity_cutoff_rank(self, mass_fraction: float) -> int:
        """Smallest rank prefix capturing ``mass_fraction`` of request mass.

        Used by content placement: the head of the catalog (e.g. the ranks
        covering 70 % of requests) is replicated to every data center.
        """
        if not 0.0 < mass_fraction <= 1.0:
            raise ValueError("mass_fraction must be in (0, 1]")
        target = mass_fraction * self._total_weight
        return int(np.searchsorted(self._cumulative, target, side="left")) + 1
