"""The simulated YouTube CDN.

Mechanism-for-mechanism model of the system the paper reverse-engineers:

* a video catalog with Zipf popularity and "video of the day" features
  (:mod:`repro.cdn.catalog`);
* data centers hosting content servers in /24s of the Google AS
  (:mod:`repro.cdn.datacenter`);
* content placement — popular titles everywhere, cold titles at a single
  origin until pulled through (:mod:`repro.cdn.store`);
* DNS-level server selection policies, including the preferred-data-center
  policy with load-aware spillover and per-resolver overrides, plus the old
  size-proportional policy as a baseline (:mod:`repro.cdn.selection`);
* application-layer redirection at the content servers
  (:mod:`repro.cdn.redirection`);
* the assembled system (:mod:`repro.cdn.cluster`).
"""

from repro.cdn.catalog import Resolution, Video, VideoCatalog, hostname_for_video, shard_of
from repro.cdn.datacenter import ContentServer, DataCenter
from repro.cdn.store import ContentPlacement
from repro.cdn.selection import (
    PreferredDcPolicy,
    ProportionalPolicy,
    SelectionPolicy,
)
from repro.cdn.redirection import RedirectionEngine, ServeDecision
from repro.cdn.cluster import CdnSystem, FlowEvent, RequestOutcome

__all__ = [
    "Resolution",
    "Video",
    "VideoCatalog",
    "hostname_for_video",
    "shard_of",
    "ContentServer",
    "DataCenter",
    "ContentPlacement",
    "PreferredDcPolicy",
    "ProportionalPolicy",
    "SelectionPolicy",
    "RedirectionEngine",
    "ServeDecision",
    "CdnSystem",
    "FlowEvent",
    "RequestOutcome",
]
