"""Selection strategies from the wider CDN literature.

The paper infers one particular mechanism — a per-resolver preferred data
center with caps, overrides and spill (:class:`~repro.cdn.selection.
PreferredDcPolicy`).  ROADMAP item 3 asks whether the paper's *blind*
inference methodology survives when the mechanism itself changes, so this
module adds three strategies the literature proposes, each registered as a
first-class ``policy`` kind:

* ``"gwtw"`` — :class:`GoWithTheWinnerPolicy`, after Liu, Sitaraman and
  Towsley's "go-with-the-winner" principle: the client races a few
  candidate servers per chunk and commits to whichever answers first, with
  per-session stickiness.  There is no authoritative preference any more —
  the winner is whoever the (noisy) network favoured this time.
* ``"isp-te"`` — :class:`IspTrafficEngineeringPolicy`, after Frank et al.'s
  content-aware traffic engineering: the *ISP-side resolver* steers
  requests across candidate data centers with a weight table derived from
  link costs, and re-solves the table mid-week when a link's cost changes
  — assignments shift under the analysis pipeline's feet.
* ``"partition"`` — :class:`PartitionedRankingPolicy`, after Gürsun's
  routing-aware address-space partitioning: rankings are computed once per
  partition of the resolver address space and shared by every resolver in
  a partition, rather than being a per-/24 decision.

All three draw their randomness from a seed handed in at construction, so
a simulated week stays reproducible from its master seed alone, and all
three answer :meth:`~repro.cdn.selection.SelectionPolicy.preferred_now`
without consuming randomness — the ground-truth log must never perturb
the week it describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cdn.datacenter import DataCenterDirectory
from repro.cdn.selection import (
    DEFAULT_TTL_S,
    PolicyContext,
    PreferredDcPolicy,
    SelectionPolicy,
    register_policy,
)

#: Fallback candidate RTT when the context carries no measurement (ms).
_DEFAULT_RTT_MS = 80.0


@dataclass(frozen=True)
class RaceOutcome:
    """Ground truth of one Go-With-The-Winner race (diagnostics/tests).

    Attributes:
        resolver_id: The racing resolver.
        t_s: Race time.
        candidates: The raced data centers, in ranking order.
        answered: The subset that answered the probe.
        response_ms: Simulated response time per answering candidate.
        winner: The committed data center.
        fallback: True when nobody answered and the policy fell back to
            the first candidate.
    """

    resolver_id: str
    t_s: float
    candidates: Tuple[str, ...]
    answered: Tuple[str, ...]
    response_ms: Mapping[str, float]
    winner: str
    fallback: bool


class GoWithTheWinnerPolicy(SelectionPolicy):
    """Race k candidates per request, commit to the first responder.

    Each uncommitted query probes the resolver's top ``race_size``
    candidates; every candidate answers independently with probability
    ``answer_probability``, its response time a jittered multiple of the
    vantage RTT.  The earliest response wins and the resolver sticks with
    the winner for ``session_ttl_s`` seconds (the per-session stickiness
    of the scheme) before racing again.

    Args:
        directory: All data centers.
        rankings: Per-resolver candidate order (best first).
        rtt_ms: Vantage RTT per data center (the race's latency floor).
        race_size: Candidates probed per race (>= 2).
        answer_probability: Chance each probed candidate answers.
        session_ttl_s: Commitment lifetime after a race.
        seed: RNG seed.
        ttl_s: DNS answer TTL.
    """

    def __init__(
        self,
        directory: DataCenterDirectory,
        rankings: Mapping[str, Sequence[str]],
        rtt_ms: Optional[Mapping[str, float]] = None,
        race_size: int = 3,
        answer_probability: float = 0.96,
        session_ttl_s: float = 300.0,
        seed: int = 0,
        ttl_s: float = DEFAULT_TTL_S,
    ):
        super().__init__(directory, ttl_s)
        if not rankings:
            raise ValueError("rankings must not be empty")
        if race_size < 2:
            raise ValueError("race_size must be >= 2")
        if not 0.0 < answer_probability <= 1.0:
            raise ValueError("answer_probability must be in (0, 1]")
        if session_ttl_s < 0.0:
            raise ValueError("session_ttl_s must be >= 0")
        self._rankings: Dict[str, List[str]] = {r: list(v) for r, v in rankings.items()}
        self._rtt_ms = dict(rtt_ms or {})
        self._race_size = race_size
        self._answer_probability = answer_probability
        self._session_ttl_s = session_ttl_s
        self._rng = random.Random(seed)
        # resolver_id -> (committed dc, commitment expiry time)
        self._commits: Dict[str, Tuple[str, float]] = {}
        #: Last race run (tests assert the answered-only-winner contract).
        self.last_race: Optional[RaceOutcome] = None
        #: Races run / queries served from a live commitment.
        self.races = 0
        self.sticky_hits = 0

    def ranking_for(self, resolver_id: str) -> List[str]:
        """Candidate order for a resolver.

        Raises:
            KeyError: If the resolver has no configured ranking.
        """
        try:
            return list(self._rankings[resolver_id])
        except KeyError:
            raise KeyError(f"no ranking configured for resolver {resolver_id!r}") from None

    def preferred_now(self, resolver_id: str, now_s: float) -> str:
        """Head of the candidate order (no copy — called per request)."""
        ranking = self._rankings.get(resolver_id)
        if ranking is None:
            raise KeyError(f"no ranking configured for resolver {resolver_id!r}")
        return ranking[0]

    def select_dc(self, resolver_id: str, now_s: float) -> str:
        """Serve from the live commitment, or race and commit."""
        commit = self._commits.get(resolver_id)
        if commit is not None and now_s < commit[1]:
            self.sticky_hits += 1
            return commit[0]
        ranking = self._rankings.get(resolver_id)
        if ranking is None:
            raise KeyError(f"no ranking configured for resolver {resolver_id!r}")
        candidates = tuple(ranking[: self._race_size])
        response_ms: Dict[str, float] = {}
        for dc_id in candidates:
            # Two draws per candidate, answered or not: the RNG schedule
            # must not depend on outcomes, or equal seeds could diverge.
            answered = self._rng.random() < self._answer_probability
            jitter = self._rng.uniform(0.7, 1.8)
            if answered:
                response_ms[dc_id] = self._rtt_ms.get(dc_id, _DEFAULT_RTT_MS) * jitter
        if response_ms:
            winner = min(response_ms, key=lambda d: (response_ms[d], d))
            fallback = False
        else:
            # Total probe loss: behave like a plain preferred answer.
            winner = candidates[0]
            fallback = True
        self._commits[resolver_id] = (winner, now_s + self._session_ttl_s)
        self.races += 1
        self.last_race = RaceOutcome(
            resolver_id=resolver_id,
            t_s=now_s,
            candidates=candidates,
            answered=tuple(sorted(response_ms)),
            response_ms=response_ms,
            winner=winner,
            fallback=fallback,
        )
        return winner


class IspTrafficEngineeringPolicy(SelectionPolicy):
    """ISP-side steering table over candidate data centers, by link cost.

    The ISP's resolver — not the content provider — picks among the top
    ``num_candidates`` data centers with weights proportional to
    ``1 / cost²`` (cost = vantage RTT, floored at 1 ms).  Halfway through
    the window the cheapest link's cost is multiplied by
    ``congestion_factor`` (a peering link congests, or its 95th-percentile
    bill spikes) and the table is re-solved — the mid-week assignment
    shift the attribution scorer must cope with.

    Args:
        directory: All data centers.
        rankings: Per-resolver candidate order (cheapest link first).
        rtt_ms: Link cost proxy per data center.
        duration_s: Window length; the shift lands at its midpoint.
        num_candidates: Steering-table width.
        congestion_factor: Mid-week cost multiplier on the cheapest link.
        seed: RNG seed (weighted sampling).
        ttl_s: DNS answer TTL.
    """

    def __init__(
        self,
        directory: DataCenterDirectory,
        rankings: Mapping[str, Sequence[str]],
        rtt_ms: Optional[Mapping[str, float]] = None,
        duration_s: float = 7 * 86400.0,
        num_candidates: int = 3,
        congestion_factor: float = 2.5,
        seed: int = 0,
        ttl_s: float = DEFAULT_TTL_S,
    ):
        super().__init__(directory, ttl_s)
        if not rankings:
            raise ValueError("rankings must not be empty")
        if num_candidates < 2:
            raise ValueError("num_candidates must be >= 2")
        if congestion_factor <= 1.0:
            raise ValueError("congestion_factor must be > 1")
        if duration_s <= 0.0:
            raise ValueError("duration_s must be positive")
        self._rankings: Dict[str, List[str]] = {r: list(v) for r, v in rankings.items()}
        rtt_ms = dict(rtt_ms or {})
        self.shift_t_s = duration_s / 2.0
        self._rng = random.Random(seed)
        #: Queries steered per data center (volume-conservation invariant:
        #: the counters always sum to the number of queries answered).
        self.steered: Dict[str, int] = {}
        # Two pre-solved tables per resolver: before and after the shift.
        self._tables: Dict[str, Tuple[List[Tuple[str, float]], List[Tuple[str, float]]]] = {}
        for resolver_id, ranking in self._rankings.items():
            candidates = list(ranking[:num_candidates])
            costs = {
                dc_id: max(1.0, rtt_ms.get(dc_id, _DEFAULT_RTT_MS))
                for dc_id in candidates
            }
            early = self._solve(candidates, costs)
            congested = dict(costs)
            congested[candidates[0]] *= congestion_factor
            late = self._solve(candidates, congested)
            self._tables[resolver_id] = (early, late)

    @staticmethod
    def _solve(candidates: List[str], costs: Dict[str, float]) -> List[Tuple[str, float]]:
        """Normalised ``1/cost²`` weights, in candidate order."""
        raw = [(dc_id, 1.0 / costs[dc_id] ** 2) for dc_id in candidates]
        total = sum(w for _dc, w in raw)
        return [(dc_id, w / total) for dc_id, w in raw]

    def _table(self, resolver_id: str, now_s: float) -> List[Tuple[str, float]]:
        try:
            early, late = self._tables[resolver_id]
        except KeyError:
            raise KeyError(f"no steering table for resolver {resolver_id!r}") from None
        return early if now_s < self.shift_t_s else late

    def ranking_for(self, resolver_id: str) -> List[str]:
        """Base candidate order (time-independent; redirection uses it).

        Raises:
            KeyError: If the resolver has no configured ranking.
        """
        try:
            return list(self._rankings[resolver_id])
        except KeyError:
            raise KeyError(f"no ranking configured for resolver {resolver_id!r}") from None

    def steering_weights(self, resolver_id: str, now_s: float) -> Dict[str, float]:
        """The active steering table (weights sum to 1).

        Raises:
            KeyError: If the resolver has no steering table.
        """
        return dict(self._table(resolver_id, now_s))

    def preferred_now(self, resolver_id: str, now_s: float) -> str:
        """Highest-weight steering entry — shifts at the mid-week re-solve."""
        table = self._table(resolver_id, now_s)
        return max(table, key=lambda entry: (entry[1], entry[0]))[0]

    def select_dc(self, resolver_id: str, now_s: float) -> str:
        """Sample the active steering table."""
        table = self._table(resolver_id, now_s)
        u = self._rng.random()
        acc = 0.0
        chosen = table[-1][0]
        for dc_id, weight in table:
            acc += weight
            if u <= acc:
                chosen = dc_id
                break
        self.steered[chosen] = self.steered.get(chosen, 0) + 1
        return chosen


class PartitionedRankingPolicy(PreferredDcPolicy):
    """Rankings per address-space partition, not per resolver.

    Gürsun's routing-aware partitioning observation: the mapping system
    does not decide per /24 — prefixes that route alike are grouped and
    the group shares one decision.  Here the resolver space is chunked
    (sorted, ``partition_size`` per group) and each group's rankings are
    Borda-merged into one shared ranking; everything else (caps, spill,
    budgets) is inherited from :class:`PreferredDcPolicy`.  A divergent
    resolver therefore no longer gets a private override — its vote is
    averaged into its partition, exactly the information loss the
    attribution scorer should see.

    Args:
        directory: All data centers.
        rankings: Per-resolver preference order (pre-partitioning).
        partition_size: Resolvers per partition (>= 1).
        dns_capacity_per_hour: As in :class:`PreferredDcPolicy`.
        spill_probability: As in :class:`PreferredDcPolicy`.
        seed: RNG seed.
        ttl_s: DNS answer TTL.
    """

    def __init__(
        self,
        directory: DataCenterDirectory,
        rankings: Mapping[str, Sequence[str]],
        partition_size: int = 2,
        dns_capacity_per_hour: Optional[Mapping[str, float]] = None,
        spill_probability: float = 0.0,
        seed: int = 0,
        ttl_s: float = DEFAULT_TTL_S,
    ):
        if partition_size < 1:
            raise ValueError("partition_size must be >= 1")
        if not rankings:
            raise ValueError("rankings must not be empty")
        #: resolver_id -> partition index (stable: sorted-id chunks).
        self.partition_of: Dict[str, int] = {}
        members = sorted(rankings)
        merged: Dict[str, List[str]] = {}
        for start in range(0, len(members), partition_size):
            group = members[start : start + partition_size]
            pid = start // partition_size
            shared = self._borda_merge([rankings[r] for r in group])
            for resolver_id in group:
                self.partition_of[resolver_id] = pid
                merged[resolver_id] = list(shared)
        super().__init__(
            directory=directory,
            rankings=merged,
            dns_capacity_per_hour=dict(dns_capacity_per_hour or {}),
            spill_probability=spill_probability,
            seed=seed,
            ttl_s=ttl_s,
        )

    @staticmethod
    def _borda_merge(rankings: Sequence[Sequence[str]]) -> List[str]:
        """Rank-sum (Borda) merge; ties break by the first member's order.

        Raises:
            ValueError: If the members rank different data-center sets.
        """
        first = list(rankings[0])
        universe = set(first)
        for ranking in rankings[1:]:
            if set(ranking) != universe:
                raise ValueError(
                    "partition members must rank the same data centers"
                )
        scores = {dc_id: 0 for dc_id in first}
        for ranking in rankings:
            for position, dc_id in enumerate(ranking):
                scores[dc_id] += position
        return sorted(first, key=lambda dc_id: (scores[dc_id], first.index(dc_id)))


@register_policy("gwtw")
def _make_gwtw(context: PolicyContext) -> GoWithTheWinnerPolicy:
    """Go-With-The-Winner: race candidates, commit to the first responder."""
    return GoWithTheWinnerPolicy(
        directory=context.directory,
        rankings=dict(context.rankings),
        rtt_ms=dict(context.rtt_ms),
        seed=context.seed,
        ttl_s=context.ttl_s,
    )


@register_policy("isp-te")
def _make_isp_te(context: PolicyContext) -> IspTrafficEngineeringPolicy:
    """ISP traffic engineering: link-cost steering, mid-week re-solve."""
    return IspTrafficEngineeringPolicy(
        directory=context.directory,
        rankings=dict(context.rankings),
        rtt_ms=dict(context.rtt_ms),
        duration_s=context.duration_s,
        seed=context.seed,
        ttl_s=context.ttl_s,
    )


@register_policy("partition")
def _make_partition(context: PolicyContext) -> PartitionedRankingPolicy:
    """Routing-aware partitioning: shared rankings per resolver partition."""
    return PartitionedRankingPolicy(
        directory=context.directory,
        rankings=dict(context.rankings),
        dns_capacity_per_hour=dict(context.dns_capacity_per_hour),
        spill_probability=context.spill_probability,
        seed=context.seed,
        ttl_s=context.ttl_s,
    )
