"""Content placement across data centers.

Implements the availability structure the paper infers in Section VII-C:

* the popular head of the catalog is replicated to every data center;
* cold-tail videos start out resident at a single *origin* data center;
* when a data center takes a request for a video it does not hold, the
  request is redirected to a holder **and the video is pulled through** into
  the requesting data center — which is why the paper's PlanetLab experiment
  sees only the *first* access of a cold video served from far away
  (Figures 17, 18) and why "when videos were accessed more than once, only
  the first access was redirected" (Section VII-C).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Set

from repro.cdn.catalog import Video, VideoCatalog


class ContentPlacement:
    """Tracks which data centers hold which videos.

    Args:
        catalog: The video catalog.
        dc_ids: All data-center identifiers, in a stable order.
        replicated_mass: Fraction of request probability mass whose videos
            are replicated everywhere (the popular head).
        origin_count: Number of origin copies a cold video starts with.
        regional_presence_prob: Chance that a tail video is *already*
            resident at any given data center when our trace starts.  The
            monitored PoP sees only a sliver of each data center's demand;
            the rest of the region has usually pulled a merely-lukewarm
            video through before our clients ask for it.  Only the truly
            cold remainder produces first-access redirects (Section VII-C).
        cache_capacity: Optional cap on the number of *pulled-through* tail
            videos a data center retains; beyond it the least recently
            pulled is evicted (and may miss again later).  ``None`` models
            an effectively infinite edge cache over one trace week.
            Origin copies are never evicted.
    """

    def __init__(
        self,
        catalog: VideoCatalog,
        dc_ids: Sequence[str],
        replicated_mass: float = 0.75,
        origin_count: int = 1,
        regional_presence_prob: float = 0.8,
        cache_capacity: Optional[int] = None,
    ):
        if not dc_ids:
            raise ValueError("placement needs at least one data center")
        if origin_count < 1:
            raise ValueError("origin_count must be >= 1")
        if not 0.0 <= regional_presence_prob < 1.0:
            raise ValueError("regional_presence_prob must be in [0, 1)")
        if cache_capacity is not None and cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1 (or None)")
        self._catalog = catalog
        self._dc_ids: List[str] = list(dc_ids)
        self._head_ranks = catalog.popularity_cutoff_rank(replicated_mass)
        # Featured videos get replicated like head content: YouTube pushes
        # the day's feature everywhere ahead of time.
        self._forced_global: Set[str] = {v.video_id for v in catalog.featured_videos}
        # Lazily-populated residency for tail videos: video_id -> set of DCs.
        self._tail_holders: Dict[str, Set[str]] = {}
        self._origin_count = origin_count
        self._regional_presence_prob = regional_presence_prob
        self._cache_capacity = cache_capacity
        # Per-DC LRU of pulled-through video ids (insertion-ordered dicts).
        self._pulled: Dict[str, Dict[str, None]] = {dc_id: {} for dc_id in self._dc_ids}
        self.pull_throughs = 0
        self.evictions = 0

    def _is_head(self, video: Video) -> bool:
        return video.rank < self._head_ranks or video.video_id in self._forced_global

    def _holders_of_tail(self, video: Video) -> Set[str]:
        holders = self._tail_holders.get(video.video_id)
        if holders is None:
            holders = set()
            n = len(self._dc_ids)
            base = zlib.crc32(video.video_id.encode())
            for k in range(self._origin_count):
                holders.add(self._dc_ids[(base + k * 7919) % n])
            threshold = int(self._regional_presence_prob * 1_000_000)
            for dc_id in self._dc_ids:
                if dc_id in holders:
                    continue
                draw = zlib.crc32(f"{video.video_id}|{dc_id}".encode()) % 1_000_000
                if draw < threshold:
                    holders.add(dc_id)
            self._tail_holders[video.video_id] = holders
        return holders

    def is_resident(self, dc_id: str, video: Video) -> bool:
        """Whether the data center currently holds the video."""
        if self._is_head(video):
            return True
        return dc_id in self._holders_of_tail(video)

    def holders(self, video: Video) -> List[str]:
        """All data centers currently holding the video (stable order)."""
        if self._is_head(video):
            return list(self._dc_ids)
        tail = self._holders_of_tail(video)
        return [dc_id for dc_id in self._dc_ids if dc_id in tail]

    def pull_through(self, dc_id: str, video: Video) -> None:
        """Record that ``dc_id`` fetched and cached the video.

        No-op for head content (already everywhere).

        Raises:
            KeyError: If the data center is unknown to the placement.
        """
        if dc_id not in self._dc_ids:
            raise KeyError(f"unknown data center: {dc_id!r}")
        if self._is_head(video):
            return
        holders = self._holders_of_tail(video)
        if dc_id not in holders:
            holders.add(dc_id)
            self.pull_throughs += 1
            if self._cache_capacity is not None:
                lru = self._pulled[dc_id]
                lru[video.video_id] = None
                while len(lru) > self._cache_capacity:
                    victim_id = next(iter(lru))
                    del lru[victim_id]
                    victim_holders = self._tail_holders.get(victim_id)
                    if victim_holders is not None:
                        victim_holders.discard(dc_id)
                    self.evictions += 1

    def origins(self, video: Video) -> List[str]:
        """The video's canonical origin data centers (upload targets).

        For head content this is meaningless (it lives everywhere), so the
        hash-derived origins are returned for consistency; for tail content
        these are the copies that exist regardless of cache churn.
        """
        n = len(self._dc_ids)
        base = zlib.crc32(video.video_id.encode())
        return sorted({self._dc_ids[(base + k * 7919) % n] for k in range(self._origin_count)})

    def register_cold(self, video: Video) -> List[str]:
        """Mark a video as freshly uploaded: origin copies only.

        Used by the active test-video experiment (Section VII-C): a video
        uploaded minutes ago has no regional presence anywhere, so its first
        fetch from each region is redirected to the origin.

        Returns:
            The origin data centers holding the fresh video.

        Raises:
            ValueError: If the video is head content (always replicated).
        """
        if self._is_head(video):
            raise ValueError(f"video {video.video_id} is head content; cannot be cold")
        holders: Set[str] = set()
        n = len(self._dc_ids)
        base = zlib.crc32(video.video_id.encode())
        for k in range(self._origin_count):
            holders.add(self._dc_ids[(base + k * 7919) % n])
        self._tail_holders[video.video_id] = holders
        return sorted(holders)

    @property
    def head_ranks(self) -> int:
        """Number of head (everywhere-replicated) ranks."""
        return self._head_ranks

    def residency_count(self, video: Video) -> int:
        """Number of data centers currently holding the video."""
        return len(self.holders(video))
